//! End-to-end integration tests spanning frontend, search, proof checking
//! and rendering.

use cycleq::{GlobalCheck, Outcome, Session};

const NAT_LIST: &str = "
data Nat = Z | S Nat
data List a = Nil | Cons a (List a)
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
app :: List a -> List a -> List a
app Nil ys = ys
app (Cons x xs) ys = Cons x (app xs ys)
rev :: List a -> List a
rev Nil = Nil
rev (Cons x xs) = app (rev xs) (Cons x Nil)
len :: List a -> Nat
len Nil = Z
len (Cons x xs) = S (len xs)
goal appAssoc: app (app xs ys) zs === app xs (app ys zs)
goal appNil: app xs Nil === xs
goal lenRev: len (rev xs) === len xs
goal revApp: rev (app xs ys) === app (rev ys) (rev xs)
goal lenApp: len (app xs ys) === add (len xs) (len ys)
";

#[test]
fn list_theory_proves_end_to_end() {
    let session = Session::from_source(NAT_LIST).unwrap();
    assert!(session.validate().is_empty());
    for goal in ["appAssoc", "appNil", "lenApp"] {
        let v = session.prove(goal).unwrap();
        assert!(v.is_proved(), "{goal}: {:?}", v.result.outcome);
        // The session already re-checked; check again explicitly to pin the
        // behaviour.
        cycleq::check(
            &v.result.proof,
            session.program(),
            GlobalCheck::VariableTraces,
        )
        .unwrap_or_else(|e| panic!("{goal}: {e}"));
    }
}

#[test]
fn lemma_requiring_goals_fail_gracefully() {
    // rev (xs ++ ys) = rev ys ++ rev xs and len (rev xs) = len xs both need
    // auxiliary lemmas about app; without hints the prover must terminate
    // without a proof (and without wrongly refuting).
    let session = Session::from_source(NAT_LIST).unwrap();
    for goal in ["revApp", "lenRev"] {
        let v = session.prove(goal).unwrap();
        assert!(
            matches!(
                v.result.outcome,
                Outcome::Exhausted | Outcome::Timeout | Outcome::NodeBudget
            ),
            "{goal}: {:?}",
            v.result.outcome
        );
    }
}

#[test]
fn proofs_render_with_cycle_labels() {
    let session = Session::from_source(NAT_LIST).unwrap();
    let v = session.prove("appAssoc").unwrap();
    let text = v.render_proof().unwrap();
    assert!(text.contains("[Case xs]"), "{text}");
    assert!(text.contains("(0)"), "back edge reference: {text}");
    let dot = v.render_dot().unwrap();
    assert!(dot.contains("style=dashed"), "cycle edge in dot: {dot}");
}

#[test]
fn search_statistics_reflect_the_proof() {
    let session = Session::from_source(NAT_LIST).unwrap();
    let v = session.prove("lenApp").unwrap();
    let stats = &v.result.stats;
    assert!(stats.nodes_created >= v.result.proof.len());
    assert!(stats.case_splits >= 1);
    assert!(stats.closure_graphs > 0, "closure was exercised");
}

#[test]
fn polymorphic_goals_prove() {
    // Goals at type List a with a rigid: the whole pipeline handles
    // polymorphism (§6).
    let session = Session::from_source(NAT_LIST).unwrap();
    let v = session.prove("appNil").unwrap();
    assert!(v.is_proved());
}

#[test]
fn trees_and_mirror_involution() {
    let src = "
data Tree a = Leaf | Node (Tree a) a (Tree a)
mirror :: Tree a -> Tree a
mirror Leaf = Leaf
mirror (Node l x r) = Node (mirror r) x (mirror l)
goal mirrorTwice: mirror (mirror t) === t
";
    let session = Session::from_source(src).unwrap();
    let v = session.prove("mirrorTwice").unwrap();
    assert!(v.is_proved(), "{:?}", v.result.outcome);
}

#[test]
fn higher_order_goal_with_extensionality() {
    // map f ∘ nothing: goal at arrow type exercises FunExt.
    let src = "
data List a = Nil | Cons a (List a)
map :: (a -> b) -> List a -> List b
map f Nil = Nil
map f (Cons x xs) = Cons (f x) (map f xs)
id :: a -> a
id x = x
goal mapIdEta: map id === id
";
    let session = Session::from_source(src).unwrap();
    let v = session.prove("mapIdEta").unwrap();
    assert!(v.is_proved(), "{:?}", v.result.outcome);
    // The proof must contain a FunExt node.
    let uses_funext = v
        .result
        .proof
        .nodes()
        .any(|(_, n)| matches!(n.rule, cycleq::RuleApp::FunExt { .. }));
    assert!(uses_funext);
}

#[test]
fn refutation_of_false_conjectures() {
    let src = "
data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
double :: Nat -> Nat
double Z = Z
double (S x) = S (S (double x))
goal falseDouble: double x === x
";
    let session = Session::from_source(src).unwrap();
    let v = session.prove("falseDouble").unwrap();
    assert!(v.is_refuted(), "{:?}", v.result.outcome);
}

#[test]
fn unsound_self_justification_is_impossible() {
    // Example 3.2's degenerate preproof cannot be produced: the only route
    // to such a cycle fails the incremental size-change check, so the goal
    // is simply not proved.
    let src = "
data Nat = Z | S Nat
data List a = Nil | Cons a (List a)
stutter :: List a -> List a
stutter Nil = Nil
stutter (Cons x xs) = Cons x (Cons x (stutter xs))
goal consNil: stutter xs === Nil
";
    let session = Session::from_source(src).unwrap();
    let v = session.prove("consNil").unwrap();
    assert!(!v.is_proved(), "{:?}", v.result.outcome);
}
