//! Appendix C: classical structural induction embeds into the cyclic
//! calculus — and the embedding's limits are exactly the paper's
//! motivation for the unrestricted system.

use cycleq::{GlobalCheck, Session};
use cycleq_benchsuite::MUTUAL_PRELUDE;
use cycleq_search::{structural_induction, InductionError};
use cycleq_term::VarId;

fn goal_setup(
    src: &str,
    goal: &str,
    var_name: &str,
) -> (
    cycleq::Program,
    cycleq_term::Equation,
    cycleq_term::VarStore,
    VarId,
) {
    let session = Session::from_source(src).unwrap();
    let g = session.module().goal(goal).unwrap().clone();
    let var = g
        .vars
        .iter()
        .find(|(_, n, _)| *n == var_name)
        .map(|(v, _, _)| v)
        .unwrap_or_else(|| panic!("goal has variable {var_name}"));
    (session.program().clone(), g.eq, g.vars, var)
}

const LIST_SRC: &str = "
data List a = Nil | Cons a (List a)
id :: a -> a
id x = x
map :: (a -> b) -> List a -> List b
map f Nil = Nil
map f (Cons x xs) = Cons (f x) (map f xs)
goal mapId: map id xs === xs
";

#[test]
fn fig9_map_id_by_structural_induction() {
    // Example C.1 / Fig. 9: the classical induction of Fig. 8 becomes a
    // cyclic proof with trace xs, xs', …
    let (prog, eq, vars, xs) = goal_setup(LIST_SRC, "mapId", "xs");
    let (proof, root) = structural_induction(&prog, eq, vars, xs).unwrap();
    let report = cycleq::check(&proof, &prog, GlobalCheck::VariableTraces).unwrap();
    assert!(report.back_edges >= 1);
    let text = cycleq::render_text(&proof, &prog.sig, root);
    assert!(text.contains("[Case xs]"), "{text}");
}

#[test]
fn mutual_induction_defeats_the_fixed_scheme() {
    // mapE id e ≈ e cannot be proved by structural induction on `e` alone:
    // the MkE branch needs the companion fact about mapT, which the fixed
    // scheme has no way to use (§1: provers "would have to guess,
    // heuristically, a strengthening").
    let src = format!("{MUTUAL_PRELUDE}\ngoal mapEId: mapE id e === e\n");
    let (prog, eq, vars, e) = goal_setup(&src, "mapEId", "e");
    let err = structural_induction(&prog, eq.clone(), vars.clone(), e).unwrap_err();
    assert!(matches!(err, InductionError::BranchStuck { .. }), "{err:?}");

    // ... while the unrestricted cyclic search proves it instantly.
    let session = Session::from_source(&src).unwrap();
    let v = session.prove("mapEId").unwrap();
    assert!(v.is_proved());
}

#[test]
fn everything_the_scheme_proves_the_search_proves() {
    let cases = [
        (
            "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal g: add x Z === x
",
            "g",
            "x",
        ),
        (LIST_SRC, "mapId", "xs"),
    ];
    for (src, goal, var) in cases {
        let (prog, eq, vars, v) = goal_setup(src, goal, var);
        assert!(structural_induction(&prog, eq.clone(), vars.clone(), v).is_ok());
        let session = Session::from_source(src).unwrap();
        assert!(session.prove(goal).unwrap().is_proved());
    }
}
