//! Experiment E5 (§6.2): IsaPlanner properties 47, 54, 65 and 69 are not
//! provable without lemmas, and become provable when the commutativity of
//! `max`/`add` is supplied — with the hint proved by the same engine, so
//! the combined proof is checkable end to end.

use std::time::Duration;

use cycleq::SearchConfig;
use cycleq_benchsuite::{run_problem, RunConfig, RunStatus, ISAPLANNER};

fn config(with_hints: bool) -> RunConfig {
    RunConfig {
        search: SearchConfig {
            timeout: Some(Duration::from_secs(3)),
            ..SearchConfig::default()
        },
        with_hints,
        recheck: true,
        ..RunConfig::default()
    }
}

fn lemma_problem(id: &str) -> &'static cycleq_benchsuite::Problem {
    ISAPLANNER
        .iter()
        .find(|p| p.id == id)
        .unwrap_or_else(|| panic!("problem {id} exists"))
}

#[test]
fn ip47_needs_max_commutativity() {
    let p = lemma_problem("IP47");
    assert!(!run_problem(p, &config(false)).status.is_proved());
    let hinted = run_problem(p, &config(true));
    assert_eq!(hinted.status, RunStatus::Proved, "{:?}", hinted.status);
}

#[test]
fn ip54_needs_add_commutativity() {
    let p = lemma_problem("IP54");
    assert!(!run_problem(p, &config(false)).status.is_proved());
    assert_eq!(run_problem(p, &config(true)).status, RunStatus::Proved);
}

#[test]
fn ip65_needs_add_commutativity() {
    let p = lemma_problem("IP65");
    assert!(!run_problem(p, &config(false)).status.is_proved());
    assert_eq!(run_problem(p, &config(true)).status, RunStatus::Proved);
}

#[test]
fn ip69_needs_add_commutativity() {
    let p = lemma_problem("IP69");
    assert!(!run_problem(p, &config(false)).status.is_proved());
    assert_eq!(run_problem(p, &config(true)).status, RunStatus::Proved);
}

#[test]
fn hints_are_not_magic_for_unrelated_problems() {
    // A conditional-reasoning problem stays unsolved even with the
    // commutativity hints registered elsewhere: IP04 has no hints.
    let p = lemma_problem("IP04");
    assert!(p.hints.is_empty());
    assert!(!run_problem(p, &config(true)).status.is_proved());
}
