//! Cross-validation of the two global-correctness engines on real proofs:
//! the batch closure (Definition 5.4 / Theorem 5.2) and the incremental
//! closure used during search must agree, and every proof produced by the
//! search must carry verifiable variable traces.

use cycleq::Session;
use cycleq_benchsuite::{MUTUAL, MUTUAL_PRELUDE, PRELUDE};
use cycleq_sizechange::Soundness;

fn proved_proofs() -> Vec<(String, cycleq::Preproof)> {
    let mut out = Vec::new();
    // A cross-section of suite goals that prove quickly.
    let goals = [
        (PRELUDE, "g1", "add x y === add y x"),
        (PRELUDE, "g2", "app (take n xs) (drop n xs) === xs"),
        (PRELUDE, "g3", "butlast xs === take (sub (len xs) (S Z)) xs"),
        (PRELUDE, "g4", "max (max a b) c === max a (max b c)"),
        (MUTUAL_PRELUDE, "g5", "mapE id e === e"),
        (MUTUAL_PRELUDE, "g6", "swapE (swapE e) === e"),
    ];
    for (prelude, name, goal) in goals {
        let src = format!("{prelude}\ngoal {name}: {goal}\n");
        let session = Session::from_source(&src).unwrap();
        let v = session.prove(name).unwrap();
        assert!(v.is_proved(), "{name}: {:?}", v.result.outcome);
        out.push((name.to_string(), v.result.proof));
    }
    out
}

#[test]
fn incremental_and_batch_checkers_agree_on_real_proofs() {
    for (name, proof) in proved_proofs() {
        let batch = cycleq::check_global(&proof);
        let inc = cycleq::check_global_incremental(&proof);
        assert_eq!(batch, Soundness::Sound, "{name}");
        assert_eq!(batch, inc, "{name}");
    }
}

#[test]
fn every_back_edge_has_a_certified_cycle() {
    for (name, proof) in proved_proofs() {
        let back_edges: usize = proof
            .nodes()
            .map(|(v, n)| {
                n.premises
                    .iter()
                    .filter(|p| proof.is_back_edge(v, **p))
                    .count()
            })
            .sum();
        if back_edges == 0 {
            continue;
        }
        let witnesses = cycleq::cycle_witnesses(&proof);
        assert!(
            !witnesses.is_empty(),
            "{name}: cyclic proof must have a strict idempotent certificate"
        );
        for (_, g) in witnesses {
            assert!(g.is_idempotent());
            assert!(g.has_strict_self_edge());
        }
    }
}

#[test]
fn mutual_suite_is_fully_proved_and_checked() {
    // E3: "All the mutual induction problems were solved" (§6.1).
    for p in MUTUAL {
        let out = cycleq_benchsuite::run_problem(p, &cycleq_benchsuite::RunConfig::default());
        assert!(out.status.is_proved(), "{}: {:?}", p.id, out.status);
    }
}

#[test]
fn figure_goals_are_proved_and_checked() {
    for p in cycleq_benchsuite::FIGURES {
        let out = cycleq_benchsuite::run_problem(p, &cycleq_benchsuite::RunConfig::default());
        assert!(out.status.is_proved(), "{}: {:?}", p.id, out.status);
    }
}
