//! Parallel-vs-sequential equivalence: `prove_all` with `jobs=1` and
//! `jobs=4` must produce identical verdicts, deterministic ordering, and
//! checkable proofs — the acceptance bar for the batch subsystem. Goals are
//! independent and each worker owns its term store, so for searches that
//! complete within their fuel/time budgets (all of the goals below, by a
//! wide margin) parallelism may only change wall-clock, never outcomes.
//! (Exactly at a budget boundary a warm shared cache can prove *more* than
//! a cold run — see the README's batch-proving section — which is why the
//! budgets here are generous.)

use std::time::Duration;

use cycleq::{Engine, GlobalCheck, SearchConfig, Session};
use cycleq_benchsuite::{run_suite, RunConfig, FIGURES, MUTUAL};

/// A multi-goal program whose goals overlap heavily (shared lemmas and
/// repeated subterms), so the shared normal-form cache must score hits.
const SUITE_SRC: &str = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
mul :: Nat -> Nat -> Nat
mul Z y = Z
mul (S x) y = add y (mul x y)
goal zeroRight: add x Z === x
goal succRight: add x (S y) === S (add x y)
goal comm: add x y === add y x
goal assoc: add (add x y) z === add x (add y z)
goal mulZeroRight: mul x Z === Z
goal wrong: add x Z === Z
";

fn session(jobs: usize) -> Session {
    Engine::builder()
        .config(SearchConfig {
            timeout: Some(Duration::from_secs(10)),
            ..SearchConfig::default()
        })
        .jobs(jobs)
        .build()
        .load(SUITE_SRC)
        .unwrap()
}

#[test]
fn prove_all_verdicts_are_identical_across_job_counts() {
    let sequential = session(1).prove_all();
    let parallel = session(4).prove_all();
    assert_eq!(sequential.goals.len(), parallel.goals.len());
    for (s, p) in sequential.goals.iter().zip(&parallel.goals) {
        assert_eq!(s.goal, p.goal, "declaration order is deterministic");
        assert_eq!(
            s.is_proved(),
            p.is_proved(),
            "{}: proved status must not depend on jobs",
            s.goal
        );
        assert_eq!(
            s.is_refuted(),
            p.is_refuted(),
            "{}: refuted status must not depend on jobs",
            s.goal
        );
    }
    assert_eq!(sequential.proved(), 5);
    assert!(sequential.goals.last().unwrap().is_refuted());
}

#[test]
fn parallel_proofs_are_independently_checkable() {
    // Re-check every parallel-produced proof with the independent checker
    // against the session's program (recheck is also on inside prove, so
    // this is belt and braces at the integration level).
    let s = session(4);
    let report = s.prove_all();
    let mut checked = 0;
    for g in &report.goals {
        let Some(v) = g.verdict() else {
            panic!("{}: batch error {:?}", g.goal, g.outcome.as_ref().err());
        };
        if v.is_proved() {
            cycleq::check(&v.result.proof, s.program(), GlobalCheck::VariableTraces)
                .unwrap_or_else(|e| panic!("{}: proof fails re-checking: {e}", g.goal));
            checked += 1;
        }
    }
    assert_eq!(checked, 5);
}

#[test]
fn shared_cache_scores_hits_on_overlapping_goals() {
    let report = session(4).prove_all();
    assert!(
        report.stats.shared_cache_hits > 0,
        "a suite with repeated lemmas must share normal forms: {:?}",
        report.stats
    );
    assert!(report.cache.entries > 0);
}

#[test]
fn streaming_events_cover_every_goal_and_match_the_blocking_report() {
    // Acceptance bar for the event-driven batch form: an EventSink gets
    // GoalStarted/GoalFinished for every goal (in completion order, from
    // worker threads), while the returned BatchReport stays
    // declaration-ordered and verdict-identical to the blocking path.
    use cycleq::{EventSink, GoalStatus, ProveEvent};
    use std::sync::{Arc, Mutex};

    let blocking = session(1).prove_all();

    #[derive(Default)]
    struct Collect(Mutex<Vec<ProveEvent>>);
    impl EventSink for Collect {
        fn event(&self, event: &ProveEvent) {
            self.0.lock().unwrap().push(event.clone());
        }
    }

    for jobs in [1, 4] {
        let sink = Arc::new(Collect::default());
        let events = sink.clone();
        let streamed = Engine::builder()
            .config(SearchConfig {
                timeout: Some(Duration::from_secs(10)),
                ..SearchConfig::default()
            })
            .jobs(jobs)
            .on_event(move |ev: &ProveEvent| events.event(ev))
            .build()
            .load(SUITE_SRC)
            .unwrap()
            .prove_all();

        // Verdict-identical, declaration-ordered report.
        assert_eq!(blocking.goals.len(), streamed.goals.len());
        for (b, s) in blocking.goals.iter().zip(&streamed.goals) {
            assert_eq!(b.goal, s.goal);
            assert_eq!(b.is_proved(), s.is_proved(), "jobs={jobs}: {}", b.goal);
            assert_eq!(b.is_refuted(), s.is_refuted(), "jobs={jobs}: {}", b.goal);
        }

        // Started and Finished exactly once per goal, statuses agreeing
        // with the report; BatchFinished closes the stream.
        let log = sink.0.lock().unwrap();
        let n = streamed.goals.len();
        for idx in 0..n {
            let starts = log
                .iter()
                .filter(|e| matches!(e, ProveEvent::GoalStarted { index, .. } if *index == idx))
                .count();
            assert_eq!(starts, 1, "jobs={jobs}: goal {idx} started {starts}×");
            let finishes: Vec<&GoalStatus> = log
                .iter()
                .filter_map(|e| match e {
                    ProveEvent::GoalFinished { index, status, .. } if *index == idx => Some(status),
                    _ => None,
                })
                .collect();
            assert_eq!(finishes.len(), 1, "jobs={jobs}: goal {idx}");
            let expect = if streamed.goals[idx].is_proved() {
                GoalStatus::Proved
            } else {
                GoalStatus::Refuted
            };
            assert_eq!(*finishes[0], expect, "jobs={jobs}: goal {idx}");
        }
        assert!(
            matches!(log.last(), Some(ProveEvent::BatchFinished { total, .. }) if *total == n),
            "jobs={jobs}: stream not closed by BatchFinished: {:?}",
            log.last()
        );
    }
}

#[test]
fn quick_benchsuite_statuses_match_across_job_counts() {
    let ps: Vec<_> = FIGURES.iter().chain(MUTUAL.iter()).collect();
    let seq = run_suite(&ps, &RunConfig::default());
    let par = run_suite(
        &ps,
        &RunConfig {
            jobs: 4,
            ..RunConfig::default()
        },
    );
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(s.problem.id, p.problem.id, "ordering is deterministic");
        assert_eq!(s.status, p.status, "{}: status must agree", ps[i].id);
    }
}
