//! Parallel-vs-sequential equivalence: `prove_all` with `jobs=1` and
//! `jobs=4` must produce identical verdicts, deterministic ordering, and
//! checkable proofs — the acceptance bar for the batch subsystem. Goals are
//! independent and each worker owns its term store, so for searches that
//! complete within their fuel/time budgets (all of the goals below, by a
//! wide margin) parallelism may only change wall-clock, never outcomes.
//! (Exactly at a budget boundary a warm shared cache can prove *more* than
//! a cold run — see the README's batch-proving section — which is why the
//! budgets here are generous.)

use std::time::Duration;

use cycleq::{GlobalCheck, SearchConfig, Session};
use cycleq_benchsuite::{run_suite, RunConfig, FIGURES, MUTUAL};

/// A multi-goal program whose goals overlap heavily (shared lemmas and
/// repeated subterms), so the shared normal-form cache must score hits.
const SUITE_SRC: &str = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
mul :: Nat -> Nat -> Nat
mul Z y = Z
mul (S x) y = add y (mul x y)
goal zeroRight: add x Z === x
goal succRight: add x (S y) === S (add x y)
goal comm: add x y === add y x
goal assoc: add (add x y) z === add x (add y z)
goal mulZeroRight: mul x Z === Z
goal wrong: add x Z === Z
";

fn session(jobs: usize) -> Session {
    Session::from_source(SUITE_SRC)
        .unwrap()
        .with_config(SearchConfig {
            timeout: Some(Duration::from_secs(10)),
            ..SearchConfig::default()
        })
        .with_jobs(jobs)
}

#[test]
fn prove_all_verdicts_are_identical_across_job_counts() {
    let sequential = session(1).prove_all();
    let parallel = session(4).prove_all();
    assert_eq!(sequential.goals.len(), parallel.goals.len());
    for (s, p) in sequential.goals.iter().zip(&parallel.goals) {
        assert_eq!(s.goal, p.goal, "declaration order is deterministic");
        assert_eq!(
            s.is_proved(),
            p.is_proved(),
            "{}: proved status must not depend on jobs",
            s.goal
        );
        assert_eq!(
            s.is_refuted(),
            p.is_refuted(),
            "{}: refuted status must not depend on jobs",
            s.goal
        );
    }
    assert_eq!(sequential.proved(), 5);
    assert!(sequential.goals.last().unwrap().is_refuted());
}

#[test]
fn parallel_proofs_are_independently_checkable() {
    // Re-check every parallel-produced proof with the independent checker
    // against the session's program (recheck is also on inside prove, so
    // this is belt and braces at the integration level).
    let s = session(4);
    let report = s.prove_all();
    let mut checked = 0;
    for g in &report.goals {
        let Some(v) = g.verdict() else {
            panic!("{}: batch error {:?}", g.goal, g.outcome.as_ref().err());
        };
        if v.is_proved() {
            cycleq::check(&v.result.proof, s.program(), GlobalCheck::VariableTraces)
                .unwrap_or_else(|e| panic!("{}: proof fails re-checking: {e}", g.goal));
            checked += 1;
        }
    }
    assert_eq!(checked, 5);
}

#[test]
fn shared_cache_scores_hits_on_overlapping_goals() {
    let report = session(4).prove_all();
    assert!(
        report.stats.shared_cache_hits > 0,
        "a suite with repeated lemmas must share normal forms: {:?}",
        report.stats
    );
    assert!(report.cache.entries > 0);
}

#[test]
fn quick_benchsuite_statuses_match_across_job_counts() {
    let ps: Vec<_> = FIGURES.iter().chain(MUTUAL.iter()).collect();
    let seq = run_suite(&ps, &RunConfig::default());
    let par = run_suite(
        &ps,
        &RunConfig {
            jobs: 4,
            ..RunConfig::default()
        },
    );
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(s.problem.id, p.problem.id, "ordering is deterministic");
        assert_eq!(s.status, p.status, "{}: status must agree", ps[i].id);
    }
}
