//! Runs the static analyzer over every expressible problem in the benchmark
//! corpus and pins the outcome: the shipped programs must be free of
//! analysis *errors* (they are orthogonal, left-linear constructor systems),
//! and the warning counts are snapshotted so that a change to either the
//! corpus or the analyzer shows up here rather than as silent drift.

use std::collections::BTreeMap;

use cycleq::{analyze, parse_module, Severity};
use cycleq_benchsuite::all_problems;

#[test]
fn corpus_has_no_analysis_errors() {
    let mut checked = 0usize;
    for p in all_problems() {
        let Some(src) = p.source() else { continue };
        let module = parse_module(&src)
            .unwrap_or_else(|e| panic!("{}: frontend rejected corpus program: {e}", p.id));
        let errors: Vec<_> = analyze(&module)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: {errors:?}", p.id);
        checked += 1;
    }
    assert!(checked > 80, "corpus unexpectedly small: {checked}");
}

#[test]
fn corpus_warning_counts_are_pinned() {
    // The prelude deliberately declares more functions than any single goal
    // exercises, so CQ005 (unreachable-from-goal) fires on every problem;
    // everything else must stay quiet. If this snapshot moves, either the
    // corpus or an analysis changed — update it consciously.
    let mut by_code: BTreeMap<&'static str, usize> = BTreeMap::new();
    for p in all_problems() {
        let Some(src) = p.source() else { continue };
        let module = parse_module(&src).unwrap();
        for d in analyze(&module) {
            *by_code.entry(d.code.as_str()).or_default() += 1;
        }
    }
    let snapshot: Vec<(&str, usize)> = by_code.into_iter().collect();
    assert_eq!(snapshot, vec![("CQ005", 2617)], "warning snapshot moved");
}
