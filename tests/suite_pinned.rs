//! Pins the behaviour of a fast subset of the IsaPlanner suite so that
//! regressions in the prover show up as test failures rather than silent
//! drops in the benchmark numbers.

use std::time::Duration;

use cycleq::SearchConfig;
use cycleq_benchsuite::{run_problem, Expectation, RunConfig, RunStatus, ISAPLANNER};

fn config() -> RunConfig {
    // Generous timeout so the pinned set is stable under debug builds too.
    RunConfig {
        search: SearchConfig {
            timeout: Some(Duration::from_secs(15)),
            ..SearchConfig::default()
        },
        with_hints: false,
        recheck: true,
        ..RunConfig::default()
    }
}

/// Problems that must prove (a fast, stable subset of the 45 the suite
/// currently solves).
const MUST_PROVE: &[&str] = &[
    "IP01", "IP06", "IP07", "IP08", "IP09", "IP10", "IP11", "IP12", "IP13", "IP17", "IP18", "IP19",
    "IP21", "IP22", "IP23", "IP24", "IP25", "IP31", "IP32", "IP33", "IP34", "IP35", "IP36", "IP40",
    "IP41", "IP42", "IP44", "IP45", "IP46", "IP49", "IP50", "IP51", "IP55", "IP57", "IP58", "IP64",
    "IP67", "IP79", "IP80", "IP82", "IP83", "IP84",
];

/// In-scope problems that must NOT prove without hints (conditional
/// reasoning or lemma discovery required, §6.2).
const MUST_NOT_PROVE: &[&str] = &[
    "IP04", "IP14", "IP43", "IP47", "IP54", "IP65", "IP66", "IP69", "IP73",
];

#[test]
fn pinned_proved_set() {
    let cfg = config();
    for id in MUST_PROVE {
        let p = ISAPLANNER.iter().find(|p| &p.id == id).unwrap();
        let out = run_problem(p, &cfg);
        assert_eq!(out.status, RunStatus::Proved, "{id}: {:?}", out.status);
    }
}

#[test]
fn pinned_unproved_set() {
    // These goals are unprovable without lemmas/conditional reasoning at
    // any timeout, so a short budget suffices and keeps the test fast.
    let cfg = RunConfig {
        search: SearchConfig {
            timeout: Some(Duration::from_secs(1)),
            ..SearchConfig::default()
        },
        with_hints: false,
        recheck: true,
        ..RunConfig::default()
    };
    for id in MUST_NOT_PROVE {
        let p = ISAPLANNER.iter().find(|p| &p.id == id).unwrap();
        let out = run_problem(p, &cfg);
        assert!(
            !out.status.is_proved(),
            "{id} unexpectedly proved — update EXPERIMENTS.md!"
        );
        assert_ne!(out.status, RunStatus::Refuted, "{id} must not be refuted");
    }
}

#[test]
fn conditional_problems_stay_out_of_scope() {
    let cfg = config();
    let conditionals: Vec<_> = ISAPLANNER
        .iter()
        .filter(|p| p.expectation == Expectation::Conditional)
        .collect();
    assert_eq!(conditionals.len(), 14);
    for p in conditionals {
        assert_eq!(
            run_problem(p, &cfg).status,
            RunStatus::OutOfScope,
            "{}",
            p.id
        );
    }
}

#[test]
fn no_suite_problem_is_refuted() {
    // A refutation would mean the property was mis-encoded.
    let cfg = RunConfig {
        search: SearchConfig {
            timeout: Some(Duration::from_millis(300)),
            ..SearchConfig::default()
        },
        ..config()
    };
    for p in ISAPLANNER {
        if p.goal.is_none() {
            continue;
        }
        let out = run_problem(p, &cfg);
        assert_ne!(out.status, RunStatus::Refuted, "{} was refuted!", p.id);
        if let RunStatus::Error(e) = &out.status {
            panic!("{}: {e}", p.id);
        }
    }
}
