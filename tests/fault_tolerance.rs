//! End-to-end fault tolerance: a panicking goal inside a parallel batch is
//! isolated into a structured `Panicked` verdict without perturbing any
//! other goal's verdict, and the engine's retry policy recovers injected
//! resource failures on escalated budgets.
//!
//! Fault plans are process-global, so every test that installs one holds
//! `PLAN_LOCK` for its whole body.

use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

use cycleq::trace::{clear_fault_plan, install_fault_plan, FaultPlan, FaultRule, FireSpec};
use cycleq::{BatchReport, Engine, Outcome, RetryPolicy, SearchConfig};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Eight goals over one program; `g3` (commutativity) is the fault target.
const SRC: &str = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal g0: add Z y === y
goal g1: add x Z === x
goal g2: add x (S y) === S (add x y)
goal g3: add x y === add y x
goal g4: add (S x) y === S (add x y)
goal g5: add x Z === add Z x
goal g6: add (add x y) Z === add x y
goal g7: add Z Z === Z
";

fn prove_all(jobs: usize) -> BatchReport {
    Engine::builder()
        .jobs(jobs)
        .build()
        .load(SRC)
        .expect("fixture elaborates")
        .prove_all()
}

#[test]
fn injected_panic_isolates_one_goal_and_preserves_the_rest() {
    let _guard = PLAN_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    clear_fault_plan();
    let baseline = prove_all(1);
    assert!(baseline.all_proved(), "fixture must prove clean");
    for jobs in [1, 4] {
        install_fault_plan(
            FaultPlan::new().rule(
                FaultRule::panic_at("expand")
                    .scoped("g3")
                    .with_fire(FireSpec::Every),
            ),
        );
        let report = prove_all(jobs);
        clear_fault_plan();
        assert_eq!(report.goals.len(), 8, "batch completed every goal");
        assert_eq!(report.panicked(), 1, "exactly the faulted goal panicked");
        assert!(report.any_gave_up() && !report.any_refuted());
        for (b, g) in baseline.goals.iter().zip(&report.goals) {
            assert_eq!(b.goal, g.goal, "order preserved at jobs={jobs}");
            let verdict = g.verdict().expect("panic was isolated, not an error");
            if g.goal == "g3" {
                match &verdict.result.outcome {
                    Outcome::Panicked { message } => assert!(
                        message.contains("fault injection"),
                        "panic message surfaced: {message}"
                    ),
                    other => panic!("faulted goal reported {other:?}"),
                }
            } else {
                // Byte-identical outcome (including the proof root) to the
                // fault-free baseline, whatever the worker count.
                assert_eq!(
                    format!("{:?}", b.verdict().unwrap().result.outcome),
                    format!("{:?}", verdict.result.outcome),
                    "goal {} drifted under a sibling's fault at jobs={jobs}",
                    g.goal
                );
            }
        }
    }
}

#[test]
fn retry_recovers_an_injected_timeout_on_an_escalated_budget() {
    let _guard = PLAN_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // A one-second delay injected into the first `normalize` under `g3`
    // blows the 250ms first-attempt timeout; the occurrence is spent, so
    // the second attempt (limits ×8 → 2s) proves the goal.
    install_fault_plan(
        FaultPlan::new()
            .rule(FaultRule::delay_at("normalize", Duration::from_secs(1)).scoped("g3")),
    );
    let config = SearchConfig {
        timeout: Some(Duration::from_millis(250)),
        ..SearchConfig::default()
    };
    let verdict = Engine::builder()
        .config(config)
        .retry(RetryPolicy::new(2).with_escalation(8.0))
        .build()
        .load(SRC)
        .expect("fixture elaborates")
        .prove("g3")
        .expect("retry path returns a verdict");
    clear_fault_plan();
    assert!(verdict.is_proved(), "second attempt succeeds");
    assert_eq!(verdict.attempts, 2, "exactly one retry was spent");
}

#[test]
fn retry_recovers_an_injected_panic() {
    let _guard = PLAN_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    install_fault_plan(FaultPlan::new().rule(FaultRule::panic_at("expand").scoped("g3")));
    let report = Engine::builder()
        .retry(RetryPolicy::new(2))
        .build()
        .load(SRC)
        .expect("fixture elaborates")
        .prove_all();
    clear_fault_plan();
    assert!(report.all_proved(), "panicked attempt was retried");
    let g3 = report.goals.iter().find(|g| g.goal == "g3").unwrap();
    assert_eq!(g3.attempts, 2);
    assert!(report
        .goals
        .iter()
        .all(|g| g.goal == "g3" || g.attempts == 1));
}

#[test]
fn without_retry_a_panicked_goal_keeps_its_panicked_verdict() {
    let _guard = PLAN_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    install_fault_plan(FaultPlan::new().rule(FaultRule::panic_at("expand").scoped("g3")));
    let report = prove_all(2);
    clear_fault_plan();
    assert_eq!(report.panicked(), 1);
    let g3 = report.goals.iter().find(|g| g.goal == "g3").unwrap();
    assert!(g3.is_panicked());
    assert_eq!(g3.attempts, 1, "default policy performs no retries");
}

/// Grep-pin: every shared lock in the workspace goes through the
/// poison-recovering helper, so no `.expect("... poisoned")` call site may
/// remain in non-test source (a panic while holding such a lock would
/// otherwise cascade into an abort on every later access).
#[test]
fn no_expect_poisoned_call_sites_remain_outside_tests() {
    let crates = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut offenders = Vec::new();
    scan(&crates, &mut offenders);
    assert!(
        offenders.is_empty(),
        "lock call sites must use cycleq_trace::lock_recover, found:\n{}",
        offenders.join("\n")
    );
}

fn scan(dir: &Path, offenders: &mut Vec<String>) {
    for entry in std::fs::read_dir(dir).expect("workspace sources readable") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            // Integration-test sources may poison locks on purpose.
            if path.file_name().is_some_and(|n| n == "tests") {
                continue;
            }
            scan(&path, offenders);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path).expect("source readable");
            for (i, line) in text.lines().enumerate() {
                let code = line.trim_start();
                if code.starts_with("//") {
                    continue;
                }
                if code.contains(".expect(") && code.contains("poisoned") {
                    offenders.push(format!("{}:{}: {}", path.display(), i + 1, code));
                }
            }
        }
    }
}
