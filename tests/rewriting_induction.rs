//! Experiment E8 (§4): rewriting induction proves orientable structural
//! goals and its derivations translate to locally checkable cyclic proofs
//! (Theorem 4.3); inherently unorientable goals fail, while the cyclic
//! search handles them.

use cycleq::{GlobalCheck, Session};
use cycleq_ri::{RiOutcome, RiProver};

const SRC: &str = "
data Nat = Z | S Nat
data List a = Nil | Cons a (List a)
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
app :: List a -> List a -> List a
app Nil ys = ys
app (Cons x xs) ys = Cons x (app xs ys)
len :: List a -> Nat
len Nil = Z
len (Cons x xs) = S (len xs)
goal zeroRight: add x Z === x
goal succRight: add x (S y) === S (add x y)
goal assoc: add (add x y) z === add x (add y z)
goal appAssoc: app (app xs ys) zs === app xs (app ys zs)
goal lenApp: len (app xs ys) === add (len xs) (len ys)
goal comm: add x y === add y x
";

#[test]
fn ri_proves_orientable_goals_and_translations_check() {
    let session = Session::from_source(SRC).unwrap();
    let module = session.module();
    let ri = RiProver::new(&module.program).unwrap();
    for goal in ["zeroRight", "succRight", "assoc", "appAssoc", "lenApp"] {
        let g = module.goal(goal).unwrap().clone();
        let res = ri.prove(g.eq, g.vars);
        assert!(res.outcome.is_proved(), "{goal}: {:?}", res.outcome);
        // Theorem 4.3: the derivation is a (partial) cyclic proof; every
        // rule instance is locally valid.
        cycleq::check(&res.proof, &module.program, GlobalCheck::TrustConstruction)
            .unwrap_or_else(|e| panic!("{goal}: {e}"));
    }
}

#[test]
fn ri_translation_variable_traces_verify_for_structural_proofs() {
    // For purely structural inductions the reduction-order progress points
    // coincide with variable traces, so even the decidable size-change
    // check passes.
    let session = Session::from_source(SRC).unwrap();
    let module = session.module();
    let ri = RiProver::new(&module.program).unwrap();
    for goal in ["zeroRight", "appAssoc"] {
        let g = module.goal(goal).unwrap().clone();
        let res = ri.prove(g.eq, g.vars);
        assert!(res.outcome.is_proved());
        cycleq::check(&res.proof, &module.program, GlobalCheck::VariableTraces)
            .unwrap_or_else(|e| panic!("{goal}: {e}"));
    }
}

#[test]
fn commutativity_is_unorientable_for_ri_but_provable_cyclically() {
    let session = Session::from_source(SRC).unwrap();
    let module = session.module();
    let ri = RiProver::new(&module.program).unwrap();
    let g = module.goal("comm").unwrap().clone();
    let res = ri.prove(g.eq, g.vars);
    assert!(
        matches!(res.outcome, RiOutcome::FailedToOrient { .. }),
        "{:?}",
        res.outcome
    );

    // The cyclic prover is ambivalent to orientation (§1.2).
    let v = session.prove("comm").unwrap();
    assert!(v.is_proved());
}

#[test]
fn ri_uses_hypotheses_as_rewrite_rules() {
    let session = Session::from_source(SRC).unwrap();
    let module = session.module();
    let ri = RiProver::new(&module.program).unwrap();
    let g = module.goal("assoc").unwrap().clone();
    let res = ri.prove(g.eq, g.vars);
    assert!(res.outcome.is_proved());
    assert!(res.stats.hyp_steps >= 1, "inductive hypotheses must fire");
    // The proof has back edges to the expanded (hypothesis) vertices.
    let report =
        cycleq::check(&res.proof, &module.program, GlobalCheck::TrustConstruction).unwrap();
    assert!(report.back_edges >= 1);
}

#[test]
fn cyclic_search_subsumes_ri_on_this_suite() {
    // Everything RI proves here, the cyclic prover proves as well
    // (Theorem 4.3 in practice).
    let session = Session::from_source(SRC).unwrap();
    for goal in ["zeroRight", "succRight", "assoc", "appAssoc", "lenApp"] {
        let v = session.prove(goal).unwrap();
        assert!(v.is_proved(), "{goal}: {:?}", v.result.outcome);
    }
}
