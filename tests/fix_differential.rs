//! Differential test for `lint --fix`: completing fig. 2's overlapping
//! `sub` into an orthogonal system must not change any goal's verdict.
//!
//! The repair is only sound because the critical pair converges — on the
//! shared instance `sub Z Z` both clauses already produced `Z` — so the
//! repaired program rewrites every term to the same normal form and the
//! prover must reach byte-identical verdicts on every goal.

use cycleq::Session;

const FIG2: &str = "data Nat = Z | S Nat
sub :: Nat -> Nat -> Nat
sub Z y = Z
sub x Z = x
sub (S x) (S y) = sub x y
goal subSelf: sub x x === Z
goal subZ: sub x Z === x
goal subS: sub (S x) (S y) === sub x y
";

#[test]
fn repaired_fig2_program_proves_the_same_goals_with_identical_verdicts() {
    let original = Session::from_source(FIG2).unwrap();
    let out = original.analyze_with_fixes();
    assert!(out.applied >= 1, "the overlap fix must apply: {out:?}");
    assert!(
        out.source.contains("sub (S x) Z = S x"),
        "the catch-all is narrowed to the S case:\n{}",
        out.source
    );
    assert!(
        !out.source.contains("sub x Z = x"),
        "the overlapping catch-all is gone:\n{}",
        out.source
    );
    assert!(
        out.diagnostics.is_empty(),
        "the repaired program re-lints clean: {:?}",
        out.diagnostics
    );

    let repaired = Session::from_source(&out.source).unwrap();
    assert_eq!(
        original.goal_names(),
        repaired.goal_names(),
        "repair must not touch goals"
    );

    let mut before = String::new();
    let mut after = String::new();
    for goal in original.goal_names() {
        let a = original.prove(goal).unwrap();
        let b = repaired.prove(goal).unwrap();
        before.push_str(&format!("{goal}: {:?}\n", a.result.outcome));
        after.push_str(&format!("{goal}: {:?}\n", b.result.outcome));
    }
    assert_eq!(before, after, "verdicts must be byte-identical");
    assert!(
        before.contains("Proved"),
        "the suite is not vacuous:\n{before}"
    );
}
