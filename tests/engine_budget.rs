//! Cancellation and budget behaviour of the Engine API, end to end:
//!
//! - cancelling a search from another thread returns promptly (the
//!   acceptance bar is ~50 ms of latency; the token is polled every
//!   contraction, so the observed latency is microseconds — the bound here
//!   only absorbs CI scheduler noise) with a `Cancelled` outcome and a
//!   checkable partial state;
//! - a batch deadline on a suite with one explosive goal is apportioned
//!   into per-goal slices, so the cheap goals still finish and the batch
//!   never overruns its deadline (the tail-latency regression test).

use std::time::{Duration, Instant};

use cycleq::{Budget, CancelToken, Engine, Outcome, SearchConfig};

/// A program whose `loop` rule diverges: with unbounded fuel and no
/// config-level timeout, only an external budget or cancellation can stop
/// a goal that reduces `loop`.
const EXPLOSIVE_SRC: &str = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
loop :: Nat -> Nat
loop x = loop x
goal cheapA: add Z y === y
goal heavy: loop x === Z
goal cheapB: add x Z === x
goal cheapC: add x (S y) === S (add x y)
";

/// An engine whose own limits never fire, so the external budget/token is
/// the only thing that can stop the explosive goal.
fn unbounded_engine(jobs: usize) -> Engine {
    Engine::builder()
        .config(SearchConfig {
            reduction_fuel: usize::MAX,
            timeout: None,
            ..SearchConfig::default()
        })
        .jobs(jobs)
        .build()
}

#[test]
fn cancelling_mid_search_returns_promptly_with_partial_state() {
    let session = unbounded_engine(1).load(EXPLOSIVE_SRC).unwrap();
    let token = CancelToken::new();
    let worker_token = token.clone();
    let (verdict, latency) = std::thread::scope(|s| {
        let handle = s
            .spawn(|| session.prove_with_budget("heavy", &[], &Budget::unlimited(), &worker_token));
        // Let the search get stuck deep inside the committed reduction of
        // `loop x` before cancelling from this thread.
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
        let cancelled_at = Instant::now();
        let verdict = handle.join().expect("search thread panicked");
        (verdict, cancelled_at.elapsed())
    });
    let verdict = verdict.expect("known goal");
    assert_eq!(verdict.result.outcome, Outcome::Cancelled);
    // ~50ms acceptance bar; see module docs for why the bound is generous.
    assert!(
        latency < Duration::from_millis(200),
        "cancellation latency too high: {latency:?}"
    );
    // The partial state stays inspectable: the root goal node exists and
    // the stats cover the time spent before cancellation.
    assert!(!verdict.result.proof.is_empty());
    assert!(verdict.result.stats.nodes_created >= 1);
    assert!(verdict.result.stats.elapsed >= Duration::from_millis(25));
    assert!(!verdict.is_proved());
    assert!(!verdict.is_refuted());
}

#[test]
fn pre_cancelled_batch_returns_immediately_with_cancelled_goals() {
    let session = unbounded_engine(2).load(EXPLOSIVE_SRC).unwrap();
    let token = CancelToken::new();
    token.cancel();
    let start = Instant::now();
    let report = session.prove_all_with(&Budget::unlimited(), &token);
    assert!(start.elapsed() < Duration::from_secs(2));
    assert_eq!(report.goals.len(), 4);
    assert!(report.any_gave_up());
    assert_eq!(report.proved(), 0);
    for g in &report.goals {
        let v = g.verdict().expect("cancellation is not a goal error");
        assert_eq!(v.result.outcome, Outcome::Cancelled, "{}", g.goal);
    }
}

#[test]
fn batch_deadline_with_one_explosive_goal_still_lets_cheap_goals_finish() {
    // The tail-latency regression test: `heavy` would run forever, but the
    // batch deadline is apportioned into per-goal slices, so it exhausts
    // only its slice while the cheap goals (milliseconds each) all prove.
    for jobs in [1, 2] {
        let session = unbounded_engine(jobs).load(EXPLOSIVE_SRC).unwrap();
        let budget = Budget::unlimited().with_timeout(Duration::from_secs(2));
        let start = Instant::now();
        let report = session.prove_all_with(&budget, &CancelToken::new());
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(8),
            "jobs={jobs}: batch overran its deadline: {elapsed:?}"
        );
        let by_name = |name: &str| {
            report
                .goals
                .iter()
                .find(|g| g.goal == name)
                .unwrap_or_else(|| panic!("missing goal {name}"))
        };
        for cheap in ["cheapA", "cheapB", "cheapC"] {
            assert!(
                by_name(cheap).is_proved(),
                "jobs={jobs}: {cheap} starved by the explosive goal: {:?}",
                by_name(cheap).verdict().map(|v| &v.result.outcome)
            );
        }
        let heavy = by_name("heavy").verdict().expect("ran to a verdict");
        assert_eq!(
            heavy.result.outcome,
            Outcome::Timeout,
            "jobs={jobs}: the explosive goal must exhaust only its slice"
        );
        // Declaration order survives whatever the scheduler did.
        let names: Vec<&str> = report.goals.iter().map(|g| g.goal.as_str()).collect();
        assert_eq!(names, vec!["cheapA", "heavy", "cheapB", "cheapC"]);
    }
}

#[test]
fn per_goal_budget_dimensions_apply_to_each_goal() {
    // Node and fuel ceilings are per goal (not apportioned): a tiny node
    // budget stops the inductive goals but leaves the reduce-only goal
    // provable.
    let session = unbounded_engine(1).load(EXPLOSIVE_SRC).unwrap();
    let budget = Budget::unlimited()
        .with_max_nodes(2)
        .with_fuel(10_000)
        .with_timeout(Duration::from_secs(5));
    let report = session
        .prove_many_with(&["cheapA", "cheapB"], &[], &budget, &CancelToken::new())
        .unwrap();
    assert!(report.goals[0].is_proved(), "reduce-only goal fits 2 nodes");
    let b = report.goals[1].verdict().unwrap();
    assert_eq!(b.result.outcome, Outcome::NodeBudget);
}
