//! Observability acceptance tests: streamed events under parallel batches,
//! deterministic counters across job counts, span collection, and the
//! `Session::profile` / `Engine::metrics` surfaces.
//!
//! The span/metrics machinery is process-global, so the tests that enable
//! collection or compare registry snapshots serialize on [`registry_lock`];
//! the event-sink and counter-determinism tests read only per-goal state
//! and run freely in parallel.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use cycleq::{Engine, EventSink, ProveEvent, SearchConfig, Session};

const SUITE_SRC: &str = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal addZeroRight: add x Z === x
goal addSuccRight: add x (S y) === S (add x y)
goal addComm: add x y === add y x
";

fn session(jobs: usize) -> Session {
    Engine::builder()
        .config(SearchConfig {
            timeout: Some(Duration::from_secs(10)),
            ..SearchConfig::default()
        })
        .jobs(jobs)
        .build()
        .load(SUITE_SRC)
        .expect("suite source loads")
}

/// Serializes tests that touch the process-global registry or span sink.
fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .expect("registry lock")
}

#[derive(Default)]
struct Collect(Mutex<Vec<ProveEvent>>);

impl EventSink for Collect {
    fn event(&self, event: &ProveEvent) {
        self.0.lock().unwrap().push(event.clone());
    }
}

fn prove_all_collecting(jobs: usize) -> (cycleq::BatchReport, Vec<ProveEvent>) {
    let sink = Arc::new(Collect::default());
    let events = sink.clone();
    let report = Engine::builder()
        .config(SearchConfig {
            timeout: Some(Duration::from_secs(10)),
            // Force the deepening loop to run several rounds so the batch
            // streams RoundDeepened events (the default initial depth
            // proves these goals in their first round).
            initial_depth: 1,
            depth_step: 1,
            ..SearchConfig::default()
        })
        .jobs(jobs)
        .on_event(move |ev: &ProveEvent| events.event(ev))
        .build()
        .load(SUITE_SRC)
        .expect("suite source loads")
        .prove_all();
    let log = sink.0.lock().unwrap().clone();
    (report, log)
}

#[test]
fn concurrent_events_bracket_every_goal_and_carry_round_times() {
    for jobs in [1, 4] {
        let (report, log) = prove_all_collecting(jobs);
        assert!(report.all_proved(), "jobs={jobs}");
        for idx in 0..report.goals.len() {
            let started = log
                .iter()
                .position(|e| matches!(e, ProveEvent::GoalStarted { index, .. } if *index == idx))
                .unwrap_or_else(|| panic!("jobs={jobs}: goal {idx} never started"));
            let finished = log
                .iter()
                .position(|e| matches!(e, ProveEvent::GoalFinished { index, .. } if *index == idx))
                .unwrap_or_else(|| panic!("jobs={jobs}: goal {idx} never finished"));
            assert!(
                started < finished,
                "jobs={jobs}: goal {idx} finished at {finished} before starting at {started}"
            );
            // Every round event for this goal lands inside the bracket and
            // reports non-decreasing elapsed time as the depth grows.
            let rounds: Vec<(usize, usize, Duration)> = log
                .iter()
                .enumerate()
                .filter_map(|(at, e)| match e {
                    ProveEvent::RoundDeepened {
                        index,
                        depth,
                        elapsed,
                        ..
                    } if *index == idx => Some((at, *depth, *elapsed)),
                    _ => None,
                })
                .collect();
            for w in rounds.windows(2) {
                assert!(w[0].1 < w[1].1, "jobs={jobs}: depths must increase");
                assert!(
                    w[0].2 <= w[1].2,
                    "jobs={jobs}: round elapsed must be monotonic"
                );
            }
            for (at, _, _) in &rounds {
                assert!(
                    started < *at && *at < finished,
                    "jobs={jobs}: round event outside its goal's bracket"
                );
            }
        }
        // addComm needs iterative deepening, so at least one round event
        // must have streamed with a measured duration.
        assert!(
            log.iter()
                .any(|e| matches!(e, ProveEvent::RoundDeepened { .. })),
            "jobs={jobs}: no RoundDeepened event streamed"
        );
    }
}

#[test]
fn counter_totals_are_deterministic_across_job_counts() {
    // With the shared normal-form cache disabled, every goal's search is
    // fully independent, so per-goal counters — and their batch totals —
    // must be identical whatever the worker count.
    let run = |jobs: usize| {
        Engine::builder()
            .config(SearchConfig {
                timeout: Some(Duration::from_secs(10)),
                ..SearchConfig::default()
            })
            .jobs(jobs)
            .shared_cache(false)
            .build()
            .load(SUITE_SRC)
            .expect("suite source loads")
            .prove_all()
    };
    let sequential = run(1);
    let parallel = run(4);
    for (s, p) in sequential.goals.iter().zip(&parallel.goals) {
        assert_eq!(s.goal, p.goal);
        let (sv, pv) = (s.verdict().unwrap(), p.verdict().unwrap());
        assert_eq!(
            sv.result.stats.entries(),
            pv.result.stats.entries(),
            "goal {}: counters must not depend on the worker count",
            s.goal
        );
    }
    for ((key, s), (_, p)) in sequential
        .stats
        .entries()
        .into_iter()
        .zip(parallel.stats.entries())
    {
        assert_eq!(
            s, p,
            "batch total {key} must not depend on the worker count"
        );
    }
}

#[test]
fn session_profile_reports_the_span_taxonomy() {
    let _guard = registry_lock();
    cycleq::trace::set_enabled(true);
    let session = session(1);
    let verdict = session.prove("addComm").expect("proves");
    assert!(verdict.is_proved());
    let profile = session.profile().expect("profile captured after proving");
    for phase in ["prove_goal", "round", "expand", "normalize", "check"] {
        let stat = profile
            .phase(phase)
            .unwrap_or_else(|| panic!("phase {phase} missing from profile"));
        assert!(stat.count >= 1, "{phase}: no spans recorded");
        assert!(stat.total_seconds >= 0.0);
        // The delta keeps the later snapshot's process-lifetime maximum,
        // so `max` can legitimately exceed this call's total.
        assert!(stat.max_seconds > 0.0, "{phase}: no span took any time");
    }
    // One top-level search on this session: exactly as many prove_goal
    // spans as goals proved in the call (hints included, here none).
    assert_eq!(profile.phase("prove_goal").unwrap().count, 1);
}

#[test]
fn collected_trace_brackets_every_goal_per_thread() {
    let _guard = registry_lock();
    cycleq::trace::start_collect();
    let report = session(2).prove_all();
    let trace = cycleq::trace::finish_collect();
    assert!(report.all_proved());
    assert_eq!(
        trace.count("prove_goal"),
        report.goals.len(),
        "one complete prove_goal span per goal"
    );
    assert!(trace.count("round") >= trace.count("prove_goal"));
    let json = trace.to_chrome_json();
    assert!(json.contains("\"ph\":\"X\""), "complete events missing");
    assert!(
        json.contains("\"name\":\"thread_name\""),
        "per-thread metadata missing"
    );
    assert!(json.contains("worker-0"), "worker thread track missing");
}

#[test]
fn engine_metrics_snapshot_counts_finished_goals() {
    let _guard = registry_lock();
    let engine = Engine::builder()
        .config(SearchConfig {
            timeout: Some(Duration::from_secs(10)),
            ..SearchConfig::default()
        })
        .build();
    let before = engine.metrics();
    let report = engine.load(SUITE_SRC).expect("loads").prove_all();
    assert!(report.all_proved());
    let delta = engine.metrics().delta(&before);
    assert_eq!(
        delta.value("cycleq_goals_total{status=\"proved\"}"),
        Some(report.goals.len() as u64),
        "every proved goal is counted exactly once"
    );
    assert!(
        delta.value("cycleq_search_nodes_created_total").unwrap() > 0,
        "search counters flow into the registry"
    );
    let goal_seconds = delta.histogram("cycleq_goal_seconds").expect("histogram");
    assert_eq!(goal_seconds.count, report.goals.len() as u64);
    let prom = delta.to_prometheus();
    assert!(prom.contains("# TYPE cycleq_goals_total counter"));
    assert!(prom.contains("cycleq_goal_seconds_bucket{le=\"+Inf\"}"));
}
