//! Term orders: the subterm order `⊴` (Lemma 2.1), the lexicographic path
//! order used as the reduction order for rewriting induction (§4), and the
//! decreasing order `≺` (Lemma 4.1).

use cycleq_term::{Head, Signature, SymId, Term};

use crate::rule::RuleId;
use crate::trs::Trs;

/// A stable order on terms (§2): `M ≤ N ⟹ Mθ ≤ Nθ`.
///
/// Only the strict part is exposed; reflexive closure is up to the caller.
pub trait TermOrder {
    /// Whether `s` is strictly greater than `t`.
    fn gt(&self, s: &Term, t: &Term) -> bool;
}

/// The (proper) subterm order `◁`, the substructural order used by the
/// CycleQ implementation's traces (§5.2).
#[derive(Copy, Clone, Debug, Default)]
pub struct SubtermOrder;

impl TermOrder for SubtermOrder {
    fn gt(&self, s: &Term, t: &Term) -> bool {
        t.is_proper_subterm_of(s)
    }
}

/// A total precedence on function symbols for [`Lpo`].
#[derive(Clone, Debug)]
pub struct Precedence {
    weight: Vec<u32>,
}

impl Precedence {
    /// The default precedence for a signature: all constructors are smaller
    /// than all defined symbols; within each class, declaration order
    /// decides (later declarations are larger).
    ///
    /// This matches the usual convention for functional programs, where a
    /// function defined later may call earlier ones and should therefore be
    /// larger in the precedence.
    pub fn from_signature(sig: &Signature) -> Precedence {
        let n = sig.num_syms() as u32;
        let mut weight = vec![0; sig.num_syms()];
        for (id, decl) in sig.syms() {
            let base = match decl.kind() {
                cycleq_term::SymKind::Constructor(_) => 0,
                cycleq_term::SymKind::Defined => n,
            };
            weight[id.index()] = base + id.index() as u32;
        }
        Precedence { weight }
    }

    /// Overrides the weight of a symbol (larger = greater precedence).
    pub fn set_weight(&mut self, sym: SymId, weight: u32) {
        self.weight[sym.index()] = weight;
    }

    /// The weight of a symbol.
    pub fn weight(&self, sym: SymId) -> u32 {
        self.weight[sym.index()]
    }

    /// Whether `f` has strictly greater precedence than `g`.
    pub fn gt(&self, f: SymId, g: SymId) -> bool {
        self.weight(f) > self.weight(g)
    }
}

/// The lexicographic path order induced by a precedence.
///
/// LPO is a simplification order: it is stable, well-founded (for a
/// well-founded precedence), and has the subterm property, making it a
/// *reduction order* in the sense of §4 whenever every program rule is
/// orientated left-to-right.
///
/// Terms with applied variable heads are compared conservatively: such a
/// head is treated as a pseudo-symbol smaller than every real symbol and
/// comparable only to itself.
#[derive(Clone, Debug)]
pub struct Lpo {
    prec: Precedence,
}

impl Lpo {
    /// An LPO from an explicit precedence.
    pub fn new(prec: Precedence) -> Lpo {
        Lpo { prec }
    }

    /// An LPO with the default precedence for the signature.
    pub fn from_signature(sig: &Signature) -> Lpo {
        Lpo::new(Precedence::from_signature(sig))
    }

    /// The underlying precedence.
    pub fn precedence(&self) -> &Precedence {
        &self.prec
    }

    fn head_gt(&self, f: Head, g: Head) -> bool {
        match (f, g) {
            (Head::Sym(a), Head::Sym(b)) => self.prec.gt(a, b),
            (Head::Sym(_), Head::Var(_)) => true,
            _ => false,
        }
    }

    fn ge(&self, s: &Term, t: &Term) -> bool {
        s == t || self.gt_inner(s, t)
    }

    fn gt_inner(&self, s: &Term, t: &Term) -> bool {
        // Case: t is a variable occurring in s.
        if let Some(v) = t.as_var() {
            return s.as_var() != Some(v) && s.contains_var(v);
        }
        // A bare variable is never greater than a non-variable.
        if s.as_var().is_some() {
            return false;
        }
        // LPO1: some argument of s dominates t.
        if s.args().iter().any(|si| self.ge(si, t)) {
            return true;
        }
        // LPO2: head precedence decides, s must dominate all arguments of t.
        if self.head_gt(s.head(), t.head()) {
            return t.args().iter().all(|tj| self.gt_inner(s, tj));
        }
        // LPO3: equal heads, lexicographic comparison of arguments.
        if s.head() == t.head() {
            let mut strict = None;
            for (i, (si, ti)) in s.args().iter().zip(t.args()).enumerate() {
                if si != ti {
                    strict = Some(i);
                    break;
                }
            }
            let lex_gt = match strict {
                Some(i) => self.gt_inner(&s.args()[i], &t.args()[i]),
                None => s.args().len() > t.args().len(),
            };
            return lex_gt && t.args().iter().all(|tj| self.gt_inner(s, tj));
        }
        false
    }
}

impl TermOrder for Lpo {
    fn gt(&self, s: &Term, t: &Term) -> bool {
        self.gt_inner(s, t)
    }
}

/// The decreasing order `≺` of §4: the transitive closure of the reduction
/// order together with the proper-subterm relation (Lemma 4.1).
///
/// Because LPO already has the subterm property, `≻` coincides with the
/// LPO on the terms compared here; this wrapper exists to document the role
/// the order plays in rewriting induction and to combine with other base
/// orders if desired.
#[derive(Clone, Debug)]
pub struct DecreasingOrder {
    base: Lpo,
}

impl DecreasingOrder {
    /// Builds `≺` over the given LPO.
    pub fn new(base: Lpo) -> DecreasingOrder {
        DecreasingOrder { base }
    }
}

impl TermOrder for DecreasingOrder {
    fn gt(&self, s: &Term, t: &Term) -> bool {
        t.is_proper_subterm_of(s) || self.base.gt(s, t)
    }
}

/// Checks that every rule of the system is strictly decreasing under the
/// order — the precondition for `≤` to be a reduction order for `R` (§4).
///
/// # Errors
///
/// Returns the first non-decreasing rule.
pub fn check_rules_decreasing(trs: &Trs, order: &impl TermOrder) -> Result<(), RuleId> {
    for (id, rule) in trs.rules() {
        if !order.gt(&rule.lhs_term(), rule.rhs()) {
            return Err(id);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::nat_list_program;
    use cycleq_term::{Term, VarStore};

    #[test]
    fn subterm_property() {
        let p = nat_list_program();
        let lpo = Lpo::from_signature(&p.prog.sig);
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let sx = p.f.s(Term::var(x));
        assert!(lpo.gt(&sx, &Term::var(x)));
        assert!(!lpo.gt(&Term::var(x), &sx));
        let ssx = p.f.s(sx.clone());
        assert!(lpo.gt(&ssx, &sx));
    }

    #[test]
    fn irreflexive_on_samples() {
        let p = nat_list_program();
        let lpo = Lpo::from_signature(&p.prog.sig);
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        for t in [Term::var(x), p.f.num(3), p.f.s(Term::var(x))] {
            assert!(!lpo.gt(&t, &t), "LPO must be irreflexive");
        }
    }

    #[test]
    fn program_rules_are_lpo_decreasing() {
        let p = nat_list_program();
        let lpo = Lpo::from_signature(&p.prog.sig);
        assert_eq!(check_rules_decreasing(&p.prog.trs, &lpo), Ok(()));
    }

    #[test]
    fn defined_symbols_dominate_constructors() {
        let p = nat_list_program();
        let lpo = Lpo::from_signature(&p.prog.sig);
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        // add x y > S (S y): head add > S and add x y > S y > y.
        let lhs = Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]);
        let rhs = p.f.s(p.f.s(Term::var(y)));
        assert!(lpo.gt(&lhs, &rhs));
    }

    #[test]
    fn unorientable_commutativity() {
        // add x y vs add y x: neither side is greater — the §4 limitation.
        let p = nat_list_program();
        let lpo = Lpo::from_signature(&p.prog.sig);
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        let lhs = Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]);
        let rhs = Term::apps(p.f.add, vec![Term::var(y), Term::var(x)]);
        assert!(!lpo.gt(&lhs, &rhs));
        assert!(!lpo.gt(&rhs, &lhs));
    }

    #[test]
    fn stability_under_substitution_samples() {
        let p = nat_list_program();
        let lpo = Lpo::from_signature(&p.prog.sig);
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        let s = Term::apps(p.f.add, vec![f_s(&p, Term::var(x)), Term::var(y)]);
        let t = p.f.s(Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]));
        assert!(lpo.gt(&s, &t));
        let theta = cycleq_term::Subst::singleton(x, p.f.num(4));
        assert!(lpo.gt(&theta.apply(&s), &theta.apply(&t)));
    }

    fn f_s(p: &crate::fixtures::ProgramFixture, t: Term) -> Term {
        p.f.s(t)
    }

    #[test]
    fn decreasing_order_includes_subterms() {
        let p = nat_list_program();
        let dec = DecreasingOrder::new(Lpo::from_signature(&p.prog.sig));
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let t = Term::apps(p.f.add, vec![Term::var(x), p.f.num(0)]);
        assert!(dec.gt(&t, &Term::var(x)));
    }

    #[test]
    fn lex_comparison_on_equal_heads() {
        let p = nat_list_program();
        let lpo = Lpo::from_signature(&p.prog.sig);
        let mut vars = VarStore::new();
        let y = vars.fresh("y", p.f.nat_ty());
        // add (S y) Z > add y (S Z)? First args: S y > y, and lhs > each rhs
        // arg: add (S y) Z > y (subterm) and add (S y) Z > S Z? head add > S
        // and add (S y) Z > Z. Yes.
        let lhs = Term::apps(p.f.add, vec![p.f.s(Term::var(y)), Term::sym(p.f.zero)]);
        let rhs = Term::apps(p.f.add, vec![Term::var(y), p.f.num(1)]);
        assert!(lpo.gt(&lhs, &rhs));
        assert!(!lpo.gt(&rhs, &lhs));
    }
}
