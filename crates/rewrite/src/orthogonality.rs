//! Orthogonality: the standard syntactic criterion guaranteeing the
//! confluence assumed by Remark 2.1.
//!
//! A constructor-based system (rule arguments are patterns without defined
//! symbols) can only have root overlaps between rules of the same head, so
//! the check reduces to: left-linearity of every rule, plus non-unifiability
//! of the parameter vectors of distinct rules for the same symbol.

use cycleq_term::{unify, Term, VarStore};

use crate::rule::RuleId;
use crate::trs::Trs;

/// The outcome of the orthogonality check.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct OrthogonalityReport {
    /// Rules whose left-hand sides repeat a variable.
    pub non_left_linear: Vec<RuleId>,
    /// Pairs of distinct rules for the same head whose left-hand sides
    /// overlap (unify), i.e. genuine ambiguity.
    pub overlaps: Vec<(RuleId, RuleId)>,
}

impl OrthogonalityReport {
    /// Whether the system is orthogonal (and hence confluent).
    pub fn is_orthogonal(&self) -> bool {
        self.non_left_linear.is_empty() && self.overlaps.is_empty()
    }
}

/// Checks left-linearity and root overlaps for the whole system.
pub fn check_orthogonality(trs: &Trs) -> OrthogonalityReport {
    let mut report = OrthogonalityReport::default();
    for (id, rule) in trs.rules() {
        if !rule.is_left_linear() {
            report.non_left_linear.push(id);
        }
    }
    let ids: Vec<RuleId> = trs.rules().map(|(id, _)| id).collect();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            if trs.rule(a).head() != trs.rule(b).head() {
                continue;
            }
            // Freshen both rules into a scratch store so their variables are
            // disjoint, then unify the full left-hand sides.
            let mut scratch = VarStore::new();
            let (pa, _) = trs.freshen_rule(a, &mut scratch);
            let (pb, _) = trs.freshen_rule(b, &mut scratch);
            let ta = Term::apps(trs.rule(a).head(), pa);
            let tb = Term::apps(trs.rule(b).head(), pb);
            if unify(&ta, &tb).is_ok() {
                report.overlaps.push((a, b));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::nat_list_program;
    use crate::trs::Trs;
    use cycleq_term::{Type, TypeScheme};

    #[test]
    fn fixture_program_is_orthogonal() {
        let p = nat_list_program();
        let report = check_orthogonality(&p.prog.trs);
        assert!(report.is_orthogonal(), "{report:?}");
    }

    #[test]
    fn overlapping_rules_are_detected() {
        let f = cycleq_term::fixtures::NatList::new();
        let mut sig = f.sig.clone();
        let g = sig
            .add_defined("g", TypeScheme::mono(Type::arrow(f.nat_ty(), f.nat_ty())))
            .unwrap();
        let mut trs = Trs::new();
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        // g x = Z and g Z = Z overlap on g Z.
        trs.add_rule(
            &sig,
            g,
            vec![cycleq_term::Term::var(x)],
            cycleq_term::Term::sym(f.zero),
        )
        .unwrap();
        trs.add_rule(
            &sig,
            g,
            vec![cycleq_term::Term::sym(f.zero)],
            cycleq_term::Term::sym(f.zero),
        )
        .unwrap();
        let report = check_orthogonality(&trs);
        assert_eq!(report.overlaps.len(), 1);
        assert!(!report.is_orthogonal());
    }

    #[test]
    fn non_left_linear_rules_are_detected() {
        let f = cycleq_term::fixtures::NatList::new();
        let mut sig = f.sig.clone();
        let eq = sig
            .add_defined(
                "eqSame",
                TypeScheme::mono(Type::arrows(vec![f.nat_ty(), f.nat_ty()], f.nat_ty())),
            )
            .unwrap();
        let mut trs = Trs::new();
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        trs.add_rule(
            &sig,
            eq,
            vec![cycleq_term::Term::var(x), cycleq_term::Term::var(x)],
            cycleq_term::Term::var(x),
        )
        .unwrap();
        let report = check_orthogonality(&trs);
        assert_eq!(report.non_left_linear.len(), 1);
    }

    #[test]
    fn disjoint_constructor_patterns_do_not_overlap() {
        let p = nat_list_program();
        // add's two rules have Z vs S patterns — no overlap reported.
        let report = check_orthogonality(&p.prog.trs);
        assert!(report.overlaps.is_empty());
    }
}
