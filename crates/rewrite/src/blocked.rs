//! Blocked-variable analysis: which variables prevent further reduction.
//!
//! The search's `(Case)` rule "always selects a variable preventing further
//! (non-strict) reduction, much like needed narrowing" (§6). A stuck,
//! fully-applied, defined-head subterm fails to match every rule for its
//! head; whenever a rule's pattern expects a constructor at a position where
//! the subject has a variable, that variable *blocks* the rule. Case
//! analysis on a blocking variable makes progress: at least one constructor
//! branch unblocks the rule.

use cycleq_term::{Head, Signature, Term, VarId};

use crate::reduce::Rewriter;
use crate::trs::Trs;

/// Outcome of simulating one pattern column (shared with the interned
/// analysis in `memo.rs`).
#[derive(PartialEq, Eq, Debug, Clone, Copy)]
pub(crate) enum Sim {
    /// The pattern structurally matches.
    Match,
    /// A constructor clash: the rule can never apply to instances obtained
    /// by case analysis alone.
    Clash,
    /// Matching is stuck on a variable or inner redex.
    Blocked,
}

fn simulate_rule(pat: &Term, arg: &Term, sig: &Signature, blockers: &mut Vec<VarId>) -> Sim {
    // Clashes against defined-head arguments are downgraded to Blocked: the
    // inner redex is analysed at its own position.
    match pat.head() {
        Head::Var(_) => Sim::Match,
        Head::Sym(_) => {
            if arg.head_sym().is_some_and(|h| sig.is_defined(h)) {
                return Sim::Blocked;
            }
            match (pat.head(), arg.head()) {
                (Head::Sym(k), Head::Sym(k2))
                    if k == k2 && pat.args().len() == arg.args().len() =>
                {
                    let mut out = Sim::Match;
                    for (p, a) in pat.args().iter().zip(arg.args()) {
                        match simulate_rule(p, a, sig, blockers) {
                            Sim::Clash => return Sim::Clash,
                            Sim::Blocked => out = Sim::Blocked,
                            Sim::Match => {}
                        }
                    }
                    out
                }
                (Head::Sym(_), Head::Sym(_)) => Sim::Clash,
                (Head::Sym(_), Head::Var(v)) => {
                    if arg.args().is_empty() && !blockers.contains(&v) {
                        blockers.push(v);
                    }
                    Sim::Blocked
                }
                _ => unreachable!("pattern head is a symbol"),
            }
        }
    }
}

/// Variables blocking rule matching at the *root* of `term`, in rule order.
///
/// Returns an empty vector when the root is not a stuck, fully-applied,
/// defined-head redex, or when its matching failures are attributable only
/// to inner redexes or applied higher-order variables.
pub fn root_case_candidates(sig: &Signature, trs: &Trs, term: &Term) -> Vec<VarId> {
    let mut out: Vec<VarId> = Vec::new();
    let Some(head) = term.head_sym() else {
        return out;
    };
    if !sig.is_defined(head) {
        return out;
    }
    for id in trs.rules_for(head) {
        let rule = trs.rule(*id);
        if rule.params().len() != term.args().len() {
            continue;
        }
        if rule.apply_root(term).is_some() {
            // Reducible at the root: not stuck, nothing blocks.
            return Vec::new();
        }
        let mut blockers = Vec::new();
        let mut verdict = Sim::Match;
        for (p, a) in rule.params().iter().zip(term.args()) {
            match simulate_rule(p, a, sig, &mut blockers) {
                Sim::Clash => {
                    verdict = Sim::Clash;
                    break;
                }
                Sim::Blocked => verdict = Sim::Blocked,
                Sim::Match => {}
            }
        }
        if verdict == Sim::Blocked {
            for v in blockers {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
    }
    out
}

/// Variables blocking reduction of `term`, ordered by preference: blockers
/// of leftmost-outermost stuck redexes first, then by rule order.
///
/// Returns an empty vector when the term has no stuck defined-head subterm
/// whose matching failure is attributable to a variable (e.g. a goal that is
/// already a constructor normal form, or one stuck only on applied
/// higher-order variables).
pub fn case_candidates(sig: &Signature, trs: &Trs, term: &Term) -> Vec<VarId> {
    let rw = Rewriter::new(sig, trs);
    let mut out: Vec<VarId> = Vec::new();
    for pos in rw.defined_positions(term) {
        let sub = term.at(&pos).expect("position from defined_positions");
        if rw.step_root(sub).is_some() {
            continue; // reducible, not stuck
        }
        for v in root_case_candidates(sig, trs, sub) {
            if !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::nat_list_program;
    use cycleq_term::{Term, VarStore};

    #[test]
    fn stuck_add_blocks_on_first_argument() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        let t = Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]);
        assert_eq!(case_candidates(&p.prog.sig, &p.prog.trs, &t), vec![x]);
    }

    #[test]
    fn reducible_terms_have_no_candidates() {
        let p = nat_list_program();
        let t = Term::apps(p.f.add, vec![p.f.num(0), p.f.num(1)]);
        assert!(case_candidates(&p.prog.sig, &p.prog.trs, &t).is_empty());
    }

    #[test]
    fn constructor_normal_forms_have_no_candidates() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let t = p.f.s(Term::var(x));
        assert!(case_candidates(&p.prog.sig, &p.prog.trs, &t).is_empty());
    }

    #[test]
    fn inner_stuck_redex_contributes_its_blocker() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        // add (add x Z) Z: outer is blocked on the inner redex; inner is
        // blocked on x. Only x should be reported.
        let inner = Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]);
        let t = Term::apps(p.f.add, vec![inner, Term::sym(p.f.zero)]);
        assert_eq!(case_candidates(&p.prog.sig, &p.prog.trs, &t), vec![x]);
    }

    #[test]
    fn leftmost_outermost_preference() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        // add x (add y Z): x blocks the outer redex, y the inner one.
        let inner = Term::apps(p.f.add, vec![Term::var(y), Term::sym(p.f.zero)]);
        let t = Term::apps(p.f.add, vec![Term::var(x), inner]);
        assert_eq!(case_candidates(&p.prog.sig, &p.prog.trs, &t), vec![x, y]);
    }

    #[test]
    fn applied_variable_heads_are_not_candidates() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let g = vars.fresh("g", cycleq_term::Type::arrow(p.f.nat_ty(), p.f.nat_ty()));
        let xs = vars.fresh("xs", p.f.list_ty(p.f.nat_ty()));
        // map g xs: xs blocks; g does not (it is a function variable).
        let t = Term::apps(p.f.map, vec![Term::var(g), Term::var(xs)]);
        assert_eq!(case_candidates(&p.prog.sig, &p.prog.trs, &t), vec![xs]);
    }
}
