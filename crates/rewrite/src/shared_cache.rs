//! A program-scoped, store-independent normal-form cache shared across
//! workers and across `prove` calls.
//!
//! Each [`crate::MemoRewriter`] owns its own [`cycleq_term::TermStore`], so
//! `TermId`s cannot cross rewriter (or thread) boundaries. What *can* cross
//! is the canonical flat word encoding of a term
//! ([`cycleq_term::TermStore::canonical_words`]): it is α-invariant in the
//! term's variables and refers to function symbols by their stable
//! [`cycleq_term::SymId`] index, so it means the same thing to every
//! rewriter working over the same [`crate::Program`].
//!
//! An entry maps the canonical words of a subject term to the canonical
//! words of its `R`-normal form, *encoded against the subject's variable
//! numbering* (rule right-hand sides introduce no fresh variables, so the
//! normal form's variables are a subset of the subject's). A consumer that
//! interned an α-equivalent subject inverts its own rename map to decode
//! the cached normal form straight into its own store.
//!
//! The cache is safe to share between threads: entries are keyed purely by
//! program-relative structure, only *complete* normal forms are ever
//! published (fuel- or deadline-cut reductions never are), and on the
//! orthogonal systems of Remark 2.1 normal forms are unique, so two workers
//! racing to publish the same key write the same value.
//!
//! **Scope caveat:** keys do not name the program. Sharing one cache
//! between rewriters for *different* programs is unsound (the same `SymId`
//! index may denote different symbols); keep one cache per loaded program,
//! as `cycleq::Session` does.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cycleq_trace::{metrics, Counter, Gauge};

/// Process-wide registry handles, shared by every cache instance (the
/// metric families therefore aggregate across caches; `cycleq::Session`
/// keeps one cache per program, so in practice they describe that one).
#[derive(Debug, Clone)]
struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    entries: Gauge,
    poison_recoveries: Counter,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: std::sync::OnceLock<CacheMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        hits: metrics().counter(
            "cycleq_cache_hits_total",
            "Shared normal-form cache lookups that found an entry.",
        ),
        misses: metrics().counter(
            "cycleq_cache_misses_total",
            "Shared normal-form cache lookups that found nothing.",
        ),
        evictions: metrics().counter(
            "cycleq_cache_evictions_total",
            "Entries evicted from bounded shared normal-form caches.",
        ),
        entries: metrics().gauge(
            "cycleq_cache_entries",
            "Entries currently stored across shared normal-form caches.",
        ),
        poison_recoveries: metrics().counter(
            "cycleq_cache_poison_recoveries_total",
            "Poisoned cache shards recovered by dropping their entries.",
        ),
    })
}

/// Number of independently locked shards. Workers normalising unrelated
/// goals rarely contend on the same shard; 16 keeps the memory overhead
/// trivial while making lock contention negligible for realistic `--jobs`.
const SHARDS: usize = 16;

/// Entries whose subject-plus-normal-form node count exceeds this are not
/// published: encoding/decoding is linear in term size, and gigantic normal
/// forms (deep numeral towers) would bloat the cache for reductions that
/// are cheap to replay locally relative to their transfer cost.
const MAX_ENTRY_NODES: usize = 16_384;

/// Counters describing a cache's lifetime activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Entries evicted to stay under the configured capacity (zero for
    /// unbounded caches).
    pub evictions: u64,
    /// Poisoned shards recovered by dropping their entries (a panic while a
    /// shard lock was held; the cache is a pure memo, so losing the shard
    /// only costs warmth, never soundness).
    pub poison_recoveries: u64,
}

/// Canonical flat term encoding, as produced by
/// [`cycleq_term::TermStore::canonical_words`].
type Words = Box<[u32]>;

/// A stored normal form plus its second-chance reference bit.
#[derive(Debug)]
struct Entry {
    nf: Words,
    /// Set by every lookup hit; gives the entry one extra trip around the
    /// eviction clock.
    referenced: bool,
}

/// One shard: the entry map plus the clock queue driving second-chance
/// eviction. Both live under one mutex, so the queue and map never
/// disagree about membership.
#[derive(Debug, Default)]
struct ShardMap {
    map: HashMap<Words, Entry>,
    /// Keys in clock order. An entry is evicted when its key reaches the
    /// front with the reference bit clear; a set bit buys it one rotation.
    clock: VecDeque<Words>,
}

impl ShardMap {
    /// Evicts entries until the shard is under `cap`, returning how many
    /// were evicted. Second chance: a referenced entry at the clock hand is
    /// unmarked and pushed to the back instead of evicted. Terminates
    /// because every rotation clears bits: at most one full trip precedes
    /// each eviction.
    fn evict_to(&mut self, cap: usize) -> u64 {
        let mut evicted = 0;
        while self.map.len() > cap {
            let Some(key) = self.clock.pop_front() else {
                break; // unreachable: clock and map stay in sync
            };
            match self.map.get_mut(&key) {
                Some(e) if e.referenced => {
                    e.referenced = false;
                    self.clock.push_back(key);
                }
                Some(_) => {
                    self.map.remove(&key);
                    evicted += 1;
                }
                None => {} // unreachable: eviction is the only removal
            }
        }
        evicted
    }
}

#[derive(Debug)]
struct Shard {
    map: Mutex<ShardMap>,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Shard>,
    /// Per-shard entry cap; `None` is unbounded.
    shard_cap: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl Inner {
    /// Locks a shard, recovering from poisoning by **dropping the shard's
    /// entries**. A panic while the shard lock was held may have torn the
    /// map/clock invariant (e.g. a key pushed to the clock but not yet
    /// inserted), so unlike a generic recovering lock this one resets the
    /// shard to empty. The cache is a pure memo over unique normal forms:
    /// losing a shard costs re-derivation work, never correctness.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> std::sync::MutexGuard<'a, ShardMap> {
        match shard.map.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                shard.map.clear_poison();
                let mut guard = poisoned.into_inner();
                let dropped = guard.map.len();
                guard.map.clear();
                guard.clock.clear();
                if dropped > 0 {
                    cache_metrics().entries.sub(dropped as u64);
                }
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                cache_metrics().poison_recoveries.inc();
                guard
            }
        }
    }
}

/// A thread-safe map from canonical subject words to canonical normal-form
/// words. Cheap to clone (clones share the same underlying map).
#[derive(Clone, Debug)]
pub struct SharedNormalFormCache {
    inner: Arc<Inner>,
}

impl Default for SharedNormalFormCache {
    fn default() -> SharedNormalFormCache {
        SharedNormalFormCache::new()
    }
}

impl SharedNormalFormCache {
    /// An empty, unbounded cache.
    pub fn new() -> SharedNormalFormCache {
        SharedNormalFormCache::bounded(None)
    }

    /// An empty cache holding at most roughly `capacity` entries, evicting
    /// with a second-chance (clock) policy once full: a hit marks its entry,
    /// a marked entry at the clock hand survives one extra rotation.
    ///
    /// The bound is enforced per shard (`capacity / 16`, floored at one
    /// entry per shard), so the total is approximate: tiny capacities round
    /// up to one entry per shard, and skewed key distributions can leave
    /// some shards below their share.
    pub fn with_capacity(capacity: usize) -> SharedNormalFormCache {
        SharedNormalFormCache::bounded(Some((capacity / SHARDS).max(1)))
    }

    fn bounded(shard_cap: Option<usize>) -> SharedNormalFormCache {
        // Register the cache's metric families eagerly so snapshots taken
        // before the first lookup already list them.
        let _ = cache_metrics();
        SharedNormalFormCache {
            inner: Arc::new(Inner {
                shards: (0..SHARDS)
                    .map(|_| Shard {
                        map: Mutex::new(ShardMap::default()),
                    })
                    .collect(),
                shard_cap,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                poison_recoveries: AtomicU64::new(0),
            }),
        }
    }

    /// The configured entry capacity (`None` when unbounded). Approximate:
    /// see [`SharedNormalFormCache::with_capacity`].
    pub fn capacity(&self) -> Option<usize> {
        self.inner.shard_cap.map(|c| c * SHARDS)
    }

    fn shard(&self, key: &[u32]) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.inner.shards[(h.finish() as usize) % SHARDS]
    }

    /// The cached normal-form words for a subject, counting the hit/miss
    /// and marking the entry's second-chance bit.
    pub fn lookup(&self, key: &[u32]) -> Option<Words> {
        let mut shard = self.inner.lock_shard(self.shard(key));
        let found = shard.map.get_mut(key).map(|e| {
            e.referenced = true;
            e.nf.clone()
        });
        drop(shard);
        match &found {
            Some(_) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                cache_metrics().hits.inc();
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                cache_metrics().misses.inc();
            }
        };
        found
    }

    /// Publishes a subject → normal-form entry. First writer wins (normal
    /// forms are unique on the systems we run, so racers agree anyway);
    /// oversized entries are silently dropped (see [`MAX_ENTRY_NODES`]),
    /// and on bounded caches the insert may evict the coldest entries.
    pub fn publish(&self, key: Words, nf: Words) {
        let mut shard = self.inner.lock_shard(self.shard(&key));
        if !shard.map.contains_key(&key) {
            // The clock (a second copy of every key) only exists on bounded
            // caches; an unbounded cache never evicts, so feeding its clock
            // would just duplicate key memory forever.
            if self.inner.shard_cap.is_some() {
                shard.clock.push_back(key.clone());
            }
            shard.map.insert(
                key,
                Entry {
                    nf,
                    referenced: false,
                },
            );
            cache_metrics().entries.add(1);
            if let Some(cap) = self.inner.shard_cap {
                let evicted = shard.evict_to(cap);
                if evicted > 0 {
                    self.inner.evictions.fetch_add(evicted, Ordering::Relaxed);
                    cache_metrics().evictions.add(evicted);
                    cache_metrics().entries.sub(evicted);
                }
            }
        }
    }

    /// Whether a subject/normal-form pair of this node count is small
    /// enough to publish.
    pub fn admits(subject_nodes: usize, nf_nodes: usize) -> bool {
        subject_nodes.saturating_add(nf_nodes) <= MAX_ENTRY_NODES
    }

    /// The number of entries currently stored.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| self.inner.lock_shard(s).map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss/eviction counters and current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            entries: self.len(),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
            poison_recoveries: self.inner.poison_recoveries.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_lookup_round_trips() {
        let cache = SharedNormalFormCache::new();
        assert!(cache.is_empty());
        let key: Box<[u32]> = vec![1, 2, 3].into();
        let nf: Box<[u32]> = vec![4, 5].into();
        assert_eq!(cache.lookup(&key), None);
        cache.publish(key.clone(), nf.clone());
        assert_eq!(cache.lookup(&key), Some(nf));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn first_publish_wins() {
        let cache = SharedNormalFormCache::new();
        let key: Box<[u32]> = vec![9].into();
        cache.publish(key.clone(), vec![1].into());
        cache.publish(key.clone(), vec![2].into());
        assert_eq!(cache.lookup(&key).as_deref(), Some(&[1u32][..]));
    }

    #[test]
    fn clones_share_storage() {
        let a = SharedNormalFormCache::new();
        let b = a.clone();
        a.publish(vec![7].into(), vec![8].into());
        assert_eq!(b.lookup(&[7]).as_deref(), Some(&[8u32][..]));
        assert_eq!(b.stats().hits, 1);
    }

    #[test]
    fn size_guard_admits_small_rejects_huge() {
        assert!(SharedNormalFormCache::admits(100, 100));
        assert!(!SharedNormalFormCache::admits(MAX_ENTRY_NODES, 1));
        assert!(!SharedNormalFormCache::admits(usize::MAX, usize::MAX));
    }

    #[test]
    fn bounded_cache_evicts_to_capacity() {
        let cache = SharedNormalFormCache::with_capacity(64);
        assert_eq!(cache.capacity(), Some(64));
        for i in 0..1_000u32 {
            cache.publish(vec![i].into(), vec![i, i].into());
        }
        assert!(
            cache.len() <= 64,
            "cache grew past its capacity: {}",
            cache.len()
        );
        let s = cache.stats();
        assert!(s.evictions > 0, "expected evictions, got {s:?}");
        assert_eq!(s.entries, cache.len());
        // Every surviving entry still round-trips.
        let mut live = 0;
        for i in 0..1_000u32 {
            if let Some(nf) = cache.lookup(&[i]) {
                assert_eq!(nf.as_ref(), &[i, i]);
                live += 1;
            }
        }
        assert_eq!(live, cache.len());
    }

    #[test]
    fn second_chance_keeps_recently_used_entries() {
        // One shard-sized working set: keep hitting key A while flooding
        // with cold keys; the reference bit must keep A resident.
        let cache = SharedNormalFormCache::with_capacity(SHARDS * 4);
        let hot: Box<[u32]> = vec![42].into();
        cache.publish(hot.clone(), vec![1].into());
        for i in 100..400u32 {
            assert!(cache.lookup(&hot).is_some(), "hot entry evicted at i={i}");
            cache.publish(vec![i].into(), vec![2].into());
        }
        assert!(cache.lookup(&hot).is_some());
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn unbounded_cache_never_evicts_and_keeps_no_clock() {
        let cache = SharedNormalFormCache::new();
        assert_eq!(cache.capacity(), None);
        for i in 0..500u32 {
            cache.publish(vec![i].into(), vec![i].into());
        }
        assert_eq!(cache.len(), 500);
        assert_eq!(cache.stats().evictions, 0);
        // No duplicated key memory: the eviction clock stays empty when
        // there is no capacity to enforce.
        let queued: usize = cache
            .inner
            .shards
            .iter()
            .map(|s| s.map.lock().unwrap().clock.len())
            .sum();
        assert_eq!(queued, 0);
    }

    #[test]
    fn poisoned_shard_recovers_and_stays_correct() {
        let cache = SharedNormalFormCache::new();
        let key: Box<[u32]> = vec![11, 22].into();
        let other: Box<[u32]> = vec![33].into();
        cache.publish(key.clone(), vec![1].into());
        cache.publish(other.clone(), vec![2].into());

        // Poison the shard holding `key` by panicking while its lock is
        // held — the failure mode a worker panic mid-publish would produce.
        std::thread::scope(|s| {
            let shard = cache.shard(&key);
            let handle = s.spawn(move || {
                let _guard = shard.map.lock().expect("fresh lock");
                panic!("intentional test panic");
            });
            assert!(handle.join().is_err());
        });
        assert!(cache.shard(&key).map.is_poisoned());

        // The next lookup recovers: the shard's entries are dropped (a pure
        // memo, so this is only a warmth loss) and the poison is cleared.
        assert_eq!(cache.lookup(&key), None);
        assert!(!cache.shard(&key).map.is_poisoned());
        assert!(cache.stats().poison_recoveries >= 1);

        // Subsequent publishes and lookups behave normally again.
        cache.publish(key.clone(), vec![9].into());
        assert_eq!(cache.lookup(&key).as_deref(), Some(&[9u32][..]));
        // Entries in *other* shards were untouched (distinct shard only if
        // the hashes differ; if they collide the entry was legitimately
        // dropped, so guard the assertion).
        if !std::ptr::eq(cache.shard(&other), cache.shard(&key)) {
            assert_eq!(cache.lookup(&other).as_deref(), Some(&[2u32][..]));
        }
        assert_eq!(cache.stats().entries, cache.len());
    }

    #[test]
    fn concurrent_publishes_and_lookups_are_consistent() {
        let cache = SharedNormalFormCache::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..200u32 {
                        let key: Box<[u32]> = vec![i % 50].into();
                        cache.publish(key.clone(), vec![(i % 50) * 2].into());
                        let got = cache.lookup(&key).expect("just published");
                        assert_eq!(got.as_ref(), &[(i % 50) * 2], "thread {t}");
                    }
                });
            }
        });
        assert_eq!(cache.len(), 50);
    }
}
