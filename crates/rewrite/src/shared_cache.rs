//! A program-scoped, store-independent normal-form cache shared across
//! workers and across `prove` calls.
//!
//! Each [`crate::MemoRewriter`] owns its own [`cycleq_term::TermStore`], so
//! `TermId`s cannot cross rewriter (or thread) boundaries. What *can* cross
//! is the canonical flat word encoding of a term
//! ([`cycleq_term::TermStore::canonical_words`]): it is α-invariant in the
//! term's variables and refers to function symbols by their stable
//! [`cycleq_term::SymId`] index, so it means the same thing to every
//! rewriter working over the same [`crate::Program`].
//!
//! An entry maps the canonical words of a subject term to the canonical
//! words of its `R`-normal form, *encoded against the subject's variable
//! numbering* (rule right-hand sides introduce no fresh variables, so the
//! normal form's variables are a subset of the subject's). A consumer that
//! interned an α-equivalent subject inverts its own rename map to decode
//! the cached normal form straight into its own store.
//!
//! The cache is safe to share between threads: entries are keyed purely by
//! program-relative structure, only *complete* normal forms are ever
//! published (fuel- or deadline-cut reductions never are), and on the
//! orthogonal systems of Remark 2.1 normal forms are unique, so two workers
//! racing to publish the same key write the same value.
//!
//! **Scope caveat:** keys do not name the program. Sharing one cache
//! between rewriters for *different* programs is unsound (the same `SymId`
//! index may denote different symbols); keep one cache per loaded program,
//! as `cycleq::Session` does.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards. Workers normalising unrelated
/// goals rarely contend on the same shard; 16 keeps the memory overhead
/// trivial while making lock contention negligible for realistic `--jobs`.
const SHARDS: usize = 16;

/// Entries whose subject-plus-normal-form node count exceeds this are not
/// published: encoding/decoding is linear in term size, and gigantic normal
/// forms (deep numeral towers) would bloat the cache for reductions that
/// are cheap to replay locally relative to their transfer cost.
const MAX_ENTRY_NODES: usize = 16_384;

/// Counters describing a cache's lifetime activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// Canonical flat term encoding, as produced by
/// [`cycleq_term::TermStore::canonical_words`].
type Words = Box<[u32]>;

#[derive(Debug)]
struct Shard {
    map: Mutex<HashMap<Words, Words>>,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A thread-safe map from canonical subject words to canonical normal-form
/// words. Cheap to clone (clones share the same underlying map).
#[derive(Clone, Debug)]
pub struct SharedNormalFormCache {
    inner: Arc<Inner>,
}

impl Default for SharedNormalFormCache {
    fn default() -> SharedNormalFormCache {
        SharedNormalFormCache::new()
    }
}

impl SharedNormalFormCache {
    /// An empty cache.
    pub fn new() -> SharedNormalFormCache {
        SharedNormalFormCache {
            inner: Arc::new(Inner {
                shards: (0..SHARDS)
                    .map(|_| Shard {
                        map: Mutex::new(HashMap::new()),
                    })
                    .collect(),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    fn shard(&self, key: &[u32]) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.inner.shards[(h.finish() as usize) % SHARDS]
    }

    /// The cached normal-form words for a subject, counting the hit/miss.
    pub fn lookup(&self, key: &[u32]) -> Option<Words> {
        let found = self
            .shard(key)
            .map
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.inner.hits.fetch_add(1, Ordering::Relaxed),
            None => self.inner.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Publishes a subject → normal-form entry. First writer wins (normal
    /// forms are unique on the systems we run, so racers agree anyway);
    /// oversized entries are silently dropped (see [`MAX_ENTRY_NODES`]).
    pub fn publish(&self, key: Words, nf: Words) {
        self.shard(&key)
            .map
            .lock()
            .expect("cache shard poisoned")
            .entry(key)
            .or_insert(nf);
    }

    /// Whether a subject/normal-form pair of this node count is small
    /// enough to publish.
    pub fn admits(subject_nodes: usize, nf_nodes: usize) -> bool {
        subject_nodes.saturating_add(nf_nodes) <= MAX_ENTRY_NODES
    }

    /// The number of entries currently stored.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.map.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss counters and current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_lookup_round_trips() {
        let cache = SharedNormalFormCache::new();
        assert!(cache.is_empty());
        let key: Box<[u32]> = vec![1, 2, 3].into();
        let nf: Box<[u32]> = vec![4, 5].into();
        assert_eq!(cache.lookup(&key), None);
        cache.publish(key.clone(), nf.clone());
        assert_eq!(cache.lookup(&key), Some(nf));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn first_publish_wins() {
        let cache = SharedNormalFormCache::new();
        let key: Box<[u32]> = vec![9].into();
        cache.publish(key.clone(), vec![1].into());
        cache.publish(key.clone(), vec![2].into());
        assert_eq!(cache.lookup(&key).as_deref(), Some(&[1u32][..]));
    }

    #[test]
    fn clones_share_storage() {
        let a = SharedNormalFormCache::new();
        let b = a.clone();
        a.publish(vec![7].into(), vec![8].into());
        assert_eq!(b.lookup(&[7]).as_deref(), Some(&[8u32][..]));
        assert_eq!(b.stats().hits, 1);
    }

    #[test]
    fn size_guard_admits_small_rejects_huge() {
        assert!(SharedNormalFormCache::admits(100, 100));
        assert!(!SharedNormalFormCache::admits(MAX_ENTRY_NODES, 1));
        assert!(!SharedNormalFormCache::admits(usize::MAX, usize::MAX));
    }

    #[test]
    fn concurrent_publishes_and_lookups_are_consistent() {
        let cache = SharedNormalFormCache::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..200u32 {
                        let key: Box<[u32]> = vec![i % 50].into();
                        cache.publish(key.clone(), vec![(i % 50) * 2].into());
                        let got = cache.lookup(&key).expect("just published");
                        assert_eq!(got.as_ref(), &[(i % 50) * 2], "thread {t}");
                    }
                });
            }
        });
        assert_eq!(cache.len(), 50);
    }
}
