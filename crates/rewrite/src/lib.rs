//! Rewrite systems, reduction, narrowing and term orders for CycleQ (§2,
//! §4).
//!
//! A functional program is modelled as a [`Program`]: a
//! [`cycleq_term::Signature`] plus a [`Trs`] whose rules have the shape
//! `f M0 … Mn → N` with `f` defined and the `Mi` constructor patterns.
//! This crate provides:
//!
//! - [`Rewriter`]: leftmost-outermost reduction and normalisation `↓R`, with
//!   fuel so non-terminating inputs fail gracefully;
//! - [`case_candidates`]: the needed-narrowing-style blocked-variable
//!   analysis driving the `(Case)` rule (§6);
//! - [`check_symbol`]/[`check_program`]: the pattern-completeness check
//!   backing the "complete" assumption of Remark 2.1;
//! - [`check_orthogonality`]: left-linearity + non-overlap, the syntactic
//!   confluence criterion for the confluence assumption of Remark 2.1;
//! - [`narrow_at`]: most-general-unifier narrowing, the engine of rewriting
//!   induction's `Expand` (Definition 4.1);
//! - [`Lpo`] and friends: the reduction orders of §4.
//!
//! # Example
//!
//! ```
//! use cycleq_rewrite::{fixtures::nat_list_program, Rewriter};
//! use cycleq_term::Term;
//!
//! let p = nat_list_program();
//! let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
//! let two_plus_one = Term::apps(p.f.add, vec![p.f.num(2), p.f.num(1)]);
//! assert_eq!(rw.normalize(&two_plus_one).term, p.f.num(3));
//! ```

mod blocked;
mod completeness;
mod critical_pairs;
mod limits;
mod memo;
mod narrow;
mod orders;
mod orthogonality;
mod reduce;
mod rule;
mod shared_cache;
mod termination;
mod trs;

pub mod fixtures;

pub use blocked::{case_candidates, root_case_candidates};
pub use completeness::{check_program, check_symbol, Completeness, WitnessPat};
pub use critical_pairs::{critical_pairs, CriticalPair, CriticalPairs};
pub use limits::{CancelToken, Interrupted, RunLimits};
pub use memo::{MemoRewriter, NormalizedId};
pub use narrow::{narrow_at, NarrowingStep};
pub use orders::{
    check_rules_decreasing, DecreasingOrder, Lpo, Precedence, SubtermOrder, TermOrder,
};
pub use orthogonality::{check_orthogonality, OrthogonalityReport};
pub use reduce::{Normalized, Rewriter, DEFAULT_FUEL};
pub use rule::{Rule, RuleError, RuleId};
pub use shared_cache::{CacheStats, SharedNormalFormCache};
pub use termination::{
    direct_recursion_decreases, non_terminating_suspects, program_call_graphs,
    size_change_terminates,
};
pub use trs::{Program, Trs};
