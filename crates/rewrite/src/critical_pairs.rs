//! Critical pairs: the local divergences of an overlapping rewrite system.
//!
//! Orthogonality (Remark 2.1) forbids overlaps outright, but when a system
//! *does* overlap the interesting question is whether each overlap is
//! harmless. A critical pair captures one overlap concretely: for rules
//! `a : l_a → r_a` and `b : l_b → r_b` (renamed apart) and a non-variable
//! position `p` of `l_b` where `l_a` unifies with `l_b|_p` under mgu `θ`,
//! the *peak* `θ(l_b)` rewrites in one step two different ways —
//!
//! - the **inner** step contracts the `a`-redex at `p`: `θ(l_b[r_a]_p)`,
//! - the **outer** step contracts the whole term with `b`: `θ(r_b)`.
//!
//! The pair of reducts is joinable iff both rewrite to a common term; a
//! system all of whose critical pairs are joinable is locally confluent
//! (Knuth–Bendix). For the constructor-based systems of §2 only *root*
//! overlaps between clauses of the same function can occur (proper subterms
//! of a clause LHS are constructor patterns, which never unify with a
//! defined-function LHS), but the enumeration below is written for the
//! general case so the analyzer's verdicts do not bake in that assumption.
//!
//! Variable handling is chosen for downstream diagnostics: the *outer* rule
//! keeps its original variables (so rendered peaks use source names), while
//! the inner rule is renamed apart with primes (`x` → `x'`) only where its
//! names would collide.

use std::collections::BTreeSet;

use cycleq_term::{unify, Position, Subst, Term, VarStore};

use crate::rule::RuleId;
use crate::trs::Trs;

/// One critical pair: a peak together with its two one-step reducts.
#[derive(Clone, Debug)]
pub struct CriticalPair {
    /// The rule contracted at `pos` (the inner step), renamed apart.
    pub inner: RuleId,
    /// The rule contracted at the root (the outer step), kept with its
    /// original variables.
    pub outer: RuleId,
    /// The overlap position inside `outer`'s left-hand side.
    pub pos: Position,
    /// The overlapped instance `θ(l_outer)` both rules rewrite.
    pub peak: Term,
    /// The reduct of the inner step, `θ(l_outer[r_inner]_pos)`.
    pub left: Term,
    /// The reduct of the outer step, `θ(r_outer)`.
    pub right: Term,
}

impl CriticalPair {
    /// Whether the overlap is at the root of `outer`'s left-hand side.
    pub fn at_root(&self) -> bool {
        self.pos.is_root()
    }
}

/// All critical pairs of a system, with the variable store their terms
/// live in (the rule store extended with the renamed-apart copies).
#[derive(Debug)]
pub struct CriticalPairs {
    /// Store resolving every variable in the pairs' terms. Outer-rule
    /// variables keep their original ids and names.
    pub vars: VarStore,
    /// The pairs, in (outer, inner) rule order.
    pub pairs: Vec<CriticalPair>,
}

/// Enumerates every critical pair of the system.
///
/// Root overlaps between distinct rules are produced once per unordered
/// pair (with the earlier rule as the outer one); proper-subterm overlaps
/// are produced for every ordered pair, including a rule overlapped into
/// itself. Trivial root self-overlaps (`a` with `a`) are skipped, as is
/// conventional.
pub fn critical_pairs(trs: &Trs) -> CriticalPairs {
    let mut vars = trs.vars().clone();
    let mut pairs = Vec::new();
    let ids: Vec<RuleId> = trs.rules().map(|(id, _)| id).collect();
    for &outer in &ids {
        let outer_rule = trs.rule(outer);
        let lhs_outer = outer_rule.lhs_term();
        let taken: BTreeSet<&str> = outer_rule
            .lhs_vars()
            .iter()
            .map(|v| trs.vars().name(*v))
            .collect();
        for &inner in &ids {
            let (inner_params, inner_rhs) = rename_apart(trs, inner, &taken, &mut vars);
            let lhs_inner = Term::apps(trs.rule(inner).head(), inner_params);
            for (pos, sub) in lhs_outer.positions() {
                // Overlap only at non-variable positions; the root
                // self-overlap is the trivial pair.
                if sub.head_var().is_some() || (inner == outer && pos.is_root()) {
                    continue;
                }
                // Count each root overlap once per unordered pair.
                if pos.is_root() && inner < outer {
                    continue;
                }
                let Ok(theta) = unify(&lhs_inner, sub) else {
                    continue;
                };
                pairs.push(make_pair(
                    inner,
                    outer,
                    pos,
                    &lhs_outer,
                    &inner_rhs,
                    outer_rule.rhs(),
                    &theta,
                ));
            }
        }
    }
    CriticalPairs { vars, pairs }
}

fn make_pair(
    inner: RuleId,
    outer: RuleId,
    pos: Position,
    lhs_outer: &Term,
    inner_rhs: &Term,
    outer_rhs: &Term,
    theta: &Subst,
) -> CriticalPair {
    let peak = theta.apply(lhs_outer);
    let contracted = lhs_outer
        .replace_at(&pos, inner_rhs.clone())
        .expect("overlap position comes from lhs_outer.positions()");
    CriticalPair {
        inner,
        outer,
        pos,
        peak,
        left: theta.apply(&contracted),
        right: theta.apply(outer_rhs),
    }
}

/// Renames `rule`'s variables apart from `taken`, priming colliding names
/// (`x` → `x'` → `x''`) so rendered pairs stay readable.
fn rename_apart(
    trs: &Trs,
    rule: RuleId,
    taken: &BTreeSet<&str>,
    vars: &mut VarStore,
) -> (Vec<Term>, Term) {
    let r = trs.rule(rule);
    let mut rule_vars = BTreeSet::new();
    for p in r.params() {
        p.collect_vars(&mut rule_vars);
    }
    r.rhs().collect_vars(&mut rule_vars);
    let mut renaming = Subst::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    for v in rule_vars {
        let mut name = trs.vars().name(v).to_string();
        while taken.contains(name.as_str()) || used.contains(&name) {
            name.push('\'');
        }
        used.insert(name.clone());
        let ty = trs.vars().ty(v).clone();
        let fresh = vars.fresh(&name, ty);
        renaming.insert(v, Term::var(fresh));
    }
    let params = r.params().iter().map(|p| renaming.apply(p)).collect();
    (params, renaming.apply(r.rhs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_term::fixtures::NatList;
    use cycleq_term::{SymId, Term, Type, TypeScheme};

    use crate::trs::Trs;

    fn defined(f: &mut NatList, name: &str, arity: usize) -> SymId {
        let nat = Type::data0(f.nat);
        let body = Type::arrows(vec![nat.clone(); arity], nat);
        f.sig
            .add_defined(name, TypeScheme::mono(body))
            .expect("fresh symbol")
    }

    /// The paper's fig. 2 `sub`: `sub Z y = Z` / `sub x Z = x` /
    /// `sub (S x) (S y) = sub x y`. One weak root overlap.
    fn fig2_sub() -> (NatList, SymId, Trs) {
        let mut f = NatList::new();
        let sub = defined(&mut f, "sub", 2);
        let mut trs = Trs::new();
        let y = trs.vars_mut().fresh("y", f.nat_ty());
        trs.add_rule(
            &f.sig,
            sub,
            vec![Term::sym(f.zero), Term::var(y)],
            Term::sym(f.zero),
        )
        .unwrap();
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        trs.add_rule(
            &f.sig,
            sub,
            vec![Term::var(x), Term::sym(f.zero)],
            Term::var(x),
        )
        .unwrap();
        let x2 = trs.vars_mut().fresh("x", f.nat_ty());
        let y2 = trs.vars_mut().fresh("y", f.nat_ty());
        trs.add_rule(
            &f.sig,
            sub,
            vec![f.s(Term::var(x2)), f.s(Term::var(y2))],
            Term::apps(sub, vec![Term::var(x2), Term::var(y2)]),
        )
        .unwrap();
        (f, sub, trs)
    }

    #[test]
    fn fig2_sub_has_one_root_pair_with_joinable_reducts() {
        let (f, _sub, trs) = fig2_sub();
        let cps = critical_pairs(&trs);
        assert_eq!(cps.pairs.len(), 1, "exactly one overlap in fig. 2 sub");
        let cp = &cps.pairs[0];
        assert!(cp.at_root());
        assert_ne!(cp.inner, cp.outer);
        // Peak is `sub Z Z`; both reducts are already `Z`.
        assert_eq!(cp.peak.display(&f.sig, &cps.vars).to_string(), "sub Z Z");
        assert_eq!(cp.left, Term::sym(f.zero));
        assert_eq!(cp.right, Term::sym(f.zero));
    }

    #[test]
    fn outer_rule_keeps_original_variable_names() {
        let mut f = NatList::new();
        let g = defined(&mut f, "g", 2);
        let mut trs = Trs::new();
        // g m Z = m  /  g Z n = n: root overlap whose peak is `g Z Z`.
        let m = trs.vars_mut().fresh("m", f.nat_ty());
        trs.add_rule(
            &f.sig,
            g,
            vec![Term::var(m), Term::sym(f.zero)],
            Term::var(m),
        )
        .unwrap();
        let n = trs.vars_mut().fresh("n", f.nat_ty());
        trs.add_rule(
            &f.sig,
            g,
            vec![Term::sym(f.zero), Term::var(n)],
            Term::var(n),
        )
        .unwrap();
        let cps = critical_pairs(&trs);
        assert_eq!(cps.pairs.len(), 1);
        let cp = &cps.pairs[0];
        assert_eq!(cp.peak.display(&f.sig, &cps.vars).to_string(), "g Z Z");
        assert_eq!(cp.left, Term::sym(f.zero));
        assert_eq!(cp.right, Term::sym(f.zero));
    }

    #[test]
    fn same_name_across_rules_is_primed_apart() {
        let mut f = NatList::new();
        let h = defined(&mut f, "h", 1);
        let mut trs = Trs::new();
        // h x = x  and  h (S x) = x: overlap at root; the inner copy of
        // `x` must be renamed `x'` so the peak renders unambiguously.
        let x1 = trs.vars_mut().fresh("x", f.nat_ty());
        trs.add_rule(&f.sig, h, vec![Term::var(x1)], Term::var(x1))
            .unwrap();
        let x2 = trs.vars_mut().fresh("x", f.nat_ty());
        trs.add_rule(&f.sig, h, vec![f.s(Term::var(x2))], Term::var(x2))
            .unwrap();
        let cps = critical_pairs(&trs);
        assert_eq!(cps.pairs.len(), 1);
        let cp = &cps.pairs[0];
        let peak = cp.peak.display(&f.sig, &cps.vars).to_string();
        // Outer rule is the first (`h x = x`): its var keeps the name `x`,
        // the inner rule's `x` is primed.
        assert_eq!(peak, "h (S x')");
    }

    #[test]
    fn orthogonal_system_has_no_pairs() {
        let f = NatList::new();
        let mut trs = Trs::new();
        // add Z y = y  /  add (S x) y = S (add x y): orthogonal.
        let y = trs.vars_mut().fresh("y", f.nat_ty());
        trs.add_rule(
            &f.sig,
            f.add,
            vec![Term::sym(f.zero), Term::var(y)],
            Term::var(y),
        )
        .unwrap();
        let x2 = trs.vars_mut().fresh("x", f.nat_ty());
        let y2 = trs.vars_mut().fresh("y", f.nat_ty());
        trs.add_rule(
            &f.sig,
            f.add,
            vec![f.s(Term::var(x2)), Term::var(y2)],
            f.s(Term::apps(f.add, vec![Term::var(x2), Term::var(y2)])),
        )
        .unwrap();
        let cps = critical_pairs(&trs);
        assert!(cps.pairs.is_empty());
    }
}
