//! Memoised reduction over hash-consed terms.
//!
//! [`MemoRewriter`] owns a [`TermStore`] and a persistent map from
//! [`TermId`] to its `R`-normal form. Because a program's rewrite system is
//! fixed for the lifetime of a prover run, normal forms never change and the
//! memo table is valid for as long as the rewriter lives; a fresh rewriter
//! (and hence a fresh table) is created per [`crate::Program`].
//!
//! The reduction strategy is outermost with memoised argument
//! normalisation: contract root redexes until the root is stuck, normalise
//! the arguments (each memoised), and retry the root in case a previously
//! blocked rule was unblocked by an argument's constructor appearing. On
//! the complete, weakly-normalising, confluent systems of Remark 2.1 this
//! computes the same normal form as the plain leftmost-outermost
//! [`Rewriter`] — see the equivalence property tests — while sharing all
//! repeated work through the store.
//!
//! The search is not the only client: the independent proof checker
//! (`cycleq_proof::check_interned`) builds its *own* `MemoRewriter` from the
//! program, so its store never shares `TermId`s — or bugs — with the one the
//! search used, and a single rewriter can be reused across the proofs of a
//! batch (`check_interned_with`) to keep the reduct memo warm. Checkers must
//! not attach a [`SharedNormalFormCache`] that the search populated: the
//! whole point of the separate code path is that nothing computed during
//! search is trusted during certification.
//!
//! Normalisation is triply bounded: by step fuel (like [`Rewriter`]), by an
//! optional wall-clock deadline, and by an optional [`CancelToken`] — the
//! latter two carried in a [`RunLimits`]. The deadline is polled every few
//! contractions (an `Instant::now` call is not free); the token is polled
//! every contraction (one relaxed atomic load), so a prover's committed
//! reduction phase can never blow past its time budget on an explosive (or
//! non-terminating) input program, and an external caller can abort it
//! mid-chain.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use cycleq_term::{Head, IdSubst, Signature, SymId, Term, TermId, TermStore, VarId};

use crate::blocked::Sim;
use crate::limits::{Interrupted, RunLimits};
use crate::reduce::{Normalized, DEFAULT_FUEL};
use crate::rule::Rule;
use crate::shared_cache::SharedNormalFormCache;
use crate::trs::Trs;

/// The outcome of an interned normalisation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct NormalizedId {
    /// The normal form (or the original id when fuel ran out).
    pub id: TermId,
    /// Contractions performed by this call (memo hits contribute zero).
    pub steps: usize,
    /// Whether a normal form was reached (`false` means fuel ran out).
    pub in_normal_form: bool,
}

/// Why an in-flight normalisation stopped early.
enum Stop {
    Fuel,
    Interrupted(Interrupted),
}

/// Per-call budget: step fuel plus the external [`RunLimits`]. The
/// cancellation token is polled every contraction (one relaxed atomic
/// load); the deadline every few contractions, so the `Instant::now` cost
/// stays negligible.
struct RunBudget {
    fuel_left: usize,
    steps: usize,
    limits: RunLimits,
    tick: u32,
}

/// How many contractions may pass between deadline polls.
const DEADLINE_POLL_MASK: u32 = 63;

/// Upper bound on the node count of a subject consulted against (and
/// published to) the shared cache. Every defined-headed subterm on the
/// cold path pays an O(size) canonical encoding before reducing, so a
/// nested defined spine costs O(depth × size) encoding on first contact;
/// bounding the participating subject size bounds that product to
/// something negligible while still covering every goal-sized term a
/// realistic suite normalises. (Deep numeral-tower intermediates exceed
/// the bound and simply skip the shared cache — their reductions are
/// cheap to replay locally relative to the transfer cost anyway.)
const MAX_SHARED_SUBJECT_NODES: usize = 512;

/// Upper bound on intermediate reducts remembered per `norm` frame for
/// back-filling the memo table. A non-terminating root loop (`loop x →
/// loop x`) spins until fuel or deadline stops it; without a cap its chain
/// of intermediates would grow with every contraction.
const CHAIN_MEMO_CAP: usize = 4_096;

impl RunBudget {
    fn new(fuel: usize, limits: RunLimits) -> RunBudget {
        RunBudget {
            fuel_left: fuel,
            steps: 0,
            limits,
            tick: 0,
        }
    }

    /// Accounts for one contraction.
    fn spend(&mut self) -> Result<(), Stop> {
        if self.fuel_left == 0 {
            return Err(Stop::Fuel);
        }
        self.fuel_left -= 1;
        self.steps += 1;
        self.tick = self.tick.wrapping_add(1);
        if self.limits.is_cancelled() {
            return Err(Stop::Interrupted(Interrupted::Cancelled));
        }
        if self.tick & DEADLINE_POLL_MASK == 0 {
            if let Some(d) = self.limits.deadline {
                if Instant::now() >= d {
                    return Err(Stop::Interrupted(Interrupted::Deadline));
                }
            }
        }
        Ok(())
    }
}

/// A memoising reduction engine for a program's rewrite system.
///
/// Unlike [`Rewriter`] this type is stateful: it owns the term store and
/// the normal-form table, so callers keep one alive per program and thread
/// it through their hot loops.
#[derive(Clone, Debug)]
pub struct MemoRewriter<'a> {
    sig: &'a Signature,
    trs: &'a Trs,
    fuel: usize,
    store: TermStore,
    /// `t ↦ t↓R`, complete normal forms only (never partial reductions).
    memo: HashMap<TermId, TermId>,
    memo_hits: u64,
    /// Optional program-scoped cache shared with other rewriters (other
    /// workers, other `prove` calls). Consulted on local memo misses for
    /// defined-headed subjects; populated with every complete normal form
    /// computed here.
    shared: Option<SharedNormalFormCache>,
    shared_hits: u64,
    shared_misses: u64,
}

impl<'a> MemoRewriter<'a> {
    /// Creates a memoising rewriter with the default fuel.
    pub fn new(sig: &'a Signature, trs: &'a Trs) -> MemoRewriter<'a> {
        MemoRewriter {
            sig,
            trs,
            fuel: DEFAULT_FUEL,
            store: TermStore::new(),
            memo: HashMap::new(),
            memo_hits: 0,
            shared: None,
            shared_hits: 0,
            shared_misses: 0,
        }
    }

    /// Overrides the per-normalisation fuel bound.
    pub fn with_fuel(mut self, fuel: usize) -> MemoRewriter<'a> {
        self.fuel = fuel;
        self
    }

    /// Attaches a program-scoped [`SharedNormalFormCache`]: normal forms
    /// computed here become visible to every other rewriter holding a clone
    /// of the cache, and vice versa. The cache MUST belong to the same
    /// program as `trs` (see the `shared_cache` module docs).
    pub fn with_shared_cache(mut self, cache: SharedNormalFormCache) -> MemoRewriter<'a> {
        self.shared = Some(cache);
        self
    }

    /// The underlying term store.
    pub fn store(&self) -> &TermStore {
        &self.store
    }

    /// Mutable access to the underlying term store (for interning goal
    /// terms into the same id space).
    pub fn store_mut(&mut self) -> &mut TermStore {
        &mut self.store
    }

    /// Interns an owned term.
    pub fn intern(&mut self, t: &Term) -> TermId {
        self.store.intern(t)
    }

    /// Resolves an id back to an owned term.
    pub fn resolve(&self, id: TermId) -> Term {
        self.store.resolve(id)
    }

    /// Number of normal forms currently memoised.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Number of memo-table hits since construction.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Number of shared-cache hits scored by *this* rewriter.
    pub fn shared_cache_hits(&self) -> u64 {
        self.shared_hits
    }

    /// Number of shared-cache misses charged to *this* rewriter.
    pub fn shared_cache_misses(&self) -> u64 {
        self.shared_misses
    }

    /// Attempts a root contraction, trying the head's rules in order.
    pub fn step_root_id(&mut self, id: TermId) -> Option<TermId> {
        let head = self.store.head_sym(id)?;
        if !self.sig.is_defined(head) {
            return None;
        }
        let nargs = self.store.args(id).len();
        for rid in self.trs.rules_for(head) {
            let rule: &'a Rule = self.trs.rule(*rid);
            if rule.params().len() != nargs {
                continue;
            }
            let mut bind: Vec<(VarId, TermId)> = Vec::new();
            let mut ok = true;
            for (k, p) in rule.params().iter().enumerate() {
                let s = self.store.args(id)[k];
                if !self.match_pattern(p, s, &mut bind) {
                    ok = false;
                    break;
                }
            }
            if ok {
                return Some(self.instantiate(rule.rhs(), &bind));
            }
        }
        None
    }

    /// Matches an owned rule pattern against an interned subject, binding
    /// rule variables to subject ids. Mirrors [`cycleq_term::match_term`]
    /// (including the applied-variable prefix extension and non-linear
    /// agreement, which is id equality here).
    fn match_pattern(&mut self, pat: &Term, subj: TermId, bind: &mut Vec<(VarId, TermId)>) -> bool {
        match pat.head() {
            Head::Var(v) => {
                let k = pat.args().len();
                let m = self.store.args(subj).len();
                if m < k {
                    return false;
                }
                let split = m - k;
                let prefix = if split == m {
                    subj
                } else {
                    let shead = self.store.head(subj);
                    let pre: Vec<TermId> = self.store.args(subj)[..split].to_vec();
                    self.store.node(shead, pre)
                };
                match bind.iter().find(|(w, _)| *w == v) {
                    Some((_, bound)) if *bound != prefix => return false,
                    Some(_) => {}
                    None => bind.push((v, prefix)),
                }
                for (i, p) in pat.args().iter().enumerate() {
                    let s = self.store.args(subj)[split + i];
                    if !self.match_pattern(p, s, bind) {
                        return false;
                    }
                }
                true
            }
            Head::Sym(f) => {
                if self.store.head(subj) != Head::Sym(f)
                    || self.store.args(subj).len() != pat.args().len()
                {
                    return false;
                }
                for (i, p) in pat.args().iter().enumerate() {
                    let s = self.store.args(subj)[i];
                    if !self.match_pattern(p, s, bind) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Instantiates an owned rule right-hand side under the binding,
    /// interning the result. Every rhs variable is bound (rule validation
    /// guarantees it).
    fn instantiate(&mut self, t: &Term, bind: &[(VarId, TermId)]) -> TermId {
        let args: Vec<TermId> = t.args().iter().map(|a| self.instantiate(a, bind)).collect();
        match t.head() {
            Head::Var(v) => {
                let bound = bind
                    .iter()
                    .find(|(w, _)| *w == v)
                    .map(|(_, b)| *b)
                    .expect("rule rhs variable is bound on the left");
                self.store.apply_args(bound, &args)
            }
            Head::Sym(s) => self.store.node(Head::Sym(s), args),
        }
    }

    /// Reduces to normal form with the configured fuel and no external
    /// limits.
    pub fn normalize_id(&mut self, id: TermId) -> NormalizedId {
        self.try_normalize_id(id, &RunLimits::none())
            .expect("no limits were set")
    }

    /// Reduces to normal form, bounded by fuel *and* the external
    /// [`RunLimits`] (wall-clock deadline, cancellation token).
    ///
    /// # Errors
    ///
    /// Returns [`Interrupted`] the moment the deadline passes or the token
    /// is cancelled; fuel exhaustion is reported in-band via
    /// [`NormalizedId::in_normal_form`] being `false` (the id is returned
    /// unreduced — callers treat such branches as failed).
    pub fn try_normalize_id(
        &mut self,
        id: TermId,
        limits: &RunLimits,
    ) -> Result<NormalizedId, Interrupted> {
        let _span = cycleq_trace::span!("normalize");
        let mut budget = RunBudget::new(self.fuel, limits.clone());
        match self.norm(id, &mut budget) {
            Ok(nf) => Ok(NormalizedId {
                id: nf,
                steps: budget.steps,
                in_normal_form: true,
            }),
            Err(Stop::Fuel) => Ok(NormalizedId {
                id,
                steps: budget.steps,
                in_normal_form: false,
            }),
            Err(Stop::Interrupted(why)) => Err(why),
        }
    }

    /// Owned-term convenience wrapper: intern, normalise, resolve.
    ///
    /// On fuel exhaustion the returned term is the *input* term (partially
    /// contracted intermediates are not exposed), unlike
    /// [`Rewriter::normalize`]; all callers ignore the term in that case.
    pub fn normalize(&mut self, t: &Term) -> Normalized {
        let id = self.intern(t);
        let n = self.normalize_id(id);
        Normalized {
            term: self.resolve(n.id),
            steps: n.steps,
            in_normal_form: n.in_normal_form,
        }
    }

    fn norm(&mut self, id: TermId, budget: &mut RunBudget) -> Result<TermId, Stop> {
        if let Some(&nf) = self.memo.get(&id) {
            self.memo_hits += 1;
            return Ok(nf);
        }
        // Defined-headed subjects are worth consulting the shared cache
        // for; constructor/variable-headed ones only decompose into their
        // arguments, and encoding every node of a constructor spine would
        // make first contact with a deep term quadratic. Subjects above
        // `MAX_SHARED_SUBJECT_NODES` are skipped outright, which bounds
        // the analogous quadratic for nested *defined* spines too.
        //
        // A hit is returned without charging the budget: a cached entry is
        // a *true* normal form (only complete reductions are published),
        // and fuel exists to guard against divergence, not as a semantic
        // bound. At the fuel boundary this means a warm cache can succeed
        // where a cold run would give up — it can only ever prove more.
        let mut pending = None;
        if self.shared.is_some()
            && self.defined_head(id).is_some()
            && self.store.size(id) <= MAX_SHARED_SUBJECT_NODES
        {
            let cache = self.shared.clone().expect("just checked");
            let mut rename = BTreeMap::new();
            let key = self.store.canonical_words(id, &mut rename);
            if let Some(nf) = cache
                .lookup(&key)
                .and_then(|value| self.decode_shared_hit(id, &value, &rename))
            {
                return Ok(nf);
            }
            self.shared_misses += 1;
            // Keep the key and rename map: on completion the publish path
            // reuses them instead of re-encoding the subject.
            pending = Some((cache, key, rename));
        }
        let nf = self.norm_uncached(id, budget)?;
        if let Some((cache, key, rename)) = pending {
            self.shared_publish(cache, key, rename, id, nf);
        }
        Ok(nf)
    }

    /// Decodes a shared-cache value into this store against the subject's
    /// rename map, memoising it locally. `None` means the entry is
    /// undecodable here (a malformed or out-of-range encoding — treated as
    /// a miss). Note this is *not* a general defence against sharing one
    /// cache between different programs: an entry whose symbol indices
    /// happen to be valid in both signatures decodes to whatever those
    /// indices mean locally. Keeping the cache program-scoped is the
    /// caller's contract (see the `shared_cache` module docs; `Session`
    /// upholds it by construction).
    fn decode_shared_hit(
        &mut self,
        id: TermId,
        value: &[u32],
        rename: &BTreeMap<VarId, u32>,
    ) -> Option<TermId> {
        // Invert the subject's first-occurrence numbering; canonical codes
        // are contiguous from 0, so sorting by code yields the table.
        let mut pairs: Vec<(u32, VarId)> = rename.iter().map(|(v, c)| (*c, *v)).collect();
        pairs.sort_unstable();
        let inverse: Vec<VarId> = pairs.into_iter().map(|(_, v)| v).collect();
        let nf = self.store.decode_canonical(value, &inverse)?;
        self.shared_hits += 1;
        self.memo.insert(id, nf);
        self.memo.insert(nf, nf);
        Some(nf)
    }

    /// Publishes a freshly computed complete normal form to the shared
    /// cache, reusing the subject key and rename map built by the lookup.
    /// Partial (fuel-cut) reductions never reach this point.
    fn shared_publish(
        &mut self,
        cache: SharedNormalFormCache,
        key: Vec<u32>,
        mut rename: BTreeMap<VarId, u32>,
        id: TermId,
        nf: TermId,
    ) {
        if !SharedNormalFormCache::admits(self.store.size(id), self.store.size(nf)) {
            return;
        }
        let vars_in_subject = rename.len();
        let value = self.store.canonical_words(nf, &mut rename);
        // Rule right-hand sides introduce no fresh variables, so the normal
        // form's variables are always a subset of the subject's; if that
        // invariant ever broke the entry would be undecodable — drop it.
        if rename.len() != vars_in_subject {
            return;
        }
        cache.publish(key.into_boxed_slice(), value.into_boxed_slice());
    }

    fn norm_uncached(&mut self, id: TermId, budget: &mut RunBudget) -> Result<TermId, Stop> {
        // Ids known to reduce to whatever normal form we end up at.
        let mut chain = vec![id];
        let mut cur = id;
        loop {
            // Contract at the root until stuck.
            while let Some(next) = self.step_root_id(cur) {
                budget.spend()?;
                cur = next;
                if let Some(&nf) = self.memo.get(&cur) {
                    self.memo_hits += 1;
                    return Ok(self.finish(chain, nf));
                }
                if chain.len() < CHAIN_MEMO_CAP {
                    chain.push(cur);
                }
            }
            // Root is stuck: normalise the arguments (each memoised),
            // retrying the root whenever an argument changed — a rule
            // blocked on an inner redex may now match.
            let head = self.store.head(cur);
            let args: Vec<TermId> = self.store.args(cur).to_vec();
            let mut new_args = Vec::with_capacity(args.len());
            let mut changed = false;
            for a in &args {
                let na = self.norm(*a, budget)?;
                changed |= na != *a;
                new_args.push(na);
            }
            if !changed {
                return Ok(self.finish(chain, cur));
            }
            cur = self.store.node(head, new_args);
            if let Some(&nf) = self.memo.get(&cur) {
                self.memo_hits += 1;
                return Ok(self.finish(chain, nf));
            }
            if chain.len() < CHAIN_MEMO_CAP {
                chain.push(cur);
            }
            // Back to the top: if normalising the arguments unblocked the
            // root, the contraction loop takes the step (computing it once);
            // if the root is still stuck, the next argument pass is all memo
            // hits, `changed` stays false, and we finish.
        }
    }

    /// Records that every id on the reduction chain normalises to `nf`.
    fn finish(&mut self, chain: Vec<TermId>, nf: TermId) -> TermId {
        for c in chain {
            self.memo.insert(c, nf);
        }
        self.memo.insert(nf, nf);
        nf
    }

    /// Variables blocking reduction of the term, ordered by preference
    /// (blockers of leftmost-outermost stuck redexes first, then rule
    /// order) — the interned counterpart of [`crate::case_candidates`].
    pub fn case_candidates_id(&mut self, t: TermId) -> Vec<VarId> {
        let mut out: Vec<VarId> = Vec::new();
        let mut stack = vec![t];
        while let Some(id) = stack.pop() {
            let args: Vec<TermId> = self.store.args(id).to_vec();
            for &a in args.iter().rev() {
                stack.push(a);
            }
            let Some(head) = self.store.head_sym(id) else {
                continue;
            };
            if !self.sig.is_defined(head) || self.trs.arity_of(head) != Some(args.len()) {
                continue;
            }
            if self.step_root_id(id).is_some() {
                continue; // reducible, not stuck
            }
            for v in self.root_case_candidates_id(id) {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Variables blocking rule matching at the *root* of the term, in rule
    /// order — the interned counterpart of [`crate::root_case_candidates`].
    pub fn root_case_candidates_id(&mut self, t: TermId) -> Vec<VarId> {
        let mut out: Vec<VarId> = Vec::new();
        let Some(head) = self.store.head_sym(t) else {
            return out;
        };
        if !self.sig.is_defined(head) {
            return out;
        }
        let nargs = self.store.args(t).len();
        for rid in self.trs.rules_for(head) {
            let rule: &'a Rule = self.trs.rule(*rid);
            if rule.params().len() != nargs {
                continue;
            }
            let mut bind: Vec<(VarId, TermId)> = Vec::new();
            let applies = (0..nargs).all(|k| {
                let s = self.store.args(t)[k];
                self.match_pattern(&rule.params()[k], s, &mut bind)
            });
            if applies {
                // Reducible at the root: not stuck, nothing blocks.
                return Vec::new();
            }
            let mut blockers = Vec::new();
            let mut verdict = Sim::Match;
            for (k, p) in rule.params().iter().enumerate() {
                let s = self.store.args(t)[k];
                match self.simulate_rule(p, s, &mut blockers) {
                    Sim::Clash => {
                        verdict = Sim::Clash;
                        break;
                    }
                    Sim::Blocked => verdict = Sim::Blocked,
                    Sim::Match => {}
                }
            }
            if verdict == Sim::Blocked {
                for v in blockers {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    /// Simulates one pattern column; mirrors the owned analysis in
    /// `blocked.rs` over an interned subject.
    fn simulate_rule(&self, pat: &Term, arg: TermId, blockers: &mut Vec<VarId>) -> Sim {
        match pat.head() {
            Head::Var(_) => Sim::Match,
            Head::Sym(_) => {
                // Clashes against defined-head arguments are downgraded to
                // Blocked: the inner redex is analysed at its own position.
                if self
                    .store
                    .head_sym(arg)
                    .is_some_and(|h| self.sig.is_defined(h))
                {
                    return Sim::Blocked;
                }
                match (pat.head(), self.store.head(arg)) {
                    (Head::Sym(k), Head::Sym(k2))
                        if k == k2 && pat.args().len() == self.store.args(arg).len() =>
                    {
                        let mut out = Sim::Match;
                        for (i, p) in pat.args().iter().enumerate() {
                            let a = self.store.args(arg)[i];
                            match self.simulate_rule(p, a, blockers) {
                                Sim::Clash => return Sim::Clash,
                                Sim::Blocked => out = Sim::Blocked,
                                Sim::Match => {}
                            }
                        }
                        out
                    }
                    (Head::Sym(_), Head::Sym(_)) => Sim::Clash,
                    (Head::Sym(_), Head::Var(v)) => {
                        if self.store.args(arg).is_empty() && !blockers.contains(&v) {
                            blockers.push(v);
                        }
                        Sim::Blocked
                    }
                    _ => unreachable!("pattern head is a symbol"),
                }
            }
        }
    }

    /// Applies a goal substitution to an interned term (delegates to the
    /// store; exposed here so prover loops need only one handle).
    pub fn subst(&mut self, id: TermId, theta: &IdSubst) -> TermId {
        self.store.subst(id, theta)
    }

    /// The head symbol of the signature's view of an id, when defined.
    pub fn defined_head(&self, id: TermId) -> Option<SymId> {
        self.store.head_sym(id).filter(|s| self.sig.is_defined(*s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::nat_list_program;
    use crate::limits::CancelToken;
    use crate::{case_candidates, Rewriter};
    use cycleq_term::{Term, VarStore};
    use std::time::Duration;

    #[test]
    fn memoized_normalize_agrees_with_plain() {
        let p = nat_list_program();
        let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs);
        let t = Term::apps(p.f.add, vec![p.f.num(2), p.f.num(3)]);
        let plain = rw.normalize(&t);
        let fast = memo.normalize(&t);
        assert!(fast.in_normal_form);
        assert_eq!(fast.term, plain.term);
        assert_eq!(fast.term, p.f.num(5));
    }

    #[test]
    fn second_normalization_is_a_memo_hit() {
        let p = nat_list_program();
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs);
        let t = Term::apps(p.f.add, vec![p.f.num(4), p.f.num(4)]);
        let first = memo.normalize(&t);
        assert!(first.steps > 0);
        let hits_before = memo.memo_hits();
        let second = memo.normalize(&t);
        assert_eq!(second.steps, 0, "memo hit performs no contractions");
        assert_eq!(second.term, first.term);
        assert!(memo.memo_hits() > hits_before);
    }

    #[test]
    fn shared_subterms_are_normalized_once() {
        let p = nat_list_program();
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs);
        let redex = Term::apps(p.f.add, vec![p.f.num(3), p.f.num(3)]);
        let outer = Term::apps(p.f.add, vec![redex.clone(), redex.clone()]);
        let lone = memo.clone().normalize(&redex).steps;
        let both = memo.normalize(&outer);
        assert!(both.in_normal_form);
        assert_eq!(both.term, p.f.num(12));
        // The second occurrence of the shared redex costs nothing: the
        // total is one inner normalisation plus the outer addition.
        assert!(
            both.steps < 2 * lone + 8,
            "steps {} suggests the shared redex was reduced twice",
            both.steps
        );
    }

    #[test]
    fn open_terms_get_stuck_like_plain_rewriter() {
        let p = nat_list_program();
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs);
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let t = Term::apps(p.f.add, vec![Term::var(x), p.f.num(1)]);
        let n = memo.normalize(&t);
        assert!(n.in_normal_form);
        assert_eq!(n.term, t, "stuck on the case variable x");
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let p = nat_list_program();
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs).with_fuel(2);
        let t = Term::apps(p.f.add, vec![p.f.num(5), p.f.num(5)]);
        let n = memo.normalize(&t);
        assert!(!n.in_normal_form);
        // A partial reduction must never be memoised as a normal form.
        assert_eq!(memo.memo_len(), 0);
    }

    #[test]
    fn deadline_cuts_normalization_short() {
        let p = nat_list_program();
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs).with_fuel(usize::MAX);
        // Enough pending contractions that the periodic deadline poll fires
        // long before the reduction finishes.
        let t = Term::apps(p.f.add, vec![p.f.num(2_000), p.f.num(1)]);
        let id = memo.intern(&t);
        let already_passed = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            memo.try_normalize_id(id, &RunLimits::with_deadline(Some(already_passed))),
            Err(Interrupted::Deadline)
        );
    }

    #[test]
    fn cancellation_cuts_normalization_short() {
        let p = nat_list_program();
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs).with_fuel(usize::MAX);
        let t = Term::apps(p.f.add, vec![p.f.num(2_000), p.f.num(1)]);
        let id = memo.intern(&t);
        let token = CancelToken::new();
        token.cancel();
        let limits = RunLimits::none().with_cancel(token);
        assert_eq!(
            memo.try_normalize_id(id, &limits),
            Err(Interrupted::Cancelled)
        );
        // Nothing partial was memoised by the aborted run.
        assert_eq!(memo.memo_len(), 0);
    }

    #[test]
    fn shared_cache_crosses_rewriter_boundaries() {
        let p = nat_list_program();
        let cache = SharedNormalFormCache::new();
        let t = Term::apps(p.f.add, vec![p.f.num(3), p.f.num(4)]);

        let mut producer =
            MemoRewriter::new(&p.prog.sig, &p.prog.trs).with_shared_cache(cache.clone());
        let first = producer.normalize(&t);
        assert!(first.steps > 0);
        assert_eq!(first.term, p.f.num(7));
        assert!(!cache.is_empty(), "normal forms were published");

        // A brand-new rewriter (fresh store, fresh memo) gets the normal
        // form from the shared cache without re-contracting anything.
        let mut consumer =
            MemoRewriter::new(&p.prog.sig, &p.prog.trs).with_shared_cache(cache.clone());
        let second = consumer.normalize(&t);
        assert_eq!(second.term, first.term);
        assert_eq!(second.steps, 0, "shared hit performs no contractions");
        assert!(consumer.shared_cache_hits() > 0);
    }

    #[test]
    fn shared_cache_hits_are_alpha_invariant() {
        let p = nat_list_program();
        let cache = SharedNormalFormCache::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());

        // add (S x) y is stuck only after one contraction: S (add x y).
        let mut producer =
            MemoRewriter::new(&p.prog.sig, &p.prog.trs).with_shared_cache(cache.clone());
        let t1 = Term::apps(p.f.add, vec![p.f.s(Term::var(x)), Term::var(y)]);
        let n1 = producer.normalize(&t1);
        assert!(n1.in_normal_form);

        // The same goal up to renaming, in a different rewriter with
        // different VarIds, must hit and decode to *its* variables.
        let mut other_vars = VarStore::new();
        let a = other_vars.fresh("a", p.f.nat_ty());
        let b = other_vars.fresh("b", p.f.nat_ty());
        let mut consumer =
            MemoRewriter::new(&p.prog.sig, &p.prog.trs).with_shared_cache(cache.clone());
        let t2 = Term::apps(p.f.add, vec![p.f.s(Term::var(a)), Term::var(b)]);
        let n2 = consumer.normalize(&t2);
        assert!(consumer.shared_cache_hits() > 0, "α-renamed subject hits");
        assert_eq!(n2.steps, 0);
        assert_eq!(
            n2.term,
            p.f.s(Term::apps(p.f.add, vec![Term::var(a), Term::var(b)])),
            "decoded normal form uses the consumer's variables"
        );
    }

    #[test]
    fn partial_reductions_are_never_published() {
        let p = nat_list_program();
        let cache = SharedNormalFormCache::new();
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs)
            .with_fuel(2)
            .with_shared_cache(cache.clone());
        let t = Term::apps(p.f.add, vec![p.f.num(5), p.f.num(5)]);
        let n = memo.normalize(&t);
        assert!(!n.in_normal_form);
        assert!(
            cache.is_empty(),
            "a fuel-cut reduction must not poison the shared cache"
        );
    }

    #[test]
    fn shared_cached_normalize_agrees_with_plain() {
        let p = nat_list_program();
        let cache = SharedNormalFormCache::new();
        let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let samples = vec![
            Term::apps(p.f.add, vec![p.f.num(2), p.f.num(3)]),
            Term::apps(p.f.add, vec![Term::var(x), p.f.num(1)]),
            Term::apps(p.f.add, vec![p.f.s(Term::var(x)), p.f.num(2)]),
            p.f.num(4),
        ];
        // Run every sample through two cache-sharing rewriters; both must
        // agree with the plain leftmost-outermost rewriter.
        for _ in 0..2 {
            let mut memo =
                MemoRewriter::new(&p.prog.sig, &p.prog.trs).with_shared_cache(cache.clone());
            for t in &samples {
                assert_eq!(memo.normalize(t).term, rw.normalize(t).term, "on {t:?}");
            }
        }
    }

    #[test]
    fn case_candidates_id_agrees_with_owned() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        let g = vars.fresh("g", cycleq_term::Type::arrow(p.f.nat_ty(), p.f.nat_ty()));
        let xs = vars.fresh("xs", p.f.list_ty(p.f.nat_ty()));
        let samples = vec![
            Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
            Term::apps(p.f.add, vec![p.f.num(0), p.f.num(1)]),
            p.f.s(Term::var(x)),
            Term::apps(
                p.f.add,
                vec![
                    Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]),
                    Term::sym(p.f.zero),
                ],
            ),
            Term::apps(
                p.f.add,
                vec![
                    Term::var(x),
                    Term::apps(p.f.add, vec![Term::var(y), Term::sym(p.f.zero)]),
                ],
            ),
            Term::apps(p.f.map, vec![Term::var(g), Term::var(xs)]),
        ];
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs);
        for t in samples {
            let id = memo.intern(&t);
            assert_eq!(
                memo.case_candidates_id(id),
                case_candidates(&p.prog.sig, &p.prog.trs, &t),
                "mismatch on {t:?}"
            );
        }
    }
}
