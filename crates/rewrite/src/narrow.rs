//! Narrowing: instantiate-then-reduce steps, the engine behind rewriting
//! induction's `Expand` operator (Definition 4.1).
//!
//! `Expand_C(C[f M0 … Mn] = N)` overlaps the subterm `f M0 … Mn` with every
//! rule `f N0 … Nn → L` via most general unifiers and replaces the redex by
//! the corresponding instantiated right-hand side.

use cycleq_term::{unify, Position, Signature, Subst, Term, VarStore};

use crate::rule::RuleId;
use crate::trs::Trs;

/// One narrowing step at a fixed position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NarrowingStep {
    /// The narrowed term `(C[L])θ`.
    pub result: Term,
    /// The most general unifier `θ`, restricted to the goal's variables.
    pub subst: Subst,
    /// The rule used.
    pub rule: RuleId,
}

/// Narrows `term` at `pos` with every applicable rule.
///
/// Fresh variables for the rules are drawn from `vars` (the goal's variable
/// store), so the returned substitutions and terms are well-scoped there.
/// Returns an empty vector if the subterm at `pos` is not headed by a
/// defined symbol with rules of matching arity.
pub fn narrow_at(
    sig: &Signature,
    trs: &Trs,
    vars: &mut VarStore,
    term: &Term,
    pos: &Position,
) -> Vec<NarrowingStep> {
    let _ = sig;
    let Some(sub) = term.at(pos) else {
        return Vec::new();
    };
    let Some(head) = sub.head_sym() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for &id in trs.rules_for(head) {
        let rule = trs.rule(id);
        if rule.params().len() != sub.args().len() {
            continue;
        }
        let mark = vars.len();
        let (params, rhs) = trs.freshen_rule(id, vars);
        let lhs = Term::apps(head, params);
        match unify(&lhs, sub) {
            Ok(theta) => {
                let replaced = term
                    .replace_at(pos, rhs)
                    .expect("position valid by construction");
                out.push(NarrowingStep {
                    result: theta.apply(&replaced),
                    subst: theta,
                    rule: id,
                });
            }
            Err(_) => {
                // Undo the variable allocations for this rule; nothing else
                // refers to them.
                vars.truncate(mark);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::nat_list_program;
    use cycleq_term::Term;

    #[test]
    fn narrowing_add_splits_on_both_rules() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let y = vars.fresh("y", p.f.nat_ty());
        let t = Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]);
        let steps = narrow_at(&p.prog.sig, &p.prog.trs, &mut vars, &t, &Position::root());
        assert_eq!(steps.len(), 2);
        // The Z-rule instance: x ↦ Z, result y.
        assert_eq!(steps[0].subst.get(x), Some(&Term::sym(p.f.zero)));
        assert_eq!(steps[0].result, Term::var(y));
        // The S-rule instance: x ↦ S x', result S (add x' y).
        let bound = steps[1].subst.get(x).unwrap();
        assert_eq!(bound.head_sym(), Some(p.f.succ));
        assert_eq!(steps[1].result.head_sym(), Some(p.f.succ));
    }

    #[test]
    fn narrowing_below_the_root() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        // S (add x Z) narrowed at position 0.
        let t =
            p.f.s(Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]));
        let steps = narrow_at(
            &p.prog.sig,
            &p.prog.trs,
            &mut vars,
            &t,
            &Position::from_indices(vec![0]),
        );
        assert_eq!(steps.len(), 2);
        for s in &steps {
            assert_eq!(s.result.head_sym(), Some(p.f.succ));
        }
    }

    #[test]
    fn ground_redexes_narrow_like_rewriting() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let t = Term::apps(p.f.add, vec![p.f.num(0), p.f.num(2)]);
        let steps = narrow_at(&p.prog.sig, &p.prog.trs, &mut vars, &t, &Position::root());
        assert_eq!(steps.len(), 1, "only the Z rule unifies");
        assert_eq!(steps[0].result, p.f.num(2));
        assert!(steps[0].subst.restricted_to(t.vars()).is_empty());
    }

    #[test]
    fn failed_rules_leave_no_stray_variables() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let t = Term::apps(p.f.add, vec![p.f.num(0), p.f.num(2)]);
        let before = vars.len();
        let steps = narrow_at(&p.prog.sig, &p.prog.trs, &mut vars, &t, &Position::root());
        // The S rule fails; its freshened variables must have been undone.
        // The Z rule introduces exactly one variable (y).
        assert_eq!(steps.len(), 1);
        assert_eq!(vars.len(), before + 1);
    }

    #[test]
    fn non_defined_positions_yield_nothing() {
        let p = nat_list_program();
        let mut vars = VarStore::new();
        let t = p.f.num(3);
        assert!(narrow_at(&p.prog.sig, &p.prog.trs, &mut vars, &t, &Position::root()).is_empty());
    }
}
