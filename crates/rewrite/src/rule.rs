//! Rewrite rules `f M0 … Mn → N` (§2).
//!
//! The left-hand side head must be a defined symbol, its arguments must be
//! patterns (no defined symbols), both sides must be of datatype type, and
//! every variable of the right-hand side must occur on the left. These
//! invariants are checked when a rule is added to a [`crate::Trs`].

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use cycleq_term::{Signature, Subst, SymId, Term, VarId, VarStore};

/// Identifies a rule within a [`crate::Trs`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RuleId(pub(crate) u32);

impl RuleId {
    /// The raw index of the rule.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A rewrite rule `head params… → rhs`.
///
/// Rule variables are drawn from the owning [`crate::Trs`]'s variable store,
/// a namespace disjoint from any goal's variables. Reduction only ever
/// matches rule patterns *against* goal terms (one-sided), so no renaming is
/// needed; narrowing and critical pairs freshen rules explicitly via
/// [`crate::Trs::freshen_rule`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    head: SymId,
    params: Vec<Term>,
    rhs: Term,
}

impl Rule {
    pub(crate) fn new(head: SymId, params: Vec<Term>, rhs: Term) -> Rule {
        Rule { head, params, rhs }
    }

    /// The defined symbol the rule rewrites.
    pub fn head(&self) -> SymId {
        self.head
    }

    /// The argument patterns `M0 … Mn`.
    pub fn params(&self) -> &[Term] {
        &self.params
    }

    /// The right-hand side.
    pub fn rhs(&self) -> &Term {
        &self.rhs
    }

    /// The full left-hand side term `f M0 … Mn`.
    pub fn lhs_term(&self) -> Term {
        Term::apps(self.head, self.params.to_vec())
    }

    /// The variables of the left-hand side.
    pub fn lhs_vars(&self) -> BTreeSet<VarId> {
        let mut acc = BTreeSet::new();
        for p in &self.params {
            p.collect_vars(&mut acc);
        }
        acc
    }

    /// Whether the left-hand side is linear (no repeated variables).
    pub fn is_left_linear(&self) -> bool {
        fn count(t: &Term, seen: &mut BTreeSet<VarId>) -> bool {
            if let Some(v) = t.head_var() {
                if !seen.insert(v) {
                    return false;
                }
            }
            t.args().iter().all(|a| count(a, seen))
        }
        let mut seen = BTreeSet::new();
        self.params.iter().all(|p| count(p, &mut seen))
    }

    /// Applies the rule at the root of `subject` if it matches, returning
    /// the contractum.
    pub fn apply_root(&self, subject: &Term) -> Option<Term> {
        if subject.head_sym() != Some(self.head) || subject.args().len() != self.params.len() {
            return None;
        }
        let mut theta = Subst::new();
        for (p, s) in self.params.iter().zip(subject.args()) {
            let bound = cycleq_term::match_term(p, s)?;
            // Merge, requiring agreement for non-linear patterns.
            for (v, t) in bound.iter() {
                match theta.get(v) {
                    Some(prev) if prev != t => return None,
                    Some(_) => {}
                    None => {
                        theta.insert(v, t.clone());
                    }
                }
            }
        }
        Some(theta.apply(&self.rhs))
    }
}

/// Errors raised when installing a rule into a [`crate::Trs`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuleError {
    /// The left-hand head is not a defined symbol.
    HeadNotDefined,
    /// A left-hand argument contains a defined symbol (not a pattern).
    DefinedSymbolInPattern,
    /// The right-hand side uses a variable not bound on the left.
    UnboundRhsVariable(VarId),
    /// The left-hand side applies the head to a number of arguments
    /// incompatible with previous rules for the same symbol.
    ArityMismatch {
        /// The head symbol.
        head: SymId,
        /// Arity used by earlier rules.
        expected: usize,
        /// Arity of the offending rule.
        got: usize,
    },
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::HeadNotDefined => write!(f, "rule head must be a defined symbol"),
            RuleError::DefinedSymbolInPattern => {
                write!(f, "rule patterns must not contain defined symbols")
            }
            RuleError::UnboundRhsVariable(v) => {
                write!(
                    f,
                    "right-hand side variable v{} is not bound on the left",
                    v.index()
                )
            }
            RuleError::ArityMismatch { expected, got, .. } => {
                write!(
                    f,
                    "rule arity {got} disagrees with earlier rules' arity {expected}"
                )
            }
        }
    }
}

impl Error for RuleError {}

pub(crate) fn validate(
    sig: &Signature,
    head: SymId,
    params: &[Term],
    rhs: &Term,
) -> Result<(), RuleError> {
    if !sig.is_defined(head) {
        return Err(RuleError::HeadNotDefined);
    }
    for p in params {
        if p.contains_defined(sig) {
            return Err(RuleError::DefinedSymbolInPattern);
        }
    }
    let mut lhs_vars = BTreeSet::new();
    for p in params {
        p.collect_vars(&mut lhs_vars);
    }
    let rhs_vars = rhs.vars();
    if let Some(v) = rhs_vars.difference(&lhs_vars).next() {
        return Err(RuleError::UnboundRhsVariable(*v));
    }
    Ok(())
}

/// Renames the variables of `params`/`rhs` into `target`, returning the
/// renamed pair. Used to freshen rules before unification.
pub(crate) fn freshen(
    params: &[Term],
    rhs: &Term,
    rule_vars: &VarStore,
    target: &mut VarStore,
) -> (Vec<Term>, Term) {
    let mut renaming = Subst::new();
    let mut all_vars = BTreeSet::new();
    for p in params {
        p.collect_vars(&mut all_vars);
    }
    rhs.collect_vars(&mut all_vars);
    for v in all_vars {
        let fresh = target.fresh(rule_vars.name(v), rule_vars.ty(v).clone());
        renaming.insert(v, Term::var(fresh));
    }
    (
        params.iter().map(|p| renaming.apply(p)).collect(),
        renaming.apply(rhs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_term::fixtures::NatList;

    #[test]
    fn apply_root_rewrites_matching_terms() {
        let f = NatList::new();
        let mut rule_vars = VarStore::new();
        let y = rule_vars.fresh("y", f.nat_ty());
        // add Z y → y
        let rule = Rule::new(f.add, vec![Term::sym(f.zero), Term::var(y)], Term::var(y));
        let subject = Term::apps(f.add, vec![Term::sym(f.zero), f.num(2)]);
        assert_eq!(rule.apply_root(&subject), Some(f.num(2)));
    }

    #[test]
    fn apply_root_fails_on_constructor_clash() {
        let f = NatList::new();
        let mut rule_vars = VarStore::new();
        let y = rule_vars.fresh("y", f.nat_ty());
        let rule = Rule::new(f.add, vec![Term::sym(f.zero), Term::var(y)], Term::var(y));
        let subject = Term::apps(f.add, vec![f.num(1), f.num(2)]);
        assert_eq!(rule.apply_root(&subject), None);
    }

    #[test]
    fn apply_root_fails_on_partial_application() {
        let f = NatList::new();
        let mut rule_vars = VarStore::new();
        let y = rule_vars.fresh("y", f.nat_ty());
        let rule = Rule::new(f.add, vec![Term::sym(f.zero), Term::var(y)], Term::var(y));
        let subject = Term::apps(f.add, vec![Term::sym(f.zero)]);
        assert_eq!(rule.apply_root(&subject), None);
    }

    #[test]
    fn nonlinear_rule_requires_equal_arguments() {
        let f = NatList::new();
        let mut rule_vars = VarStore::new();
        let x = rule_vars.fresh("x", f.nat_ty());
        // eq-style rule: both params the same variable.
        let rule = Rule::new(f.add, vec![Term::var(x), Term::var(x)], Term::var(x));
        assert!(!rule.is_left_linear());
        let same = Term::apps(f.add, vec![f.num(1), f.num(1)]);
        let diff = Term::apps(f.add, vec![f.num(1), f.num(2)]);
        assert!(rule.apply_root(&same).is_some());
        assert!(rule.apply_root(&diff).is_none());
    }

    #[test]
    fn validate_rejects_defined_symbols_in_patterns() {
        let f = NatList::new();
        let mut rule_vars = VarStore::new();
        let y = rule_vars.fresh("y", f.nat_ty());
        let bad = Term::apps(f.add, vec![Term::sym(f.zero), Term::var(y)]);
        assert_eq!(
            validate(&f.sig, f.add, &[bad], &Term::var(y)),
            Err(RuleError::DefinedSymbolInPattern)
        );
    }

    #[test]
    fn validate_rejects_unbound_rhs_vars() {
        let f = NatList::new();
        let mut rule_vars = VarStore::new();
        let y = rule_vars.fresh("y", f.nat_ty());
        assert_eq!(
            validate(&f.sig, f.add, &[Term::sym(f.zero)], &Term::var(y)),
            Err(RuleError::UnboundRhsVariable(y))
        );
    }

    #[test]
    fn validate_rejects_constructor_heads() {
        let f = NatList::new();
        assert_eq!(
            validate(&f.sig, f.zero, &[], &Term::sym(f.zero)),
            Err(RuleError::HeadNotDefined)
        );
    }
}
