//! Cooperative cancellation and combined run limits.
//!
//! The reduction engine ([`crate::MemoRewriter`]) and the proof search
//! built on top of it are long loops of cheap steps; bounding them needs a
//! signal that is nearly free to poll from the innermost loop. This module
//! provides the two halves:
//!
//! - [`CancelToken`]: a shareable atomic flag. A caller hands a clone to
//!   the search and keeps one for itself; flipping it from any thread makes
//!   every holder's next poll observe the cancellation.
//! - [`RunLimits`]: a wall-clock deadline bundled with an optional token,
//!   so the hot loops poll one value instead of plumbing two.
//!
//! Polling a token is one relaxed atomic load — cheap enough to do every
//! contraction — while deadline polls (a syscall on most platforms) are
//! rate-limited by the caller.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable, thread-safe cancellation flag.
///
/// Clones observe the same flag: cancelling any clone cancels them all.
/// Cancellation is cooperative and sticky — once set it never resets, so a
/// token belongs to one logical run (create a fresh token per run).
///
/// ```
/// use cycleq_rewrite::CancelToken;
///
/// let token = CancelToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_cancelled());
/// token.cancel();
/// assert!(shared.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (one relaxed atomic load).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a bounded run stopped before reaching its result.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Interrupted {
    /// The wall-clock deadline passed.
    Deadline,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

/// The external limits on one run: an optional wall-clock deadline plus an
/// optional cancellation token. `Default` is unlimited.
///
/// Cheap to clone (an `Option<Instant>` and an `Arc` bump), so the hot
/// loops hold their own copy.
#[derive(Clone, Debug, Default)]
pub struct RunLimits {
    /// Stop when `Instant::now()` reaches this.
    pub deadline: Option<Instant>,
    /// Stop when this token is cancelled.
    pub cancel: Option<CancelToken>,
}

impl RunLimits {
    /// No limits at all.
    pub fn none() -> RunLimits {
        RunLimits::default()
    }

    /// Limits with just a wall-clock deadline.
    pub fn with_deadline(deadline: Option<Instant>) -> RunLimits {
        RunLimits {
            deadline,
            cancel: None,
        }
    }

    /// Adds a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> RunLimits {
        self.cancel = Some(token);
        self
    }

    /// Polls the cancellation token only (no syscall; safe to call every
    /// step of a hot loop).
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Polls both limits. Cancellation is reported ahead of the deadline
    /// when both have tripped: the caller asked to stop explicitly.
    ///
    /// # Errors
    ///
    /// [`Interrupted::Cancelled`] or [`Interrupted::Deadline`].
    pub fn check(&self) -> Result<(), Interrupted> {
        if self.is_cancelled() {
            return Err(Interrupted::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(Interrupted::Deadline);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_is_shared_across_clones_and_threads() {
        let token = CancelToken::new();
        let clone = token.clone();
        std::thread::scope(|s| {
            s.spawn(move || clone.cancel());
        });
        assert!(token.is_cancelled());
    }

    #[test]
    fn limits_check_reports_the_tripped_limit() {
        assert_eq!(RunLimits::none().check(), Ok(()));

        let passed = RunLimits::with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert_eq!(passed.check(), Err(Interrupted::Deadline));

        let token = CancelToken::new();
        let limits = RunLimits::none().with_cancel(token.clone());
        assert_eq!(limits.check(), Ok(()));
        token.cancel();
        assert_eq!(limits.check(), Err(Interrupted::Cancelled));

        // Cancellation wins over a passed deadline.
        let both = RunLimits::with_deadline(Some(Instant::now() - Duration::from_millis(1)))
            .with_cancel(token);
        assert_eq!(both.check(), Err(Interrupted::Cancelled));
    }
}
