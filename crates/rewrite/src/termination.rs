//! Size-change termination of programs.
//!
//! Remark 2.1 assumes the rewrite system is weakly normalising and notes
//! that "although undecidable, practical algorithms exist for verifying
//! this property". This module provides exactly such an algorithm — the
//! size-change principle of Lee, Jones and Ben-Amram, reusing the same
//! [`cycleq_sizechange`] machinery that verifies cyclic proofs:
//!
//! - nodes are the defined symbols;
//! - for every rule `f p1 … pn → rhs` and every saturated call
//!   `g a1 … am` in `rhs`, a size-change graph records `i ≲ j` when `aj`
//!   is a proper subterm of `pi` and `i ≃ j` when `aj = pi`;
//! - the program terminates (hence normalises) if the closure satisfies
//!   Theorem 5.2's criterion.
//!
//! The analysis is sound but incomplete: a `false` verdict means
//! "termination not established by size-change", not divergence.

use cycleq_sizechange::{is_size_change_terminating, Label, ScGraph};
use cycleq_term::{Signature, SymId};

use crate::trs::Trs;

/// Builds the call graph annotated with size-change graphs over argument
/// positions.
fn call_graphs(sig: &Signature, trs: &Trs) -> Vec<(SymId, SymId, ScGraph<u32>)> {
    let mut out = Vec::new();
    for (_, rule) in trs.rules() {
        let caller = rule.head();
        let params = rule.params();
        for call in rule.rhs().subterms() {
            let Some(callee) = call.head_sym() else {
                continue;
            };
            if !sig.is_defined(callee) {
                continue;
            }
            // Only saturated calls recurse through the rules; partial
            // applications are conservatively given an empty graph (no
            // trace information).
            let mut g = ScGraph::new();
            if trs.arity_of(callee) == Some(call.args().len()) {
                for (j, a) in call.args().iter().enumerate() {
                    for (i, p) in params.iter().enumerate() {
                        if a == p {
                            g.insert(i as u32, j as u32, Label::NonStrict);
                        } else if a.is_proper_subterm_of(p) {
                            g.insert(i as u32, j as u32, Label::Strict);
                        }
                    }
                }
            }
            out.push((caller, callee, g));
        }
    }
    out
}

/// Whether the program is size-change terminating.
///
/// A `true` verdict establishes strong normalisation and therefore the
/// weak-normalisation assumption of Remark 2.1.
pub fn size_change_terminates(sig: &Signature, trs: &Trs) -> bool {
    is_size_change_terminating(&call_graphs(sig, trs))
}

/// The defined symbols that participate in calls not covered by any
/// decreasing measure — useful diagnostics when
/// [`size_change_terminates`] fails. Returns an empty vector when the
/// program is size-change terminating.
pub fn non_terminating_suspects(sig: &Signature, trs: &Trs) -> Vec<SymId> {
    if size_change_terminates(sig, trs) {
        return Vec::new();
    }
    // Point at symbols with a self-call whose graph has no strict edge —
    // the simplest witnesses.
    let graphs = call_graphs(sig, trs);
    let mut out: Vec<SymId> = graphs
        .iter()
        .filter(|(f, g, graph)| f == g && !graph.edges().any(|(_, _, l)| l == Label::Strict))
        .map(|(f, _, _)| *f)
        .collect();
    out.dedup();
    if out.is_empty() {
        // Indirect cycles: report every symbol in a call cycle.
        out = graphs.iter().map(|(f, _, _)| *f).collect();
        out.sort();
        out.dedup();
    }
    out
}

/// Helper for tests: whether a specific defined symbol's direct recursion
/// is size-change decreasing.
pub fn direct_recursion_decreases(sig: &Signature, trs: &Trs, sym: SymId) -> bool {
    call_graphs(sig, trs)
        .iter()
        .filter(|(f, g, _)| *f == sym && *g == sym)
        .all(|(_, _, graph)| graph.edges().any(|(_, _, l)| l == Label::Strict))
}

/// Re-export of the underlying call-graph construction for benches and
/// diagnostics.
pub fn program_call_graphs(sig: &Signature, trs: &Trs) -> Vec<(SymId, SymId, ScGraph<u32>)> {
    call_graphs(sig, trs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::nat_list_program;
    use crate::trs::Trs;
    use cycleq_term::{Type, TypeScheme};

    #[test]
    fn fixture_program_terminates() {
        let p = nat_list_program();
        assert!(size_change_terminates(&p.prog.sig, &p.prog.trs));
        assert!(non_terminating_suspects(&p.prog.sig, &p.prog.trs).is_empty());
    }

    #[test]
    fn direct_recursions_decrease() {
        let p = nat_list_program();
        for name in ["add", "app", "len", "map"] {
            let sym = p.prog.sig.sym_by_name(name).unwrap();
            assert!(
                direct_recursion_decreases(&p.prog.sig, &p.prog.trs, sym),
                "{name}"
            );
        }
    }

    #[test]
    fn looping_program_is_rejected() {
        let f = cycleq_term::fixtures::NatList::new();
        let mut sig = f.sig.clone();
        let spin = sig
            .add_defined(
                "spin",
                TypeScheme::mono(Type::arrow(f.nat_ty(), f.nat_ty())),
            )
            .unwrap();
        let mut trs = Trs::new();
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        // spin x = spin x
        trs.add_rule(
            &sig,
            spin,
            vec![cycleq_term::Term::var(x)],
            cycleq_term::Term::apps(spin, vec![cycleq_term::Term::var(x)]),
        )
        .unwrap();
        assert!(!size_change_terminates(&sig, &trs));
        assert_eq!(non_terminating_suspects(&sig, &trs), vec![spin]);
    }

    #[test]
    fn growing_recursion_is_rejected() {
        let f = cycleq_term::fixtures::NatList::new();
        let mut sig = f.sig.clone();
        let grow = sig
            .add_defined(
                "grow",
                TypeScheme::mono(Type::arrow(f.nat_ty(), f.nat_ty())),
            )
            .unwrap();
        let mut trs = Trs::new();
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        // grow x = grow (S x): the argument grows, no decrease anywhere.
        trs.add_rule(
            &sig,
            grow,
            vec![cycleq_term::Term::var(x)],
            cycleq_term::Term::apps(grow, vec![f.s(cycleq_term::Term::var(x))]),
        )
        .unwrap();
        assert!(!size_change_terminates(&sig, &trs));
    }

    #[test]
    fn mutual_recursion_through_subterms_terminates() {
        // even/odd-style mutual recursion.
        let f = cycleq_term::fixtures::NatList::new();
        let mut sig = f.sig.clone();
        let even = sig
            .add_defined(
                "even",
                TypeScheme::mono(Type::arrow(f.nat_ty(), f.bool_ty())),
            )
            .unwrap();
        let odd = sig
            .add_defined(
                "odd",
                TypeScheme::mono(Type::arrow(f.nat_ty(), f.bool_ty())),
            )
            .unwrap();
        let mut trs = Trs::new();
        use cycleq_term::Term;
        trs.add_rule(&sig, even, vec![Term::sym(f.zero)], Term::sym(f.true_))
            .unwrap();
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        trs.add_rule(
            &sig,
            even,
            vec![f.s(Term::var(x))],
            Term::apps(odd, vec![Term::var(x)]),
        )
        .unwrap();
        trs.add_rule(&sig, odd, vec![Term::sym(f.zero)], Term::sym(f.false_))
            .unwrap();
        let y = trs.vars_mut().fresh("y", f.nat_ty());
        trs.add_rule(
            &sig,
            odd,
            vec![f.s(Term::var(y))],
            Term::apps(even, vec![Term::var(y)]),
        )
        .unwrap();
        assert!(size_change_terminates(&sig, &trs));
    }

    #[test]
    fn argument_permutation_without_decrease_is_rejected() {
        let f = cycleq_term::fixtures::NatList::new();
        let mut sig = f.sig.clone();
        let swp = sig
            .add_defined(
                "swp",
                TypeScheme::mono(Type::arrows(vec![f.nat_ty(), f.nat_ty()], f.nat_ty())),
            )
            .unwrap();
        let mut trs = Trs::new();
        use cycleq_term::Term;
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        let y = trs.vars_mut().fresh("y", f.nat_ty());
        // swp x y = swp y x: the classic unsound permutation.
        trs.add_rule(
            &sig,
            swp,
            vec![Term::var(x), Term::var(y)],
            Term::apps(swp, vec![Term::var(y), Term::var(x)]),
        )
        .unwrap();
        assert!(!size_change_terminates(&sig, &trs));
    }
}
