//! Pattern completeness: the "complete" assumption of Remark 2.1.
//!
//! A program is complete when no closed, first-order, defined-head term is
//! in normal form — i.e. every defined function's pattern matrix covers all
//! constructor combinations. The check is the classical usefulness
//! algorithm on pattern matrices (specialisation by constructor plus a
//! default row for variables), returning a concrete uncovered argument
//! vector as a witness when coverage fails.

use std::fmt;

use cycleq_term::{Head, Signature, SymId, Term};

use crate::trs::Trs;

/// A witness pattern for an uncovered case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WitnessPat {
    /// Any value (a wildcard).
    Any,
    /// A constructor applied to witness patterns.
    Con(SymId, Vec<WitnessPat>),
}

impl WitnessPat {
    /// Renders the witness against a signature.
    pub fn display(&self, sig: &Signature) -> String {
        match self {
            WitnessPat::Any => "_".to_string(),
            WitnessPat::Con(k, args) => {
                if args.is_empty() {
                    sig.sym(*k).name().to_string()
                } else {
                    let inner: Vec<String> = args.iter().map(|a| a.display(sig)).collect();
                    format!("({} {})", sig.sym(*k).name(), inner.join(" "))
                }
            }
        }
    }
}

/// The result of a completeness check for one defined symbol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Completeness {
    /// All constructor combinations are covered.
    Complete,
    /// The argument vector in `witness` is not covered by any rule.
    Incomplete {
        /// The uncovered arguments, one per parameter.
        witness: Vec<WitnessPat>,
    },
}

impl fmt::Display for Completeness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completeness::Complete => write!(f, "complete"),
            Completeness::Incomplete { witness } => {
                write!(f, "incomplete ({} missing pattern(s))", witness.len())
            }
        }
    }
}

/// Row = the parameter patterns of one rule (flattened during recursion).
type Matrix = Vec<Vec<Term>>;

fn find_witness(sig: &Signature, rows: Matrix, width: usize) -> Option<Vec<WitnessPat>> {
    if width == 0 {
        return if rows.is_empty() {
            Some(Vec::new())
        } else {
            None
        };
    }
    if rows.is_empty() {
        return Some(vec![WitnessPat::Any; width]);
    }
    // Constructors appearing in the first column.
    let mut present: Vec<SymId> = Vec::new();
    for row in &rows {
        if let Head::Sym(k) = row[0].head() {
            if !present.contains(&k) {
                present.push(k);
            }
        }
    }
    if present.is_empty() {
        // All first-column patterns are variables: drop the column.
        let rest: Matrix = rows.into_iter().map(|r| r[1..].to_vec()).collect();
        let w = find_witness(sig, rest, width - 1)?;
        let mut out = vec![WitnessPat::Any];
        out.extend(w);
        return Some(out);
    }
    // Determine the datatype from any present constructor.
    let data = match sig.sym(present[0]).kind() {
        cycleq_term::SymKind::Constructor(d) => d,
        cycleq_term::SymKind::Defined => unreachable!("patterns contain no defined symbols"),
    };
    let has_var_row = rows.iter().any(|r| matches!(r[0].head(), Head::Var(_)));
    for &k in sig.constructors_of(data) {
        let arity = sig.constructor_arity(k);
        if !present.contains(&k) && !has_var_row {
            // k is entirely uncovered.
            let mut out = vec![WitnessPat::Con(k, vec![WitnessPat::Any; arity])];
            out.extend(vec![WitnessPat::Any; width - 1]);
            return Some(out);
        }
        // Specialise the matrix for k.
        let mut spec: Matrix = Vec::new();
        for row in &rows {
            match row[0].head() {
                Head::Var(_) => {
                    // Wildcard row: expands to fresh wildcards. Represent a
                    // wildcard as the same variable pattern — any bare var
                    // works since only heads matter here. Reuse row[0].
                    let mut new_row = vec![row[0].clone(); arity];
                    new_row.extend_from_slice(&row[1..]);
                    spec.push(new_row);
                }
                Head::Sym(k2) if k2 == k => {
                    let mut new_row: Vec<Term> = row[0].args().to_vec();
                    new_row.extend_from_slice(&row[1..]);
                    spec.push(new_row);
                }
                Head::Sym(_) => {}
            }
        }
        if let Some(w) = find_witness(sig, spec, arity + width - 1) {
            let (kargs, rest) = w.split_at(arity);
            let mut out = vec![WitnessPat::Con(k, kargs.to_vec())];
            out.extend_from_slice(rest);
            return Some(out);
        }
    }
    None
}

/// Checks pattern completeness of one defined symbol.
///
/// Symbols with no rules at all are complete only if unreachable; they are
/// reported as incomplete with an all-wildcard witness when `arity` is
/// known, and complete otherwise (no rule fixes an arity to check).
pub fn check_symbol(sig: &Signature, trs: &Trs, sym: SymId) -> Completeness {
    let ids = trs.rules_for(sym);
    let Some(first) = ids.first() else {
        return Completeness::Complete;
    };
    let width = trs.rule(*first).params().len();
    let rows: Matrix = ids
        .iter()
        .map(|id| trs.rule(*id).params().to_vec())
        .collect();
    match find_witness(sig, rows, width) {
        Some(witness) => Completeness::Incomplete { witness },
        None => Completeness::Complete,
    }
}

/// Checks every defined symbol with at least one rule, returning the
/// incomplete ones with witnesses.
pub fn check_program(sig: &Signature, trs: &Trs) -> Vec<(SymId, Vec<WitnessPat>)> {
    let mut out = Vec::new();
    for (id, decl) in sig.syms() {
        if decl.kind() != cycleq_term::SymKind::Defined {
            continue;
        }
        if let Completeness::Incomplete { witness } = check_symbol(sig, trs, id) {
            out.push((id, witness));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::nat_list_program;
    use crate::trs::Trs;
    use cycleq_term::{Term, Type, TypeScheme};

    #[test]
    fn fixture_program_is_complete() {
        let p = nat_list_program();
        assert!(check_program(&p.prog.sig, &p.prog.trs).is_empty());
    }

    #[test]
    fn missing_constructor_case_is_reported() {
        let f = cycleq_term::fixtures::NatList::new();
        let mut sig = f.sig.clone();
        let pred = sig
            .add_defined(
                "pred",
                TypeScheme::mono(Type::arrow(f.nat_ty(), f.nat_ty())),
            )
            .unwrap();
        let mut trs = Trs::new();
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        // Only the S case: pred (S x) = x. Missing Z.
        trs.add_rule(&sig, pred, vec![f.s(Term::var(x))], Term::var(x))
            .unwrap();
        match check_symbol(&sig, &trs, pred) {
            Completeness::Incomplete { witness } => {
                assert_eq!(witness.len(), 1);
                assert_eq!(witness[0].display(&sig), "Z");
            }
            Completeness::Complete => panic!("pred should be incomplete"),
        }
    }

    #[test]
    fn missing_nested_case_is_reported() {
        let f = cycleq_term::fixtures::NatList::new();
        let mut sig = f.sig.clone();
        let half = sig
            .add_defined(
                "half",
                TypeScheme::mono(Type::arrow(f.nat_ty(), f.nat_ty())),
            )
            .unwrap();
        let mut trs = Trs::new();
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        // half Z = Z; half (S (S x)) = S (half x). Missing S Z.
        trs.add_rule(&sig, half, vec![Term::sym(f.zero)], Term::sym(f.zero))
            .unwrap();
        trs.add_rule(
            &sig,
            half,
            vec![f.s(f.s(Term::var(x)))],
            f.s(Term::apps(half, vec![Term::var(x)])),
        )
        .unwrap();
        match check_symbol(&sig, &trs, half) {
            Completeness::Incomplete { witness } => {
                assert_eq!(witness[0].display(&sig), "(S Z)");
            }
            Completeness::Complete => panic!("half should be incomplete"),
        }
    }

    #[test]
    fn variable_rows_cover_everything() {
        let f = cycleq_term::fixtures::NatList::new();
        let mut sig = f.sig.clone();
        let id_fn = sig
            .add_defined(
                "idNat",
                TypeScheme::mono(Type::arrow(f.nat_ty(), f.nat_ty())),
            )
            .unwrap();
        let mut trs = Trs::new();
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        trs.add_rule(&sig, id_fn, vec![Term::var(x)], Term::var(x))
            .unwrap();
        assert_eq!(check_symbol(&sig, &trs, id_fn), Completeness::Complete);
    }

    #[test]
    fn multi_column_coverage() {
        let p = nat_list_program();
        // The fixture's add has rules for (Z, y) and (S x, y): complete in
        // both columns.
        assert_eq!(
            check_symbol(&p.prog.sig, &p.prog.trs, p.f.add),
            Completeness::Complete
        );
    }

    #[test]
    fn symbols_without_rules_are_not_flagged() {
        let f = cycleq_term::fixtures::NatList::new();
        let trs = Trs::new();
        assert!(check_program(&f.sig, &trs).is_empty());
    }
}
