//! Shared fixture: the [`cycleq_term::fixtures::NatList`] signature equipped
//! with the defining rules of Example 2.1 (`add`, `map`) plus `app` and
//! `len`.

use cycleq_term::fixtures::NatList;
use cycleq_term::{Term, TyVarId, Type};

use crate::trs::{Program, Trs};

/// A ready-made program over the `NatList` fixture signature.
#[derive(Clone, Debug)]
pub struct ProgramFixture {
    /// The underlying signature fixture with symbol handles.
    pub f: NatList,
    /// The program (signature + rules).
    pub prog: Program,
}

/// Builds the fixture program:
///
/// ```text
/// add Z y     = y                     len Nil         = Z
/// add (S x) y = S (add x y)           len (Cons x xs) = S (len xs)
/// app Nil ys         = ys             map f Nil         = Nil
/// app (Cons x xs) ys = Cons x (app xs ys)
///                                     map f (Cons x xs) = Cons (f x) (map f xs)
/// ```
///
/// # Panics
///
/// Never panics in practice; the rules are statically valid.
pub fn nat_list_program() -> ProgramFixture {
    let f = NatList::new();
    let mut trs = Trs::new();
    let nat = f.nat_ty();
    let a = Type::Var(TyVarId(0));
    let b = Type::Var(TyVarId(1));
    let list_a = f.list_ty(a.clone());

    // add
    {
        let y = trs.vars_mut().fresh("y", nat.clone());
        trs.add_rule(
            &f.sig,
            f.add,
            vec![Term::sym(f.zero), Term::var(y)],
            Term::var(y),
        )
        .expect("valid rule");
        let x = trs.vars_mut().fresh("x", nat.clone());
        let y = trs.vars_mut().fresh("y", nat.clone());
        trs.add_rule(
            &f.sig,
            f.add,
            vec![f.s(Term::var(x)), Term::var(y)],
            f.s(Term::apps(f.add, vec![Term::var(x), Term::var(y)])),
        )
        .expect("valid rule");
    }
    // app
    {
        let ys = trs.vars_mut().fresh("ys", list_a.clone());
        trs.add_rule(
            &f.sig,
            f.app,
            vec![Term::sym(f.nil), Term::var(ys)],
            Term::var(ys),
        )
        .expect("valid rule");
        let x = trs.vars_mut().fresh("x", a.clone());
        let xs = trs.vars_mut().fresh("xs", list_a.clone());
        let ys = trs.vars_mut().fresh("ys", list_a.clone());
        trs.add_rule(
            &f.sig,
            f.app,
            vec![f.cons_t(Term::var(x), Term::var(xs)), Term::var(ys)],
            f.cons_t(
                Term::var(x),
                Term::apps(f.app, vec![Term::var(xs), Term::var(ys)]),
            ),
        )
        .expect("valid rule");
    }
    // len
    {
        trs.add_rule(&f.sig, f.len, vec![Term::sym(f.nil)], Term::sym(f.zero))
            .expect("valid rule");
        let x = trs.vars_mut().fresh("x", a.clone());
        let xs = trs.vars_mut().fresh("xs", list_a.clone());
        trs.add_rule(
            &f.sig,
            f.len,
            vec![f.cons_t(Term::var(x), Term::var(xs))],
            f.s(Term::apps(f.len, vec![Term::var(xs)])),
        )
        .expect("valid rule");
    }
    // map
    {
        let g = trs.vars_mut().fresh("f", Type::arrow(a.clone(), b.clone()));
        trs.add_rule(
            &f.sig,
            f.map,
            vec![Term::var(g), Term::sym(f.nil)],
            Term::sym(f.nil),
        )
        .expect("valid rule");
        let g = trs.vars_mut().fresh("f", Type::arrow(a.clone(), b));
        let x = trs.vars_mut().fresh("x", a);
        let xs = trs.vars_mut().fresh("xs", list_a);
        trs.add_rule(
            &f.sig,
            f.map,
            vec![Term::var(g), f.cons_t(Term::var(x), Term::var(xs))],
            f.cons_t(
                Term::var_apps(g, vec![Term::var(x)]),
                Term::apps(f.map, vec![Term::var(g), Term::var(xs)]),
            ),
        )
        .expect("valid rule");
    }

    let prog = Program::new(f.sig.clone(), trs);
    ProgramFixture { f, prog }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_program_has_eight_rules() {
        let p = nat_list_program();
        assert_eq!(p.prog.trs.len(), 8);
        assert_eq!(p.prog.trs.rules_for(p.f.map).len(), 2);
    }
}
