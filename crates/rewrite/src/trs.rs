//! Term rewriting systems and programs.

use std::collections::HashMap;

use cycleq_term::{Signature, SymId, Term, VarStore};

use crate::rule::{freshen, validate, Rule, RuleError, RuleId};

/// A set of rewrite rules `R`, indexed by head symbol.
///
/// The rules' variables live in the `Trs`'s own [`VarStore`], disjoint from
/// goal variables.
#[derive(Clone, Debug, Default)]
pub struct Trs {
    rules: Vec<Rule>,
    by_head: HashMap<SymId, Vec<RuleId>>,
    vars: VarStore,
}

impl Trs {
    /// An empty rewrite system.
    pub fn new() -> Trs {
        Trs::default()
    }

    /// The variable store holding rule variables; allocate rule variables
    /// here before building patterns.
    pub fn vars_mut(&mut self) -> &mut VarStore {
        &mut self.vars
    }

    /// The variable store holding rule variables.
    pub fn vars(&self) -> &VarStore {
        &self.vars
    }

    /// Installs the rule `head params… → rhs`.
    ///
    /// # Errors
    ///
    /// Rejects rules violating the shape requirements of §2 (defined head,
    /// constructor patterns, no unbound right-hand variables) and rules
    /// whose arity disagrees with earlier rules for the same symbol.
    pub fn add_rule(
        &mut self,
        sig: &Signature,
        head: SymId,
        params: Vec<Term>,
        rhs: Term,
    ) -> Result<RuleId, RuleError> {
        validate(sig, head, &params, &rhs)?;
        if let Some(ids) = self.by_head.get(&head) {
            if let Some(first) = ids.first() {
                let expected = self.rules[first.index()].params().len();
                if expected != params.len() {
                    return Err(RuleError::ArityMismatch {
                        head,
                        expected,
                        got: params.len(),
                    });
                }
            }
        }
        let id = RuleId(self.rules.len() as u32);
        self.rules.push(Rule::new(head, params, rhs));
        self.by_head.entry(head).or_default().push(id);
        Ok(id)
    }

    /// The rule with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this system.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.index()]
    }

    /// All rules, in insertion order.
    pub fn rules(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules
            .iter()
            .enumerate()
            .map(|(i, r)| (RuleId(i as u32), r))
    }

    /// The rules defining `head`.
    pub fn rules_for(&self, head: SymId) -> &[RuleId] {
        self.by_head.get(&head).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the system has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The number of value arguments rules for `head` expect, if any rules
    /// exist.
    pub fn arity_of(&self, head: SymId) -> Option<usize> {
        self.rules_for(head)
            .first()
            .map(|id| self.rule(*id).params().len())
    }

    /// Renames the rule's variables into `target`, returning fresh
    /// `(params, rhs)` suitable for unification against goal terms.
    pub fn freshen_rule(&self, id: RuleId, target: &mut VarStore) -> (Vec<Term>, Term) {
        let rule = self.rule(id);
        freshen(rule.params(), rule.rhs(), &self.vars, target)
    }
}

/// A program: a signature together with its rewrite system.
///
/// This is the input to every prover in the workspace; the frontend crate
/// lowers source text to a `Program`.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The signature (datatypes and symbols).
    pub sig: Signature,
    /// The rewrite rules implementing the defined symbols.
    pub trs: Trs,
}

impl Program {
    /// Creates a program from parts.
    pub fn new(sig: Signature, trs: Trs) -> Program {
        Program { sig, trs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_term::fixtures::NatList;

    fn add_rules(f: &NatList) -> Trs {
        let mut trs = Trs::new();
        let y = trs.vars_mut().fresh("y", f.nat_ty());
        trs.add_rule(
            &f.sig,
            f.add,
            vec![Term::sym(f.zero), Term::var(y)],
            Term::var(y),
        )
        .unwrap();
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        let y2 = trs.vars_mut().fresh("y", f.nat_ty());
        trs.add_rule(
            &f.sig,
            f.add,
            vec![f.s(Term::var(x)), Term::var(y2)],
            f.s(Term::apps(f.add, vec![Term::var(x), Term::var(y2)])),
        )
        .unwrap();
        trs
    }

    #[test]
    fn rules_are_indexed_by_head() {
        let f = NatList::new();
        let trs = add_rules(&f);
        assert_eq!(trs.rules_for(f.add).len(), 2);
        assert_eq!(trs.rules_for(f.len).len(), 0);
        assert_eq!(trs.arity_of(f.add), Some(2));
        assert_eq!(trs.arity_of(f.len), None);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let f = NatList::new();
        let mut trs = add_rules(&f);
        let err = trs.add_rule(&f.sig, f.add, vec![Term::sym(f.zero)], Term::sym(f.zero));
        assert!(matches!(err, Err(RuleError::ArityMismatch { .. })));
    }

    #[test]
    fn freshen_rule_renames_into_target() {
        let f = NatList::new();
        let trs = add_rules(&f);
        let mut goal_vars = VarStore::new();
        let before = goal_vars.len();
        let (params, rhs) = trs.freshen_rule(RuleId(1), &mut goal_vars);
        assert_eq!(goal_vars.len(), before + 2);
        // All variables in the freshened rule live in the goal store.
        let mut vars = std::collections::BTreeSet::new();
        for p in &params {
            p.collect_vars(&mut vars);
        }
        rhs.collect_vars(&mut vars);
        assert!(vars.iter().all(|v| v.index() < goal_vars.len()));
    }
}
