//! The one-step reduction relation `→R` and normalisation `↓R` (§2).
//!
//! The strategy is leftmost-outermost, mirroring the paper's implementation
//! note that reduction should be "non-strict" (§6): an outermost redex is
//! contracted even when inner arguments are stuck on variables. On complete,
//! weakly-normalising, confluent systems (Remark 2.1) the computed normal
//! form is the semantic normal form `M ↓R`.
//!
//! Normalisation carries a fuel bound so that a non-terminating input
//! program cannot hang the prover; running out of fuel is reported
//! explicitly.

use cycleq_term::{Position, Signature, Term};

use crate::trs::Trs;

/// The outcome of normalisation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Normalized {
    /// The final term.
    pub term: Term,
    /// The number of one-step reductions performed.
    pub steps: usize,
    /// Whether a normal form was reached (`false` means fuel ran out).
    pub in_normal_form: bool,
}

/// A reduction engine for a program's rewrite system.
///
/// Borrows the signature and rules; cheap to construct.
#[derive(Copy, Clone, Debug)]
pub struct Rewriter<'a> {
    sig: &'a Signature,
    trs: &'a Trs,
    fuel: usize,
}

/// Default number of one-step reductions allowed per normalisation.
pub const DEFAULT_FUEL: usize = 100_000;

impl<'a> Rewriter<'a> {
    /// Creates a rewriter with the default fuel.
    pub fn new(sig: &'a Signature, trs: &'a Trs) -> Rewriter<'a> {
        Rewriter {
            sig,
            trs,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Overrides the fuel bound.
    pub fn with_fuel(mut self, fuel: usize) -> Rewriter<'a> {
        self.fuel = fuel;
        self
    }

    /// Attempts a root reduction step, trying the head's rules in order.
    pub fn step_root(&self, t: &Term) -> Option<Term> {
        let head = t.head_sym()?;
        if !self.sig.is_defined(head) {
            return None;
        }
        for id in self.trs.rules_for(head) {
            if let Some(reduct) = self.trs.rule(*id).apply_root(t) {
                return Some(reduct);
            }
        }
        None
    }

    /// Performs one leftmost-outermost step anywhere in the term.
    ///
    /// Only the siblings along the path to the redex are cloned; the
    /// contracted subtree itself is never copied.
    pub fn step(&self, t: &Term) -> Option<Term> {
        if let Some(r) = self.step_root(t) {
            return Some(r);
        }
        for (i, a) in t.args().iter().enumerate() {
            if let Some(r) = self.step(a) {
                let mut args = Vec::with_capacity(t.args().len());
                args.extend(t.args()[..i].iter().cloned());
                args.push(r);
                args.extend(t.args()[i + 1..].iter().cloned());
                return Some(Term::from_parts(t.head(), args));
            }
        }
        None
    }

    /// Performs a single step at exactly the given position.
    pub fn step_at(&self, t: &Term, pos: &Position) -> Option<Term> {
        let sub = t.at(pos)?;
        let reduct = self.step_root(sub)?;
        t.replace_at(pos, reduct)
    }

    /// Reduces to normal form (or until fuel runs out).
    pub fn normalize(&self, t: &Term) -> Normalized {
        let mut cur = t.clone();
        let mut steps = 0;
        while steps < self.fuel {
            match self.step(&cur) {
                Some(next) => {
                    cur = next;
                    steps += 1;
                }
                None => {
                    return Normalized {
                        term: cur,
                        steps,
                        in_normal_form: true,
                    }
                }
            }
        }
        Normalized {
            term: cur,
            steps,
            in_normal_form: false,
        }
    }

    /// Whether the term is in `R`-normal form.
    pub fn is_normal_form(&self, t: &Term) -> bool {
        self.step(t).is_none()
    }

    /// Whether `from →R* to` within the fuel bound, checked by reducing
    /// `from` and comparing each intermediate term.
    ///
    /// Used by the proof checker to validate `(Reduce)` instances; because
    /// premises record arbitrary reducts (not necessarily normal forms),
    /// every intermediate term along the leftmost-outermost sequence is
    /// compared.
    ///
    /// Shares the same step bound as [`Rewriter::normalize`]: user programs
    /// are untrusted and may not terminate, so the search is cut off (and
    /// `false` returned) once the fuel is spent.
    pub fn reduces_to(&self, from: &Term, to: &Term) -> bool {
        let mut cur = from.clone();
        let mut steps = 0;
        loop {
            if &cur == to {
                return true;
            }
            if steps >= self.fuel {
                return false;
            }
            match self.step(&cur) {
                Some(next) => {
                    cur = next;
                    steps += 1;
                }
                None => return false,
            }
        }
    }

    /// All positions of `t` whose subterm is headed by a fully-applied
    /// defined symbol (redex candidates, reducible or stuck).
    pub fn defined_positions(&self, t: &Term) -> Vec<Position> {
        t.positions()
            .filter(|(_, sub)| {
                sub.head_sym().is_some_and(|h| {
                    self.sig.is_defined(h)
                        && self.trs.arity_of(h).is_some_and(|n| sub.args().len() == n)
                })
            })
            .map(|(p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::nat_list_program;
    use cycleq_term::{Term, VarStore};

    #[test]
    fn add_computes() {
        let p = nat_list_program();
        let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
        let t = Term::apps(p.f.add, vec![p.f.num(2), p.f.num(3)]);
        let n = rw.normalize(&t);
        assert!(n.in_normal_form);
        assert_eq!(n.term, p.f.num(5));
        assert_eq!(n.steps, 3); // two S-steps and one Z-step
    }

    #[test]
    fn open_terms_get_stuck() {
        let p = nat_list_program();
        let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
        let mut vars = VarStore::new();
        let x = vars.fresh("x", p.f.nat_ty());
        let t = Term::apps(p.f.add, vec![Term::var(x), p.f.num(1)]);
        let n = rw.normalize(&t);
        assert!(n.in_normal_form);
        assert_eq!(n.term, t, "stuck on the case variable x");
    }

    #[test]
    fn reduction_happens_under_constructors() {
        let p = nat_list_program();
        let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
        let inner = Term::apps(p.f.add, vec![p.f.num(0), p.f.num(1)]);
        let t = p.f.s(inner);
        let n = rw.normalize(&t);
        assert_eq!(n.term, p.f.num(2));
    }

    #[test]
    fn map_over_literal_list() {
        let p = nat_list_program();
        let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
        // map (add (S Z)) [0, 1] = [1, 2]
        let succ_fn = Term::apps(p.f.add, vec![p.f.num(1)]);
        let t = Term::apps(
            p.f.map,
            vec![succ_fn, p.f.list_t(vec![p.f.num(0), p.f.num(1)])],
        );
        let n = rw.normalize(&t);
        assert!(n.in_normal_form);
        assert_eq!(n.term, p.f.list_t(vec![p.f.num(1), p.f.num(2)]));
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let p = nat_list_program();
        let rw = Rewriter::new(&p.prog.sig, &p.prog.trs).with_fuel(2);
        let t = Term::apps(p.f.add, vec![p.f.num(5), p.f.num(5)]);
        let n = rw.normalize(&t);
        assert!(!n.in_normal_form);
        assert_eq!(n.steps, 2);
    }

    #[test]
    fn reduces_to_accepts_intermediate_terms() {
        let p = nat_list_program();
        let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
        let t = Term::apps(p.f.add, vec![p.f.num(2), p.f.num(0)]);
        // One step: S (add (S Z) Z).
        let mid = p.f.s(Term::apps(p.f.add, vec![p.f.num(1), p.f.num(0)]));
        assert!(rw.reduces_to(&t, &mid));
        assert!(rw.reduces_to(&t, &p.f.num(2)));
        assert!(rw.reduces_to(&t, &t));
        assert!(!rw.reduces_to(&mid, &t), "reduction is not symmetric");
    }

    #[test]
    fn reduces_to_is_fuel_bounded_on_nonterminating_programs() {
        // Regression test: `loop x → loop x` never reaches `Z`, and without
        // the fuel bound this query would spin forever. User `.hs` input is
        // untrusted, so exhaustion must simply answer `false`.
        use crate::trs::{Program, Trs};
        use cycleq_term::{Signature, Type, TypeScheme};

        let mut sig = Signature::new();
        let nat = sig.add_datatype("Nat", 0).unwrap();
        let zero = sig.add_constructor("Z", nat, vec![]).unwrap();
        let nat_ty = Type::data0(nat);
        let lp = sig
            .add_defined(
                "loop",
                TypeScheme::mono(Type::arrow(nat_ty.clone(), nat_ty.clone())),
            )
            .unwrap();
        let mut trs = Trs::new();
        let x = trs.vars_mut().fresh("x", nat_ty.clone());
        trs.add_rule(
            &sig,
            lp,
            vec![Term::var(x)],
            Term::apps(lp, vec![Term::var(x)]),
        )
        .unwrap();
        let prog = Program::new(sig, trs);
        let rw = Rewriter::new(&prog.sig, &prog.trs).with_fuel(1_000);
        let spin = Term::apps(lp, vec![Term::sym(zero)]);
        assert!(!rw.reduces_to(&spin, &Term::sym(zero)));
        // Reflexivity is still recognised immediately.
        assert!(rw.reduces_to(&spin, &spin));
    }

    #[test]
    fn step_at_targets_one_position() {
        let p = nat_list_program();
        let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
        let redex = Term::apps(p.f.add, vec![p.f.num(0), p.f.num(1)]);
        let t = Term::apps(p.f.add, vec![redex.clone(), redex]);
        let pos = Position::from_indices(vec![1]);
        let stepped = rw.step_at(&t, &pos).unwrap();
        // Only the second argument was reduced.
        assert_eq!(stepped.args()[1], p.f.num(1));
        assert_eq!(stepped.args()[0].head_sym(), Some(p.f.add));
    }

    #[test]
    fn defined_positions_requires_saturation() {
        let p = nat_list_program();
        let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
        let partial = Term::apps(p.f.add, vec![p.f.num(0)]);
        assert!(rw.defined_positions(&partial).is_empty());
        let full = Term::apps(p.f.add, vec![p.f.num(0), p.f.num(0)]);
        assert_eq!(rw.defined_positions(&full).len(), 1);
    }
}
