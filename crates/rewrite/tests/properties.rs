//! Property tests for reduction: determinism of normal forms on the
//! orthogonal fixture program (confluence in action), fuel monotonicity,
//! and agreement between narrowing and rewriting on ground terms.

use cycleq_rewrite::fixtures::nat_list_program;
use cycleq_rewrite::{case_candidates, check_orthogonality, narrow_at, MemoRewriter, Rewriter};
use cycleq_term::{Position, Term, VarStore};
use proptest::prelude::*;
use proptest::test_runner::Config;

fn cfg() -> Config {
    Config {
        cases: 96,
        ..Config::default()
    }
}

/// Ground Nat terms over Z, S, add.
fn ground_nat(p: &cycleq_rewrite::fixtures::ProgramFixture) -> impl Strategy<Value = Term> {
    let zero = p.f.zero;
    let succ = p.f.succ;
    let add = p.f.add;
    let leaf = Just(Term::sym(zero));
    leaf.prop_recursive(4, 20, 2, move |inner| {
        prop_oneof![
            inner.clone().prop_map(move |t| Term::apps(succ, vec![t])),
            (inner.clone(), inner).prop_map(move |(a, b)| Term::apps(add, vec![a, b])),
        ]
    })
}

/// Ground lists of Nats over Nil, Cons, app.
fn ground_list(p: &cycleq_rewrite::fixtures::ProgramFixture) -> impl Strategy<Value = Term> {
    let nil = p.f.nil;
    let cons = p.f.cons;
    let app = p.f.app;
    let elem = ground_nat(p).boxed();
    let leaf = Just(Term::sym(nil));
    (leaf.prop_recursive(4, 20, 2, move |inner| {
        prop_oneof![
            (elem.clone(), inner.clone()).prop_map(move |(x, xs)| Term::apps(cons, vec![x, xs])),
            (inner.clone(), inner).prop_map(move |(a, b)| Term::apps(app, vec![a, b])),
        ]
    }))
    .boxed()
}

fn nat_value(t: &Term, p: &cycleq_rewrite::fixtures::ProgramFixture) -> Option<usize> {
    if t.head_sym() == Some(p.f.zero) {
        Some(0)
    } else if t.head_sym() == Some(p.f.succ) {
        Some(1 + nat_value(&t.args()[0], p)?)
    } else {
        None
    }
}

fn nat_meaning(t: &Term, p: &cycleq_rewrite::fixtures::ProgramFixture) -> usize {
    if t.head_sym() == Some(p.f.zero) {
        0
    } else if t.head_sym() == Some(p.f.succ) {
        1 + nat_meaning(&t.args()[0], p)
    } else {
        // add
        nat_meaning(&t.args()[0], p) + nat_meaning(&t.args()[1], p)
    }
}

#[test]
fn normalisation_computes_addition() {
    let p = nat_list_program();
    let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
    proptest!(cfg(), |(t in ground_nat(&p))| {
        let n = rw.normalize(&t);
        prop_assert!(n.in_normal_form);
        prop_assert_eq!(nat_value(&n.term, &p), Some(nat_meaning(&t, &p)));
    });
}

#[test]
fn normal_forms_are_stable() {
    let p = nat_list_program();
    let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
    proptest!(cfg(), |(t in ground_nat(&p))| {
        let n = rw.normalize(&t);
        let again = rw.normalize(&n.term);
        prop_assert_eq!(again.steps, 0);
        prop_assert_eq!(again.term, n.term);
    });
}

#[test]
fn closed_defined_terms_are_never_stuck() {
    // The completeness assumption (Remark 2.1) in action: every closed
    // defined-head term reduces.
    let p = nat_list_program();
    let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
    proptest!(cfg(), |(t in ground_list(&p))| {
        let n = rw.normalize(&t);
        prop_assert!(n.in_normal_form);
        // A ground normal form of list type is a constructor tower.
        fn constructor_tower(t: &Term, sig: &cycleq_term::Signature) -> bool {
            t.head_sym().is_some_and(|h| !sig.is_defined(h))
                && t.args().iter().all(|a| constructor_tower(a, sig))
        }
        prop_assert!(constructor_tower(&n.term, &p.prog.sig), "stuck: {:?}", n.term);
    });
}

#[test]
fn append_preserves_length() {
    let p = nat_list_program();
    let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
    proptest!(cfg(), |(t in ground_list(&p))| {
        // len (t) computed via reduction equals the count of Cons cells in
        // the normal form.
        let n = rw.normalize(&t).term;
        fn cons_count(t: &Term, p: &cycleq_rewrite::fixtures::ProgramFixture) -> usize {
            if t.head_sym() == Some(p.f.cons) {
                1 + cons_count(&t.args()[1], p)
            } else {
                0
            }
        }
        let len_t = Term::apps(p.f.len, vec![t.clone()]);
        let len_nf = rw.normalize(&len_t).term;
        prop_assert_eq!(nat_value(&len_nf, &p), Some(cons_count(&n, &p)));
    });
}

/// Open Nat terms over Z, S, add and a handful of variables.
fn open_nat(
    p: &cycleq_rewrite::fixtures::ProgramFixture,
    vs: &[cycleq_term::VarId],
) -> impl Strategy<Value = Term> {
    let zero = p.f.zero;
    let succ = p.f.succ;
    let add = p.f.add;
    let vs = vs.to_vec();
    let leaf = prop_oneof![
        Just(Term::sym(zero)),
        (0..vs.len()).prop_map(move |i| Term::var(vs[i])),
    ];
    leaf.prop_recursive(4, 20, 2, move |inner| {
        prop_oneof![
            inner.clone().prop_map(move |t| Term::apps(succ, vec![t])),
            (inner.clone(), inner).prop_map(move |(a, b)| Term::apps(add, vec![a, b])),
        ]
    })
}

fn open_vars(p: &cycleq_rewrite::fixtures::ProgramFixture) -> (VarStore, Vec<cycleq_term::VarId>) {
    let mut vars = VarStore::new();
    let vs = (0..3)
        .map(|i| vars.fresh(&format!("x{i}"), p.f.nat_ty()))
        .collect();
    (vars, vs)
}

#[test]
fn memoized_reduction_agrees_with_plain_on_ground_terms() {
    let p = nat_list_program();
    let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
    proptest!(cfg(), |(t in ground_nat(&p))| {
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs);
        let plain = rw.normalize(&t);
        let fast = memo.normalize(&t);
        prop_assert!(fast.in_normal_form);
        prop_assert_eq!(&fast.term, &plain.term);
        // Normal forms are fixpoints of the memoised rewriter too, and
        // re-normalising is a free memo hit.
        let again = memo.normalize(&plain.term);
        prop_assert_eq!(again.steps, 0);
        prop_assert_eq!(again.term, plain.term);
    });
}

#[test]
fn memoized_reduction_agrees_with_plain_on_open_terms() {
    let p = nat_list_program();
    let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
    let (_vars, vs) = open_vars(&p);
    proptest!(cfg(), |(t in open_nat(&p, &vs))| {
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs);
        let plain = rw.normalize(&t);
        let fast = memo.normalize(&t);
        prop_assert!(plain.in_normal_form && fast.in_normal_form);
        prop_assert_eq!(fast.term, plain.term);
    });
}

#[test]
fn memoized_reduction_agrees_with_plain_on_lists() {
    let p = nat_list_program();
    let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
    proptest!(cfg(), |(t in ground_list(&p))| {
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs);
        prop_assert_eq!(memo.normalize(&t).term, rw.normalize(&t).term);
    });
}

#[test]
fn interned_case_candidates_agree_with_owned() {
    let p = nat_list_program();
    let (_vars, vs) = open_vars(&p);
    proptest!(cfg(), |(t in open_nat(&p, &vs))| {
        let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs);
        let id = memo.intern(&t);
        prop_assert_eq!(
            memo.case_candidates_id(id),
            case_candidates(&p.prog.sig, &p.prog.trs, &t)
        );
    });
}

#[test]
fn narrowing_generalises_rewriting_on_ground_redexes() {
    let p = nat_list_program();
    let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
    proptest!(cfg(), |(t in ground_nat(&p))| {
        // At any *innermost* ground redex (arguments free of defined
        // symbols), narrowing yields exactly the rewriting result with the
        // empty (goal-restricted) substitution. Outer redexes with defined
        // arguments need not unify with any rule head.
        for pos in rw.defined_positions(&t) {
            let sub = t.at(&pos).unwrap();
            if sub.args().iter().any(|a| a.contains_defined(&p.prog.sig)) {
                continue;
            }
            let mut vars = VarStore::new();
            let steps = narrow_at(&p.prog.sig, &p.prog.trs, &mut vars, &t, &pos);
            let direct = rw.step_at(&t, &pos);
            prop_assert_eq!(steps.len(), 1);
            prop_assert_eq!(Some(steps[0].result.clone()), direct);
            prop_assert!(steps[0].subst.restricted_to(t.vars()).is_empty());
        }
    });
}

#[test]
fn fixture_is_orthogonal_and_complete() {
    let p = nat_list_program();
    assert!(check_orthogonality(&p.prog.trs).is_orthogonal());
    assert!(cycleq_rewrite::check_program(&p.prog.sig, &p.prog.trs).is_empty());
}

#[test]
fn step_at_root_equals_step_root() {
    let p = nat_list_program();
    let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
    let t = Term::apps(p.f.add, vec![p.f.num(1), p.f.num(1)]);
    assert_eq!(rw.step_at(&t, &Position::root()), rw.step_root(&t));
}

#[test]
fn lpo_orients_all_fixture_rules_under_default_precedence() {
    let p = nat_list_program();
    let lpo = cycleq_rewrite::Lpo::from_signature(&p.prog.sig);
    assert_eq!(
        cycleq_rewrite::check_rules_decreasing(&p.prog.trs, &lpo),
        Ok(())
    );
}
