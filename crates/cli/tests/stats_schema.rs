//! Pins the stats schema across its three surfaces — the `--stats` line,
//! the `--format json` stats object, and the metrics registry exported by
//! `--metrics-out` — against one expected key list. All three are generated
//! from `SearchStats::entries()`, so a key added or renamed in one place
//! must show up in all of them (and in this file) or these tests fail.

use std::path::PathBuf;
use std::process::{Command, Output};

/// The pinned `SearchStats::entries()` key list, in order.
const EXPECTED: [&str; 19] = [
    "nodes_created",
    "rounds",
    "rule_reduce",
    "rule_refl",
    "rule_cong",
    "rule_funext",
    "case_splits",
    "subst_attempts",
    "unsound_cycles_pruned",
    "depth_limit_hits",
    "closure_graphs",
    "closure_compositions",
    "composition_memo_hits",
    "graphs_subsumed",
    "interned_graphs",
    "reduce_memo_hits",
    "shared_cache_hits",
    "shared_cache_misses",
    "interned_nodes",
];

/// Keys exported as gauges (end-of-search sizes); the rest are counters.
const GAUGES: [&str; 3] = ["closure_graphs", "interned_graphs", "interned_nodes"];

fn quickstart() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/quickstart.hs")
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cycleq"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn stats_line_keys_match_the_pinned_schema_in_order() {
    let file = quickstart();
    let out = run(&["--no-proof", "--stats", file.to_str().unwrap(), "addComm"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("stats:"))
        .unwrap_or_else(|| panic!("no stats line in:\n{stdout}"));
    let keys: Vec<&str> = line
        .trim_start()
        .strip_prefix("stats:")
        .unwrap()
        .split_whitespace()
        .map(|kv| kv.split('=').next().unwrap())
        .collect();
    let mut expected: Vec<&str> = EXPECTED.to_vec();
    expected.push("elapsed");
    assert_eq!(keys, expected, "stats line schema drifted");
}

#[test]
fn json_stats_object_keys_match_the_pinned_schema_in_order() {
    let file = quickstart();
    let out = run(&["--format", "json", file.to_str().unwrap(), "addComm"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let goal_line = stdout.lines().next().expect("one goal object");
    let at = goal_line
        .find("\"stats\":{")
        .unwrap_or_else(|| panic!("no stats object in {goal_line}"))
        + "\"stats\":{".len();
    let inner = &goal_line[at..at + goal_line[at..].find('}').expect("closed object")];
    let keys: Vec<&str> = inner
        .split(',')
        .map(|field| field.split(':').next().unwrap().trim_matches('"'))
        .collect();
    assert_eq!(keys, EXPECTED.to_vec(), "NDJSON stats schema drifted");
}

/// Extracts the value of one un-labeled sample line from Prometheus text.
fn prom_value(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|l| {
        l.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .and_then(|v| v.parse().ok())
    })
}

#[test]
fn prometheus_families_cover_the_schema_and_match_summed_goal_stats() {
    let file = quickstart();
    let prom_path = std::env::temp_dir().join(format!("cycleq_schema_{}.prom", std::process::id()));
    let out = run(&[
        "--format",
        "json",
        "--jobs",
        "2",
        "--metrics-out",
        prom_path.to_str().unwrap(),
        file.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let prom = std::fs::read_to_string(&prom_path).expect("metrics file written");
    std::fs::remove_file(&prom_path).ok();

    // Every schema key surfaces as a registry family: counters summed
    // across goals as `cycleq_search_<key>_total`, gauges as
    // `cycleq_search_<key>`.
    for key in EXPECTED {
        let family = if GAUGES.contains(&key) {
            format!("cycleq_search_{key}")
        } else {
            format!("cycleq_search_{key}_total")
        };
        assert!(
            prom.contains(&format!("# TYPE {family} ")),
            "family {family} missing from:\n{prom}"
        );
    }
    // The fixed observability families are present too.
    for family in [
        "cycleq_goals_total",
        "cycleq_goal_seconds",
        "cycleq_check_seconds",
        "cycleq_check_reducts_total",
        "cycleq_check_memo_hits_total",
        "cycleq_cache_hits_total",
        "cycleq_cache_misses_total",
        "cycleq_cache_evictions_total",
        "cycleq_cache_entries",
        "cycleq_sizechange_compositions_total",
        "cycleq_sizechange_memo_hits_total",
        "cycleq_sizechange_subsumed_total",
        "cycleq_batch_tasks_total",
        "cycleq_batch_steals_total",
        "cycleq_batch_queue_depth",
        "cycleq_batch_task_panics_total",
        "cycleq_goal_panics_total",
        "cycleq_goal_retries_total",
        "cycleq_cache_poison_recoveries_total",
        "cycleq_lock_poison_recoveries_total",
        "cycleq_phase_seconds",
    ] {
        assert!(
            prom.contains(&format!("# TYPE {family} ")),
            "family {family} missing from:\n{prom}"
        );
    }

    // Counters exported by the registry equal the per-goal NDJSON stats
    // summed over the batch — the same numbers, whichever surface you read.
    let goal_lines: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("\"type\":\"goal\""))
        .collect();
    assert_eq!(goal_lines.len(), 3, "quickstart declares 3 goals");
    for key in EXPECTED {
        if GAUGES.contains(&key) {
            continue;
        }
        let summed: u64 = goal_lines
            .iter()
            .map(|l| {
                let needle = format!("\"{key}\":");
                let at = l.find(&needle).unwrap() + needle.len();
                let rest = &l[at..];
                rest[..rest.find([',', '}']).unwrap()]
                    .parse::<u64>()
                    .unwrap()
            })
            .sum();
        let exported = prom_value(&prom, &format!("cycleq_search_{key}_total"))
            .unwrap_or_else(|| panic!("no sample for {key} in:\n{prom}"));
        assert_eq!(exported, summed, "{key}: registry diverges from NDJSON");
    }
    assert_eq!(
        prom_value(&prom, "cycleq_batch_tasks_total"),
        Some(3),
        "one scheduler task per goal"
    );
}
