//! Integration tests shelling out to the compiled `cycleq` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn quickstart() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/quickstart.hs")
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cycleq"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn proves_quickstart_goals_with_proof_and_stats() {
    let file = quickstart();
    let out = run(&["--stats", file.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    for goal in ["addZeroRight", "addSuccRight", "addComm"] {
        assert!(
            stdout.contains(&format!("goal {goal}: Proved")),
            "missing verdict in:\n{stdout}"
        );
    }
    // A non-empty rendered proof tree: case splits and a cycle-forming
    // (Subst) application must both appear.
    assert!(
        stdout.contains("[Case"),
        "no case split rendered:\n{stdout}"
    );
    assert!(
        stdout.contains("[Subst]"),
        "no back edge rendered:\n{stdout}"
    );
    assert!(
        stdout.contains("stats: nodes_created="),
        "no stats line:\n{stdout}"
    );
}

#[test]
fn selects_a_single_goal() {
    let file = quickstart();
    let out = run(&[file.to_str().unwrap(), "addComm"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("goal addComm: Proved"));
    assert!(!stdout.contains("addZeroRight"));
}

#[test]
fn dot_output_is_pipeable_graphviz() {
    let file = quickstart();
    let out = run(&["--dot", file.to_str().unwrap(), "addZeroRight"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.trim_start().starts_with("digraph"),
        "not DOT:\n{stdout}"
    );
    // Verdict annotations go to stderr so stdout pipes straight into `dot`.
    assert!(
        !stdout.contains("goal "),
        "non-DOT noise on stdout:\n{stdout}"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("goal addZeroRight: Proved"));
}

/// Writes a fixture with one provable and one refutable goal, returning
/// its path.
fn mixed_goals_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cycleq-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join(name);
    std::fs::write(
        &file,
        "data Nat = Z | S Nat\n\
         add :: Nat -> Nat -> Nat\n\
         add Z y = y\n\
         add (S x) y = S (add x y)\n\
         goal good: add Z y === y\n\
         goal wrong: add x Z === Z\n",
    )
    .unwrap();
    file
}

#[test]
fn refuted_goal_sets_distinct_exit_code() {
    let file = mixed_goals_file("wrong.hs");
    let out = run(&[file.to_str().unwrap(), "wrong"]);
    assert_eq!(out.status.code(), Some(3), "refuted goals exit with 3");
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("goal wrong: Refuted"));
    // A refutation anywhere dominates the aggregate exit code.
    let out = run(&[file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn exhausted_search_sets_gave_up_exit_code() {
    // A node budget of zero stops the search immediately (NodeBudget).
    let file = mixed_goals_file("budget.hs");
    let out = run(&["--max-nodes", "0", file.to_str().unwrap(), "good"]);
    assert_eq!(out.status.code(), Some(1), "gave-up goals exit with 1");
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("goal good: GaveUp"));
}

#[test]
fn failed_hint_sets_gave_up_exit_code() {
    // addComm cannot be proved at depth 1, so supplying it as a hint fails
    // (HintFailed) before the main goal is attempted.
    let file = quickstart();
    let out = run(&[
        "--max-depth",
        "1",
        "--hints",
        "addComm",
        file.to_str().unwrap(),
        "addZeroRight",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("goal addZeroRight: GaveUp"));
}

#[test]
fn proved_goal_exits_zero_even_with_refutable_sibling_unselected() {
    let file = mixed_goals_file("good.hs");
    let out = run(&[file.to_str().unwrap(), "good"]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn parallel_jobs_match_sequential_verdicts_and_order() {
    let file = quickstart();
    let sequential = run(&["--no-proof", file.to_str().unwrap()]);
    let parallel = run(&["--no-proof", "--jobs", "4", file.to_str().unwrap()]);
    assert!(sequential.status.success());
    assert!(
        parallel.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&parallel.stderr)
    );
    let seq_out = String::from_utf8(sequential.stdout).unwrap();
    let par_out = String::from_utf8(parallel.stdout).unwrap();
    // Same verdict lines in the same (declaration) order.
    let verdicts = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.starts_with("goal "))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(verdicts(&seq_out), verdicts(&par_out));
    // Plus the batch summary with shared-cache statistics.
    assert!(
        par_out.contains("batch: proved 3/3"),
        "missing summary:\n{par_out}"
    );
    assert!(
        par_out.contains("cache hits="),
        "no cache stats:\n{par_out}"
    );
}

#[test]
fn explicit_jobs_one_still_prints_the_batch_summary() {
    // `--jobs N` promises a summary line for every N, including 1 (the
    // deterministic single-worker batch).
    let file = quickstart();
    let out = run(&["--no-proof", "--jobs", "1", file.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("batch: proved 3/3 | jobs=1"),
        "missing summary:\n{stdout}"
    );
}

#[test]
fn parallel_refuted_goal_keeps_distinct_exit_code() {
    let file = mixed_goals_file("wrong_parallel.hs");
    let out = run(&["--jobs", "2", file.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "worst verdict dominates the batch exit code; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("goal good: Proved"));
    assert!(stdout.contains("goal wrong: Refuted"));
}

#[test]
fn parallel_gave_up_goal_keeps_exit_code_one() {
    let file = mixed_goals_file("budget_parallel.hs");
    let out = run(&[
        "--jobs",
        "2",
        "--max-nodes",
        "0",
        file.to_str().unwrap(),
        "good",
    ]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn missing_file_is_a_usage_error() {
    let out = run(&["/nonexistent/nope.hs"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn unknown_flag_prints_usage() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

/// Minimal hand parser for one flat-ish NDJSON object: extracts the string
/// or number value of a top-level (or nested, since keys are unique in our
/// schema) key. Good enough to pin the `--format json` schema without a
/// JSON dependency.
fn json_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(&rest[..end])
    }
}

#[test]
fn json_format_emits_one_object_per_goal_plus_batch_summary() {
    let file = quickstart();
    let out = run(&["--format", "json", "--jobs", "2", file.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
    // quickstart.hs declares 3 goals: 3 goal objects + 1 batch object.
    assert_eq!(lines.len(), 4, "unexpected output:\n{stdout}");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not an NDJSON object: {line}"
        );
    }
    let mut goals_seen = Vec::new();
    for line in &lines[..3] {
        assert_eq!(json_value(line, "type"), Some("goal"), "in {line}");
        assert_eq!(json_value(line, "verdict"), Some("proved"), "in {line}");
        let ms: f64 = json_value(line, "time_ms").unwrap().parse().unwrap();
        assert!(ms >= 0.0);
        let nodes: u64 = json_value(line, "nodes_created").unwrap().parse().unwrap();
        assert!(nodes > 0, "in {line}");
        // Size-change engine counters: present and numeric in every goal
        // object (schema pinned).
        for key in [
            "closure_graphs",
            "closure_compositions",
            "composition_memo_hits",
            "graphs_subsumed",
            "interned_graphs",
        ] {
            let v: u64 = json_value(line, key)
                .unwrap_or_else(|| panic!("missing {key} in {line}"))
                .parse()
                .unwrap();
            let _ = v;
        }
        goals_seen.push(json_value(line, "goal").unwrap().to_string());
    }
    // Declaration order, independent of parallel completion order.
    assert_eq!(goals_seen, vec!["addZeroRight", "addSuccRight", "addComm"]);
    let batch = lines[3];
    assert_eq!(json_value(batch, "type"), Some("batch"));
    assert_eq!(json_value(batch, "proved"), Some("3"));
    assert_eq!(json_value(batch, "total"), Some("3"));
    assert_eq!(json_value(batch, "jobs"), Some("2"));
    let elapsed: f64 = json_value(batch, "elapsed_ms").unwrap().parse().unwrap();
    assert!(elapsed > 0.0);
    for key in ["hits", "misses", "entries", "evictions"] {
        let v: u64 = json_value(batch, key).unwrap().parse().unwrap();
        let _ = v; // parses as a number — schema pinned
    }
}

#[test]
fn json_format_carries_granular_verdicts_and_worst_exit_code() {
    let file = mixed_goals_file("json-mixed.hs");
    let out = run(&["--format", "json", file.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "refuted exit code survives json"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3);
    assert_eq!(json_value(lines[0], "verdict"), Some("proved"));
    assert_eq!(json_value(lines[1], "verdict"), Some("refuted"));
    assert_eq!(json_value(lines[2], "type"), Some("batch"));
    assert_eq!(json_value(lines[2], "proved"), Some("1"));
}

#[test]
fn json_format_rejects_dot() {
    let file = quickstart();
    let out = run(&["--format", "json", "--dot", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn stats_include_a_recheck_line_for_proved_goals() {
    let file = quickstart();
    let out = run(&["--no-proof", "--stats", file.to_str().unwrap(), "addComm"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("recheck: nodes="),
        "no recheck line:\n{stdout}"
    );
    assert!(
        stdout.contains("reducts=") && stdout.contains("memo_hits="),
        "recheck counters missing:\n{stdout}"
    );
}

#[test]
fn json_goal_objects_carry_recheck_keys() {
    let file = quickstart();
    let out = run(&["--format", "json", file.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    for line in &lines[..lines.len() - 1] {
        let ms: f64 = json_value(line, "recheck_ms").unwrap().parse().unwrap();
        assert!(ms >= 0.0, "in {line}");
        let reducts: u64 = json_value(line, "recheck_reducts")
            .unwrap()
            .parse()
            .unwrap();
        assert!(reducts > 0, "proved goals derive reducts, in {line}");
        let _: u64 = json_value(line, "recheck_memo_hits")
            .unwrap()
            .parse()
            .unwrap();
    }
    let batch = lines[lines.len() - 1];
    let ms: f64 = json_value(batch, "recheck_ms").unwrap().parse().unwrap();
    assert!(ms >= 0.0);
}

#[test]
fn batch_summary_includes_recheck_time() {
    let file = quickstart();
    let out = run(&["--no-proof", "--jobs", "2", file.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("| recheck="),
        "no recheck in summary:\n{stdout}"
    );
}

/// A fresh directory for emitted certificates, cleaned up from any
/// previous run of the same test.
fn cert_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("cycleq-cli-test-certs")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn emitted_certificates_validate_with_cycleq_check() {
    let file = quickstart();
    let dir = cert_dir("roundtrip");
    let out = run(&[
        "--no-proof",
        "--emit-certs",
        dir.to_str().unwrap(),
        file.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut certs: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path().to_str().unwrap().to_string())
        .collect();
    certs.sort();
    assert_eq!(certs.len(), 3, "one certificate per proved goal");
    let mut args = vec!["check", "--jobs", "2"];
    args.extend(certs.iter().map(String::as_str));
    let out = run(&args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("check: valid 3/3 | jobs=2"),
        "missing summary:\n{stdout}"
    );
    assert!(stdout.contains("valid goal addComm"), "{stdout}");
}

#[test]
fn tampered_certificate_fails_check_with_exit_code_three() {
    let file = quickstart();
    let dir = cert_dir("tampered");
    let out = run(&[
        "--no-proof",
        "--emit-certs",
        dir.to_str().unwrap(),
        file.to_str().unwrap(),
        "addZeroRight",
    ]);
    assert!(out.status.success());
    let cert = dir.join("addZeroRight.cqc");
    let text = std::fs::read_to_string(&cert).unwrap();
    // Tamper with the embedded program source: fingerprint mismatch.
    std::fs::write(&cert, text.replace("add Z y = y", "add Z y = Z")).unwrap();
    let out = run(&["check", cert.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("INVALID"), "{stdout}");
    assert!(stdout.contains("fingerprint mismatch"), "{stdout}");
    assert!(stdout.contains("check: valid 0/1"), "{stdout}");
}

#[test]
fn check_without_files_is_a_usage_error() {
    let out = run(&["check"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn check_reports_unreadable_file_per_file_and_exits_three() {
    let out = run(&["check", "/nonexistent/nope.cqc"]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "unreadable cert = worst verdict"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("INVALID") && stdout.contains("cannot read"),
        "{stdout}"
    );
    assert!(stdout.contains("check: valid 0/1"), "{stdout}");
}

#[test]
fn check_batch_survives_one_unreadable_file_among_good_ones() {
    // One bogus path mixed into a good parallel batch: the good files are
    // still validated (never aborted), and the exit code is the worst
    // verdict.
    let file = quickstart();
    let dir = cert_dir("mixed_batch");
    let out = run(&[
        "--no-proof",
        "--emit-certs",
        dir.to_str().unwrap(),
        file.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let mut certs: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path().to_str().unwrap().to_string())
        .collect();
    certs.sort();
    assert_eq!(certs.len(), 3);
    let mut args = vec!["check", "--jobs", "2"];
    args.extend(certs.iter().map(String::as_str));
    args.push("/nonexistent/nope.cqc");
    let out = run(&args);
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("check: valid 3/4 | jobs=2"),
        "good files must still validate:\n{stdout}"
    );
    assert!(
        stdout.contains("cert /nonexistent/nope.cqc: INVALID"),
        "{stdout}"
    );
}

/// Writes a lint fixture to the temp dir, returning its path.
fn lint_file(name: &str, src: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cycleq-cli-test-lint");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join(name);
    std::fs::write(&file, src).unwrap();
    file
}

#[test]
fn lint_reports_non_exhaustive_function_as_cq001_warning() {
    let file = lint_file(
        "partial.hs",
        "data Nat = Z | S Nat\npred :: Nat -> Nat\npred (S x) = x\ngoal p: pred (S Z) === Z\n",
    );
    let out = run(&["lint", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "warnings alone do not fail");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains(":3: warning[CQ001]:"),
        "missing CQ001 at line 3:\n{stdout}"
    );
    assert!(stdout.contains("`pred Z`"), "no witness:\n{stdout}");
    assert!(
        stdout.contains("lint: files=1 errors=0 warnings=1"),
        "bad summary:\n{stdout}"
    );
    // The same file under --deny-warnings fails with the gave-up code.
    let out = run(&["lint", "--deny-warnings", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn lint_reports_joinable_overlap_as_cq002_warning_with_both_lines() {
    // The paper's fig. 2 `sub` variant: `sub Z y` and `sub x Z` both
    // match `sub Z Z` — but the critical pair converges (both reducts
    // normalize to `Z`), so this is a warning, not an error.
    let file = lint_file(
        "overlap.hs",
        "data Nat = Z | S Nat\nsub :: Nat -> Nat -> Nat\nsub Z y = Z\nsub x Z = x\nsub (S x) (S y) = sub x y\n",
    );
    let out = run(&["lint", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "joinable overlaps are warnings");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains(":3: warning[CQ002]:"),
        "missing CQ002 at line 3:\n{stdout}"
    );
    assert!(
        stdout.contains("lines 3 and 4"),
        "offending positions missing:\n{stdout}"
    );
    assert!(
        stdout.contains("sub Z Z"),
        "critical instance missing:\n{stdout}"
    );
    assert!(
        stdout.contains("normalize to `Z`"),
        "converging normal form missing:\n{stdout}"
    );
    assert!(
        stdout.contains("lint: files=1 errors=0 warnings=1"),
        "{stdout}"
    );
}

#[test]
fn lint_reports_non_joinable_overlap_as_cq009_error() {
    // `f x = Z` vs `f Z = S Z` disagree on `f Z`: the reducts `Z` and
    // `S Z` are distinct normal forms, so no completion is sound.
    let file = lint_file(
        "nonjoinable.hs",
        "data Nat = Z | S Nat\nf :: Nat -> Nat\nf x = Z\nf Z = S Z\n",
    );
    let out = run(&["lint", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "CQ009 is an error");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains(":3: error[CQ009]:"),
        "missing CQ009 at line 3:\n{stdout}"
    );
    assert!(
        stdout.contains("`S Z`") && stdout.contains("never meet"),
        "diverging reducts missing:\n{stdout}"
    );
    // `--fix` has nothing sound to offer and must not mask the error.
    let out = run(&["lint", "--fix", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "--fix does not mask CQ009");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("fixed=0 errors=1"), "{stdout}");
}

#[test]
fn lint_fix_repairs_overlap_in_place_and_is_idempotent() {
    let file = lint_file(
        "fix_overlap.hs",
        "data Nat = Z | S Nat\nsub :: Nat -> Nat -> Nat\nsub Z y = Z\nsub x Z = x\nsub (S x) (S y) = sub x y\ngoal g1: sub x x === Z\n",
    );
    let out = run(&["lint", "--fix", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("lint: files=1 fixed=1 errors=0 warnings=0"),
        "bad summary:\n{stdout}"
    );
    let repaired = std::fs::read_to_string(&file).unwrap();
    assert!(
        repaired.contains("sub (S x) Z = S x") && !repaired.contains("sub x Z = x"),
        "bad repair:\n{repaired}"
    );
    // A second pass finds nothing left to fix and changes nothing.
    let out = run(&["lint", "--fix", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("fixed=0 errors=0 warnings=0"),
        "not idempotent:\n{stdout}"
    );
    assert_eq!(repaired, std::fs::read_to_string(&file).unwrap());
}

#[test]
fn lint_fix_dry_run_prints_diff_and_leaves_file_untouched() {
    let src = "data Nat = Z | S Nat\nsub :: Nat -> Nat -> Nat\nsub Z y = Z\nsub x Z = x\nsub (S x) (S y) = sub x y\n";
    let file = lint_file("fix_dry.hs", src);
    let out = run(&["lint", "--fix", "--dry-run", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("--- a/"), "diff header missing:\n{stdout}");
    assert!(stdout.contains("+++ b/"), "diff header missing:\n{stdout}");
    assert!(
        stdout.contains("-sub x Z = x") && stdout.contains("+sub (S x) Z = S x"),
        "diff body missing:\n{stdout}"
    );
    assert_eq!(
        std::fs::read_to_string(&file).unwrap(),
        src,
        "--dry-run must not write"
    );
    // --dry-run without --fix is a usage error.
    let out = run(&["lint", "--dry-run", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn lint_diagnostics_are_byte_identical_across_job_counts() {
    // Diagnostics are flattened and sorted by (file, line, code) before
    // printing, so scheduling across workers cannot reorder them. Pass
    // the files out of name order to exercise the sort.
    let b = lint_file(
        "par_sort_b.hs",
        "data Nat = Z | S Nat\npred :: Nat -> Nat\npred (S x) = x\ngoal p: pred (S Z) === Z\n",
    );
    let a = lint_file(
        "par_sort_a.hs",
        "data Nat = Z | S Nat\nsub :: Nat -> Nat -> Nat\nsub Z y = Z\nsub x Z = x\nsub (S x) (S y) = sub x y\n",
    );
    let args = [b.to_str().unwrap(), a.to_str().unwrap()];
    let strip_summary = |out: std::process::Output| -> String {
        String::from_utf8(out.stdout)
            .unwrap()
            .lines()
            .filter(|l| !l.starts_with("lint:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let one = strip_summary(run(&["lint", "--jobs", "1", args[0], args[1]]));
    let four = strip_summary(run(&["lint", "--jobs", "4", args[0], args[1]]));
    assert_eq!(one, four, "diagnostics differ across job counts");
    // And the sort puts par_sort_a's findings before par_sort_b's even
    // though the files were passed the other way round.
    let ia = one.find("par_sort_a.hs").expect("a diagnostics present");
    let ib = one.find("par_sort_b.hs").expect("b diagnostics present");
    assert!(ia < ib, "not sorted by file:\n{one}");
}

#[test]
fn lint_reports_non_left_linear_clause_as_cq003_error() {
    let file = lint_file(
        "nonlinear.hs",
        "data Nat = Z | S Nat\neqSame :: Nat -> Nat -> Nat\neqSame x x = x\n",
    );
    let out = run(&["lint", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains(":3: error[CQ003]:"),
        "missing CQ003 at line 3:\n{stdout}"
    );
    assert!(
        stdout.contains("`x`"),
        "repeated variable unnamed:\n{stdout}"
    );
}

#[test]
fn lint_flags_size_change_divergence_as_cq004_before_any_search() {
    let file = lint_file(
        "loop.hs",
        "data Nat = Z | S Nat\nloop :: Nat -> Nat\nloop x = loop x\n",
    );
    let out = run(&["lint", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "CQ004 is a warning");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains(":3: warning[CQ004]:"),
        "missing CQ004 at line 3:\n{stdout}"
    );
    assert!(stdout.contains("`loop`"), "{stdout}");
    let out = run(&["lint", "--deny-warnings", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn lint_quickstart_is_clean_under_deny_warnings() {
    let file = quickstart();
    let out = run(&["lint", "--deny-warnings", file.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("lint: files=1 errors=0 warnings=0"),
        "{stdout}"
    );
}

#[test]
fn lint_json_emits_one_object_per_diagnostic_plus_summary() {
    let file = lint_file(
        "json.hs",
        "data Nat = Z | S Nat\nsub :: Nat -> Nat -> Nat\nsub Z y = Z\nsub x Z = x\nsub (S x) (S y) = sub x y\n",
    );
    let out = run(&["lint", "--format", "json", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "joinable overlap is a warning");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 2, "one diagnostic + summary:\n{stdout}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    let diag = lines[0];
    assert_eq!(json_value(diag, "type"), Some("diagnostic"));
    assert_eq!(json_value(diag, "code"), Some("CQ002"));
    assert_eq!(json_value(diag, "severity"), Some("warning"));
    assert_eq!(json_value(diag, "line"), Some("3"));
    assert!(json_value(diag, "message").unwrap().contains("overlap"));
    assert!(diag.contains("\"notes\":["), "notes array missing: {diag}");
    // The joinable overlap carries its machine-applicable fix inline.
    assert!(diag.contains("\"fix\":{\"title\":"), "fix missing: {diag}");
    assert!(
        diag.contains(
            "\"edits\":[{\"line\":4,\"kind\":\"replace\",\"text\":\"sub (S x) Z = S x\"}]"
        ),
        "fix edits missing: {diag}"
    );
    let summary = lines[1];
    assert_eq!(json_value(summary, "type"), Some("lint"));
    assert_eq!(json_value(summary, "files"), Some("1"));
    assert_eq!(json_value(summary, "errors"), Some("0"));
    assert_eq!(json_value(summary, "warnings"), Some("1"));
}

#[test]
fn lint_runs_many_files_in_parallel_and_aggregates() {
    let clean = lint_file(
        "clean_par.hs",
        "data Nat = Z | S Nat\nadd :: Nat -> Nat -> Nat\nadd Z y = y\nadd (S x) y = S (add x y)\ngoal zr: add x Z === x\n",
    );
    let partial = lint_file(
        "partial_par.hs",
        "data Nat = Z | S Nat\npred :: Nat -> Nat\npred (S x) = x\ngoal p: pred (S Z) === Z\n",
    );
    let out = run(&[
        "lint",
        "--jobs",
        "2",
        clean.to_str().unwrap(),
        partial.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("lint: files=2 errors=0 warnings=1 | jobs=2"),
        "bad summary:\n{stdout}"
    );
    // Diagnostics name the file they came from.
    assert!(stdout.contains("partial_par.hs:3:"), "{stdout}");
    assert!(!stdout.contains("clean_par.hs:"), "{stdout}");
}

#[test]
fn lint_frontend_failure_is_a_cq008_error() {
    let file = lint_file("bad_syntax.hs", "data Nat = Z |\n");
    let out = run(&["lint", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[CQ008]:"), "{stdout}");
}

#[test]
fn lint_without_files_is_a_usage_error() {
    let out = run(&["lint"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn lint_reports_unreadable_file_per_file_and_exits_three() {
    let out = run(&["lint", "/nonexistent/nope.hs"]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "unreadable file = worst verdict"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn lint_batch_survives_one_unreadable_file_among_good_ones() {
    // One bogus path mixed into a good parallel batch: the readable files
    // are still linted (their diagnostics printed as usual) and only the
    // exit code reflects the failure.
    let partial = lint_file(
        "mixed_partial.hs",
        "data Nat = Z | S Nat\npred :: Nat -> Nat\npred (S x) = x\ngoal p: pred (S Z) === Z\n",
    );
    let clean = lint_file(
        "mixed_clean.hs",
        "data Nat = Z | S Nat\nadd :: Nat -> Nat -> Nat\nadd Z y = y\nadd (S x) y = S (add x y)\ngoal zr: add x Z === x\n",
    );
    let out = run(&[
        "lint",
        "--jobs",
        "2",
        clean.to_str().unwrap(),
        "/nonexistent/nope.hs",
        partial.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read `/nonexistent/nope.hs`"));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("mixed_partial.hs:3: warning[CQ001]:"),
        "readable files must still lint:\n{stdout}"
    );
    assert!(
        stdout.contains("lint: files=2 errors=0 warnings=1 | jobs=2"),
        "{stdout}"
    );
}

#[test]
fn prove_prints_diagnostics_to_stderr_without_failing() {
    // A goal over a size-change-suspect program still proves; the CQ004
    // warning surfaces on stderr before the verdict.
    let file = lint_file(
        "prove_warn.hs",
        "data Nat = Z | S Nat\nadd :: Nat -> Nat -> Nat\nadd Z y = y\nadd (S x) y = S (add x y)\nloop :: Nat -> Nat\nloop x = loop x\ngoal zr: add x Z === x\n",
    );
    let out = run(&["--no-proof", file.to_str().unwrap(), "zr"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "diagnostics must not affect the verdict; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("warning[CQ004]:") && stderr.contains("`loop`"),
        "no prove-time diagnostic:\n{stderr}"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("goal zr: Proved"), "{stdout}");
}

#[test]
fn prove_on_clean_programs_prints_no_diagnostics() {
    let file = quickstart();
    let out = run(&["--no-proof", file.to_str().unwrap()]);
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        !stderr.contains("warning[") && !stderr.contains("error["),
        "clean program produced diagnostics:\n{stderr}"
    );
}

#[test]
fn prove_alias_and_trace_out_write_perfetto_loadable_json() {
    // `cycleq prove FILE --trace-out T --metrics-out M` is the documented
    // observability invocation; the trace must be Chrome trace-event JSON
    // with one complete (`ph:"X"`) prove_goal span per goal and per-thread
    // name metadata, and the exact event shape is pinned here.
    let file = quickstart();
    let dir = std::env::temp_dir().join("cycleq-cli-test-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join(format!("t_{}.json", std::process::id()));
    let prom = dir.join(format!("m_{}.prom", std::process::id()));
    let out = run(&[
        "prove",
        file.to_str().unwrap(),
        "--no-proof",
        "--jobs",
        "2",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        prom.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("batch: proved 3/3"), "{stdout}");
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.starts_with("{\"traceEvents\":["), "{text}");
    assert!(text.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
    // Complete-event shape, key order pinned.
    assert!(
        text.contains("\"cat\":\"cycleq\",\"ph\":\"X\",\"ts\":"),
        "no complete events: {text}"
    );
    assert_eq!(
        text.matches("\"name\":\"prove_goal\"").count(),
        3,
        "one complete prove_goal span per goal: {text}"
    );
    for phase in ["round", "expand", "normalize", "check"] {
        assert!(
            text.contains(&format!("\"name\":\"{phase}\"")),
            "phase {phase} missing from trace"
        );
    }
    // Per-process and per-thread track metadata for Perfetto.
    assert!(text.contains(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"cycleq\"}}"
    ));
    assert!(text.contains("\"name\":\"thread_name\""), "{text}");
    assert!(text.contains("worker-0"), "worker track missing: {text}");
    let metrics = std::fs::read_to_string(&prom).unwrap();
    assert!(metrics.contains("# TYPE cycleq_phase_seconds histogram"));
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&prom).ok();
}

fn run_with_env(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cycleq"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

#[test]
fn injected_panic_is_isolated_into_a_per_goal_verdict() {
    // A fault plan panics the first `expand` under addComm; the other two
    // goals must keep their verdicts and the batch must complete with the
    // gave-up exit code, not a crash.
    let file = quickstart();
    let out = run_with_env(
        &["--no-proof", "--jobs", "2", file.to_str().unwrap()],
        &[("CYCLEQ_FAULTS", "panic@expand/addComm#1")],
    );
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("goal addComm: Panicked"), "{stdout}");
    assert!(stdout.contains("goal addZeroRight: Proved"), "{stdout}");
    assert!(stdout.contains("goal addSuccRight: Proved"), "{stdout}");
    assert!(
        stdout.contains("batch: proved 2/3 | jobs=2 | panicked=1"),
        "{stdout}"
    );
}

#[test]
fn retry_recovers_an_injected_panic_on_the_second_attempt() {
    // With `--retry 1` the panicked first attempt is re-run; the fault
    // rule's `#1` occurrence is spent, so the retry proves the goal and the
    // NDJSON records two attempts.
    let file = quickstart();
    let out = run_with_env(
        &["--format", "json", "--retry", "1", file.to_str().unwrap()],
        &[("CYCLEQ_FAULTS", "panic@expand/addComm#1")],
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let comm = stdout
        .lines()
        .find(|l| l.contains("\"goal\":\"addComm\""))
        .unwrap_or_else(|| panic!("no addComm object in:\n{stdout}"));
    assert_eq!(json_value(comm, "verdict"), Some("proved"), "{comm}");
    assert_eq!(json_value(comm, "attempts"), Some("2"), "{comm}");
    let batch = stdout.lines().last().unwrap();
    assert_eq!(json_value(batch, "panicked"), Some("0"), "{batch}");
}

#[test]
fn malformed_fault_plan_is_a_usage_error() {
    let file = quickstart();
    let out = run_with_env(
        &[file.to_str().unwrap()],
        &[("CYCLEQ_FAULTS", "detonate@expand")],
    );
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("CYCLEQ_FAULTS"));
}

#[test]
fn batch_mode_streams_progress_lines_to_stderr() {
    let file = quickstart();
    let out = run(&["--no-proof", "--jobs", "2", file.to_str().unwrap()]);
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    for goal in ["addZeroRight", "addSuccRight", "addComm"] {
        assert!(
            stderr.contains(&format!("goal {goal}: proved")),
            "no progress line for {goal} in stderr:\n{stderr}"
        );
    }
    // Completion counter prefixes: [1] [2] [3] in some order-independent way.
    assert!(stderr.contains("[1]") && stderr.contains("[3]"));
}
