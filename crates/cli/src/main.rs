//! The `cycleq` command-line prover.
//!
//! Reads a program in the Haskell-like CycleQ input language, attempts to
//! prove the requested goals (all declared goals by default) and prints
//! each verdict with the rendered proof tree and search statistics.
//!
//! Exit status: 0 when every attempted goal is proved; 3 when any goal is
//! *refuted* (a ground counterexample exists — distinct so scripts can tell
//! "false" from "unknown"); 1 when the search gives up on any goal
//! (exhausted, timeout, node budget, or a failed hint) and none is refuted;
//! 2 on usage or load errors.

use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cycleq::{
    analyze_source, analyze_with_fixes, available_parallelism, check_certificate, unified_diff,
    BatchReport, BatchScheduler, Diagnostic, Engine, Outcome, ProveEvent, RetryPolicy,
    SearchConfig, SearchStats, Session, Verdict,
};

/// Some goal was not proved, but none was refuted (exhausted / timeout /
/// node budget / failed hint).
const EXIT_GAVE_UP: u8 = 1;
/// Usage or load error.
const EXIT_USAGE: u8 = 2;
/// Some goal was refuted: a ground counterexample exists.
const EXIT_REFUTED: u8 = 3;

const USAGE: &str = "\
cycleq — cyclic equational prover (CycleQ, PLDI 2022)

USAGE:
    cycleq [prove] [OPTIONS] <FILE> [GOAL]...
    cycleq check [--jobs N] <FILE>...
    cycleq lint [--format json] [--deny-warnings] [--fix [--dry-run]] [--jobs N] <FILE>...

ARGS:
    <FILE>      Program in the CycleQ input language (data decls,
                function equations, `goal name: lhs === rhs`)
    [GOAL]...   Goals to prove; defaults to every declared goal

SUBCOMMANDS:
    prove       Explicit alias for the default mode: `cycleq prove FILE`
                and `cycleq FILE` are equivalent
    check       Re-validate exported proof certificates. Each file is
                parsed, its embedded program fingerprint-checked and
                re-elaborated, and the proof re-run through the
                independent checker; files are validated in parallel
                with `--jobs`. Exits 0 when every certificate is valid,
                3 when any is invalid or unreadable (reported per file,
                never aborting the rest), 2 on usage errors.
    lint        Statically analyse programs without proving: pattern
                coverage (CQ001), clause overlaps classified by critical-
                pair joinability (joinable CQ002 warnings, non-joinable
                CQ009 errors), left-linearity (CQ003), the size-change
                termination pre-screen (CQ004) and a dead-code sweep
                (CQ005-CQ007), each diagnostic with a stable code and
                source line. Some diagnostics carry a machine-applicable
                fix: `--fix` applies them in place to a fixed point
                (`--dry-run` prints unified diffs instead of writing).
                Files lint in parallel with `--jobs`; `--format json`
                emits one NDJSON object per diagnostic (including its
                fix, if any) plus a summary. Exits 0 when clean, 1 when
                only warnings were found and `--deny-warnings` is set,
                3 when any file has errors or is unreadable (reported
                per file, never aborting the rest) — `--fix` does not
                mask unfixable errors — and 2 on usage errors.

OPTIONS:
    --dot               Render proofs as Graphviz DOT instead of text
    --no-proof          Print verdicts only, without proof trees
    --stats             Print search statistics for each goal
    --hints g1,g2       Prove the named goals first and provide them as
                        (Subst) lemmas for every requested goal
    --jobs N            Prove goals in parallel on N worker threads
                        (0 = one per hardware thread; default 1). Output
                        stays in declaration order; live per-goal progress
                        lines stream to stderr as goals finish, and a batch
                        summary line with shared-cache statistics is
                        printed at the end
    --format FMT        Output format: `text` (default) or `json` — one
                        machine-readable JSON object per goal plus a batch
                        summary object, one per line, on stdout
    --validate          Print standing-assumption warnings (pattern
                        completeness, orthogonality) before proving
    --emit-certs DIR    Export a self-contained certificate for every
                        proved goal to DIR/<goal>.cqc, re-validatable
                        later with `cycleq check`
    --max-nodes N       Cap proof nodes created during search
    --max-depth N       Cap DFS depth (rule applications per branch)
    --timeout-ms N      Wall-clock budget per goal; 0 means unbounded
    --retry N           Re-run each goal that times out, exhausts its node
                        budget, or panics up to N more times, escalating
                        its budgets per attempt (default 0: one attempt)
    --retry-escalation F
                        Budget growth factor per retry (default 2.0):
                        attempt k runs with limits scaled by F^(k-1)
    --trace-out FILE    Record hierarchical spans (prove_goal > round >
                        expand / normalize / closure_update / check) and
                        write them as Chrome trace-event JSON — loadable
                        in Perfetto or chrome://tracing, one track per
                        worker thread
    --metrics-out FILE  Write the process-wide metrics registry (goal,
                        search, cache, size-change, batch and phase-time
                        families) in Prometheus text exposition format
    -h, --help          Print this help
    -V, --version       Print version

EXIT STATUS:
    0   every attempted goal was proved
    1   the search gave up on a goal (exhausted, timeout, node budget,
        a hint failed, or the search panicked and was isolated) and no
        goal was refuted
    2   usage or load error
    3   a goal was refuted (a ground counterexample exists)

ENVIRONMENT:
    CYCLEQ_FAULTS       Deterministic fault-injection plan, e.g.
                        `panic@expand/addComm#1,delay:50ms@normalize`
                        (rules `ACTION@SITE[/SCOPE][#N|#every|%P]`, comma-
                        separated; actions panic, delay:<N>ms, cancel).
                        Injected panics are isolated into per-goal
                        `panicked` verdicts — for testing fault tolerance
    CYCLEQ_FAULT_SEED   Seed for probabilistic (%P) fault rules
";

/// Output format for verdicts and summaries.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Options {
    file: String,
    goals: Vec<String>,
    hints: Vec<String>,
    dot: bool,
    proof: bool,
    stats: bool,
    validate: bool,
    emit_certs: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    format: Format,
    /// `Some(n)` when `--jobs` was passed: the batch path (with its summary
    /// line and live progress) runs even for `--jobs 1`, exactly as the
    /// help text promises.
    jobs: Option<usize>,
    config: SearchConfig,
    /// Retries per goal (`--retry N`): total attempts is `N + 1`.
    retries: u32,
    /// Budget growth factor per retry (`--retry-escalation F`).
    retry_escalation: f64,
}

/// Parses the command line; `Ok(None)` means help/version was printed and
/// the process should exit successfully. `Err` carries a usage message.
fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        file: String::new(),
        goals: Vec::new(),
        hints: Vec::new(),
        dot: false,
        proof: true,
        stats: false,
        validate: false,
        emit_certs: None,
        trace_out: None,
        metrics_out: None,
        format: Format::Text,
        jobs: None,
        config: SearchConfig::default(),
        retries: 0,
        retry_escalation: 2.0,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut numeric = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))?
                .parse()
                .map_err(|_| format!("{name} requires an integer value"))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            "-V" | "--version" => {
                println!("cycleq {}", env!("CARGO_PKG_VERSION"));
                return Ok(None);
            }
            "--dot" => opts.dot = true,
            "--no-proof" => opts.proof = false,
            "--stats" => opts.stats = true,
            "--validate" => opts.validate = true,
            "--emit-certs" => {
                let dir = it.next().ok_or("--emit-certs requires a value")?;
                opts.emit_certs = Some(dir.clone());
            }
            "--trace-out" => {
                let path = it.next().ok_or("--trace-out requires a value")?;
                opts.trace_out = Some(path.clone());
            }
            "--metrics-out" => {
                let path = it.next().ok_or("--metrics-out requires a value")?;
                opts.metrics_out = Some(path.clone());
            }
            "--hints" => {
                let list = it.next().ok_or("--hints requires a value")?;
                opts.hints.extend(list.split(',').map(str::to_string));
            }
            "--jobs" => opts.jobs = Some(numeric("--jobs")?),
            "--format" => {
                let fmt = it.next().ok_or("--format requires a value")?;
                opts.format = match fmt.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                };
            }
            "--retry" => {
                let n = numeric("--retry")?;
                opts.retries = u32::try_from(n).map_err(|_| "--retry value too large")?;
            }
            "--retry-escalation" => {
                let v = it.next().ok_or("--retry-escalation requires a value")?;
                let f: f64 = v
                    .parse()
                    .map_err(|_| "--retry-escalation requires a number")?;
                if !f.is_finite() || f < 1.0 {
                    return Err("--retry-escalation must be a finite factor >= 1.0".to_string());
                }
                opts.retry_escalation = f;
            }
            "--max-nodes" => opts.config.max_nodes = numeric("--max-nodes")?,
            "--max-depth" => opts.config.max_depth = numeric("--max-depth")?,
            "--timeout-ms" => {
                let ms = numeric("--timeout-ms")?;
                opts.config.timeout = (ms > 0).then(|| Duration::from_millis(ms as u64));
            }
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(format!("unknown option `{flag}`"));
            }
            _ => positional.push(arg.clone()),
        }
    }
    if opts.format == Format::Json && opts.dot {
        return Err("--format json and --dot are mutually exclusive".to_string());
    }
    let mut positional = positional.into_iter();
    opts.file = positional.next().ok_or("missing <FILE> argument")?;
    opts.goals = positional.collect();
    Ok(Some(opts))
}

/// Escapes a string for a JSON string literal (RFC 8259 §7).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The granular verdict word for `--format json`.
fn verdict_word(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Proved { .. } => "proved",
        Outcome::Refuted => "refuted",
        Outcome::Exhausted => "exhausted",
        Outcome::Timeout => "timeout",
        Outcome::NodeBudget => "node-budget",
        Outcome::Cancelled => "cancelled",
        Outcome::HintFailed { .. } => "hint-failed",
        Outcome::Panicked { .. } => "panicked",
    }
}

/// The NDJSON `stats` object, generated from [`SearchStats::entries`] — the
/// same single source that feeds the `--stats` line and the metrics
/// registry, so the three surfaces cannot drift (schema pinned by
/// `tests/stats_schema.rs`).
fn json_stats(s: &SearchStats) -> String {
    let fields: Vec<String> = s
        .entries()
        .into_iter()
        .map(|(key, value)| format!("\"{key}\":{value}"))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// One NDJSON object per goal: verdict, attempts, stats, recheck counters,
/// elapsed. The `recheck_*` keys are always present; they are zero when
/// re-checking did not run (unproved goals, or rechecking disabled).
fn print_goal_json(verdict: &Verdict, time: Duration) {
    let recheck = verdict.recheck.unwrap_or_default();
    println!(
        "{{\"type\":\"goal\",\"goal\":\"{}\",\"verdict\":\"{}\",\"attempts\":{},\
         \"time_ms\":{:.3},\
         \"recheck_ms\":{:.3},\"recheck_reducts\":{},\"recheck_memo_hits\":{},\"stats\":{}}}",
        json_escape(&verdict.goal),
        verdict_word(&verdict.result.outcome),
        verdict.attempts,
        time.as_secs_f64() * 1000.0,
        recheck.elapsed.as_secs_f64() * 1000.0,
        recheck.reducts_checked,
        recheck.memo_hits,
        json_stats(&verdict.result.stats),
    );
}

/// The NDJSON batch summary object.
fn print_batch_json(report: &BatchReport) {
    println!(
        "{{\"type\":\"batch\",\"proved\":{},\"total\":{},\"jobs\":{},\"panicked\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"evictions\":{}}},\
         \"recheck_ms\":{:.3},\"elapsed_ms\":{:.3}}}",
        report.proved(),
        report.goals.len(),
        report.jobs,
        report.panicked(),
        report.cache.hits,
        report.cache.misses,
        report.cache.entries,
        report.cache.evictions,
        report.recheck.as_secs_f64() * 1000.0,
        report.stats.elapsed.as_secs_f64() * 1000.0,
    );
}

fn print_verdict(opts: &Options, verdict: &Verdict) {
    let status = if verdict.is_proved() {
        "Proved"
    } else if verdict.is_refuted() {
        "Refuted"
    } else if matches!(verdict.result.outcome, Outcome::Panicked { .. }) {
        "Panicked"
    } else {
        "GaveUp"
    };
    // In DOT mode only graphs go to stdout, so the output pipes straight
    // into `dot`; verdict and stats lines move to stderr.
    let annotate = |line: &str| {
        if opts.dot {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    annotate(&format!("goal {}: {status}", verdict.goal));
    if opts.proof && verdict.is_proved() {
        let rendered = if opts.dot {
            verdict.render_dot()
        } else {
            verdict.render_proof()
        };
        match rendered {
            Ok(text) => println!("{text}"),
            Err(e) => annotate(&format!("  (proof rendering failed: {e})")),
        }
    }
    if opts.stats {
        // Generated from the same `entries()` list as the NDJSON stats
        // object and the metrics registry (see `json_stats`).
        let s = &verdict.result.stats;
        let fields: Vec<String> = s
            .entries()
            .into_iter()
            .map(|(key, value)| format!("{key}={value}"))
            .collect();
        annotate(&format!(
            "  stats: {} elapsed={:?}",
            fields.join(" "),
            s.elapsed
        ));
        if let Some(r) = &verdict.recheck {
            annotate(&format!(
                "  recheck: nodes={} reducts={} memo_hits={} elapsed={:?}",
                r.nodes, r.reducts_checked, r.memo_hits, r.elapsed,
            ));
        }
    }
}

/// Aggregate verdict over every attempted goal, for the exit status.
#[derive(Copy, Clone, Default)]
struct Tally {
    refuted: bool,
    gave_up: bool,
}

impl Tally {
    fn exit_code(self) -> ExitCode {
        if self.refuted {
            ExitCode::from(EXIT_REFUTED)
        } else if self.gave_up {
            ExitCode::from(EXIT_GAVE_UP)
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// Proves the requested goals; `Err` carries a load/prove error message.
fn run(opts: &Options) -> Result<Tally, String> {
    let source = std::fs::read_to_string(&opts.file)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.file))?;
    let mut builder = Engine::builder()
        .config(opts.config.clone())
        .jobs(opts.jobs.unwrap_or(1))
        .retry(
            RetryPolicy::new(opts.retries.saturating_add(1)).with_escalation(opts.retry_escalation),
        );
    if opts.jobs.is_some() {
        // Live per-goal progress to stderr, streamed in completion order
        // while stdout keeps the declaration-ordered verdicts.
        let done = Arc::new(AtomicUsize::new(0));
        builder = builder.on_event(move |ev: &ProveEvent| {
            if let ProveEvent::GoalFinished {
                goal, status, time, ..
            } = ev
            {
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "[{n}] goal {goal}: {status} ({:.1}ms)",
                    time.as_secs_f64() * 1000.0
                );
            }
        });
    }
    let engine = builder.build();
    let session = engine
        .load(&source)
        .map_err(|e| format!("{}: {e}", opts.file))?;
    // Static-analysis findings go to stderr before any proving, without
    // affecting the verdicts or the exit code: an overlapping or
    // non-terminating program is still *attempted* (matching the paper's
    // tool), just no longer silently.
    for d in session.analyze() {
        match d.line {
            Some(line) => eprintln!("{}:{line}: {d}", opts.file),
            None => eprintln!("{}: {d}", opts.file),
        }
    }
    if opts.validate {
        for warning in session.validate() {
            eprintln!("warning: {warning}");
        }
    }
    let goals: Vec<String> = if opts.goals.is_empty() {
        session.goal_names().iter().map(|g| g.to_string()).collect()
    } else {
        opts.goals.clone()
    };
    if goals.is_empty() {
        return Err(format!("`{}` declares no goals", opts.file));
    }
    let hints: Vec<&str> = opts.hints.iter().map(String::as_str).collect();
    if let Some(dir) = &opts.emit_certs {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create `{dir}`: {e}"))?;
    }
    // Span recording and metric export are opt-in: the atomic stays off —
    // and the span! sites stay near-free — unless one of the flags asks.
    if opts.trace_out.is_some() || opts.metrics_out.is_some() {
        cycleq::trace::set_enabled(true);
    }
    if opts.trace_out.is_some() {
        cycleq::trace::start_collect();
    }
    // JSON output always goes through the batch path: one object per goal
    // plus the summary object, whatever the worker count.
    let tally = if opts.jobs.is_some() || opts.format == Format::Json {
        run_batch(opts, &session, &goals, &hints)?
    } else {
        let mut tally = Tally::default();
        for goal in &goals {
            let verdict = session
                .prove_with_hints(goal, &hints)
                .map_err(|e| e.to_string())?;
            if verdict.is_refuted() {
                tally.refuted = true;
            } else if !verdict.is_proved() {
                // Exhausted, Timeout, NodeBudget, Cancelled, HintFailed
                // or Panicked (isolated by the fault boundary).
                tally.gave_up = true;
            }
            print_verdict(opts, &verdict);
            if let Some(dir) = &opts.emit_certs {
                emit_certificate(dir, &session, &verdict)?;
            }
        }
        tally
    };
    write_observability(opts)?;
    Ok(tally)
}

/// Writes the `--trace-out` (Chrome trace-event JSON) and `--metrics-out`
/// (Prometheus text) artifacts, when requested.
fn write_observability(opts: &Options) -> Result<(), String> {
    if let Some(path) = &opts.trace_out {
        let trace = cycleq::trace::finish_collect();
        std::fs::write(path, trace.to_chrome_json())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, cycleq::trace::metrics().snapshot().to_prometheus())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    Ok(())
}

/// Writes the verdict's certificate to `<dir>/<goal>.cqc`; unproved goals
/// have no certificate and are skipped.
fn emit_certificate(dir: &str, session: &Session, verdict: &Verdict) -> Result<(), String> {
    if !verdict.is_proved() {
        return Ok(());
    }
    let text = session
        .export_certificate(verdict)
        .map_err(|e| e.to_string())?;
    let safe: String = verdict
        .goal
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let path = std::path::Path::new(dir).join(format!("{safe}.cqc"));
    std::fs::write(&path, text).map_err(|e| format!("cannot write `{}`: {e}", path.display()))
}

/// Batch path: proves the goals across the session's workers, printing
/// verdicts in declaration order plus a summary. The exit code is the
/// worst verdict, exactly as in the sequential path.
fn run_batch(
    opts: &Options,
    session: &Session,
    goals: &[String],
    hints: &[&str],
) -> Result<Tally, String> {
    let goal_refs: Vec<&str> = goals.iter().map(String::as_str).collect();
    let report = session
        .prove_many(&goal_refs, hints)
        .map_err(|e| e.to_string())?;
    let mut tally = Tally::default();
    for g in &report.goals {
        match &g.outcome {
            Ok(verdict) => {
                if verdict.is_refuted() {
                    tally.refuted = true;
                } else if !verdict.is_proved() {
                    tally.gave_up = true;
                }
                match opts.format {
                    Format::Json => print_goal_json(verdict, g.time),
                    Format::Text => print_verdict(opts, verdict),
                }
                if let Some(dir) = &opts.emit_certs {
                    emit_certificate(dir, session, verdict)?;
                }
            }
            Err(e) => return Err(format!("goal `{}`: {e}", g.goal)),
        }
    }
    match opts.format {
        Format::Json => print_batch_json(&report),
        Format::Text => {
            let summary = format!(
                "batch: proved {}/{} | jobs={} | panicked={} | \
                 cache hits={} misses={} entries={} | \
                 elapsed={:?} | recheck={:?}",
                report.proved(),
                report.goals.len(),
                report.jobs,
                report.panicked(),
                report.cache.hits,
                report.cache.misses,
                report.cache.entries,
                report.stats.elapsed,
                report.recheck,
            );
            if opts.dot {
                eprintln!("{summary}");
            } else {
                println!("{summary}");
            }
        }
    }
    Ok(tally)
}

/// Renders one diagnostic as `FILE:LINE: severity[CODE]: message` plus
/// indented notes.
fn print_diagnostic_text(file: &str, d: &Diagnostic) {
    match d.line {
        Some(line) => println!("{file}:{line}: {d}"),
        None => println!("{file}: {d}"),
    }
    for note in &d.notes {
        println!("  note: {note}");
    }
}

/// One NDJSON object per diagnostic. `fix` is `null` or
/// `{"title": …, "edits": [{"line": …, "kind": …, "text": …}, …]}`.
fn print_diagnostic_json(file: &str, d: &Diagnostic) {
    let line = d.line.map_or_else(|| "null".to_string(), |l| l.to_string());
    let notes: Vec<String> = d
        .notes
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect();
    let fix = match &d.fix {
        None => "null".to_string(),
        Some(f) => {
            let edits: Vec<String> = f
                .edits
                .iter()
                .map(|e| {
                    format!(
                        "{{\"line\":{},\"kind\":\"{}\",\"text\":\"{}\"}}",
                        e.line,
                        e.kind.as_str(),
                        json_escape(&e.text),
                    )
                })
                .collect();
            format!(
                "{{\"title\":\"{}\",\"edits\":[{}]}}",
                json_escape(&f.title),
                edits.join(","),
            )
        }
    };
    println!(
        "{{\"type\":\"diagnostic\",\"file\":\"{}\",\"line\":{line},\"code\":\"{}\",\
         \"severity\":\"{}\",\"message\":\"{}\",\"notes\":[{}],\"fix\":{fix}}}",
        json_escape(file),
        d.code,
        d.severity,
        json_escape(&d.message),
        notes.join(","),
    );
}

/// `cycleq lint [OPTIONS] <FILES>...`: static analysis without proving.
/// Prints diagnostics per file plus a greppable `lint:` summary.
fn run_lint(args: &[String]) -> ExitCode {
    let mut files = Vec::new();
    let mut jobs = 1usize;
    let mut deny_warnings = false;
    let mut fix = false;
    let mut dry_run = false;
    let mut format = Format::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--deny-warnings" => deny_warnings = true,
            "--fix" => fix = true,
            "--dry-run" => dry_run = true,
            "--jobs" => {
                let n = it.next().and_then(|v| v.parse::<usize>().ok());
                let Some(n) = n else {
                    eprintln!("error: --jobs requires an integer value\n\n{USAGE}");
                    return ExitCode::from(EXIT_USAGE);
                };
                jobs = if n == 0 { available_parallelism() } else { n };
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        let other = other.unwrap_or("<missing>");
                        eprintln!("error: unknown format `{other}` (text|json)\n\n{USAGE}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                };
            }
            flag if flag.starts_with('-') && flag.len() > 1 => {
                eprintln!("error: unknown option `{flag}`\n\n{USAGE}");
                return ExitCode::from(EXIT_USAGE);
            }
            _ => files.push(arg.clone()),
        }
    }
    if dry_run && !fix {
        eprintln!("error: --dry-run requires --fix\n\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    if files.is_empty() {
        eprintln!("error: cycleq lint requires at least one program file\n\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    // An unreadable file gets a per-file error line and the error exit
    // code, but never aborts the rest of the batch: the readable files are
    // still linted (and fixed) normally.
    let mut io_errors = 0usize;
    let mut readable = Vec::with_capacity(files.len());
    let mut texts = Vec::with_capacity(files.len());
    for f in files {
        match std::fs::read_to_string(&f) {
            Ok(text) => {
                readable.push(f);
                texts.push(text);
            }
            Err(e) => {
                eprintln!("error: cannot read `{f}`: {e}");
                io_errors += 1;
            }
        }
    }
    let files = readable;
    // Per-file timing flows through the span machinery into the process
    // registry (`cycleq_phase_seconds{phase="lint_file"}`); the summary
    // below reads it back from there rather than keeping bespoke timers.
    cycleq::trace::set_enabled(true);
    let before = cycleq::trace::metrics().snapshot();
    let start = std::time::Instant::now();
    let tasks: Vec<_> = texts
        .iter()
        .map(|text| {
            move |_worker: usize| {
                let _span = cycleq::trace::span!("lint_file");
                if fix {
                    let out = analyze_with_fixes(text);
                    (out.diagnostics, out.applied, Some(out.source))
                } else {
                    (analyze_source(text), 0, None)
                }
            }
        })
        .collect();
    let results = BatchScheduler::new(jobs).run(tasks);
    let (file_total_ms, file_max_ms) = phase_ms(&before, "lint_file");
    // Write repaired sources back (or collect diffs), then report.
    let mut fixed = 0usize;
    let mut diffs = String::new();
    for ((file, text), (_, applied, repaired)) in files.iter().zip(&texts).zip(&results) {
        fixed += applied;
        let Some(repaired) = repaired else { continue };
        if repaired == text {
            continue;
        }
        if dry_run {
            diffs.push_str(&unified_diff(text, repaired, file));
        } else if let Err(e) = std::fs::write(file, repaired) {
            eprintln!("error: cannot write `{file}`: {e}");
            io_errors += 1;
        }
    }
    // Flatten and sort all diagnostics by (file, line, code) so output is
    // stable regardless of how files were scheduled across workers.
    let mut flat: Vec<(&String, &Diagnostic)> = Vec::new();
    for (file, (diagnostics, _, _)) in files.iter().zip(&results) {
        for d in diagnostics {
            flat.push((file, d));
        }
    }
    flat.sort_by(|(fa, da), (fb, db)| {
        (fa.as_str(), da.line.unwrap_or(u32::MAX), da.code).cmp(&(
            fb.as_str(),
            db.line.unwrap_or(u32::MAX),
            db.code,
        ))
    });
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for (file, d) in &flat {
        if d.is_error() {
            errors += 1;
        } else {
            warnings += 1;
        }
        match format {
            Format::Text => print_diagnostic_text(file, d),
            Format::Json => print_diagnostic_json(file, d),
        }
    }
    if dry_run && !diffs.is_empty() {
        print!("{diffs}");
    }
    let fixed_field = if fix {
        format!("fixed={fixed} ")
    } else {
        String::new()
    };
    match format {
        Format::Text => println!(
            "lint: files={} {fixed_field}errors={errors} warnings={warnings} | jobs={jobs} | \
             file total={file_total_ms:.1}ms max={file_max_ms:.1}ms | elapsed={:?}",
            files.len(),
            start.elapsed(),
        ),
        Format::Json => println!(
            "{{\"type\":\"lint\",\"files\":{},{}\"errors\":{errors},\"warnings\":{warnings},\
             \"jobs\":{jobs},\"file_total_ms\":{file_total_ms:.3},\
             \"file_max_ms\":{file_max_ms:.3},\"elapsed_ms\":{:.3}}}",
            files.len(),
            if fix {
                format!("\"fixed\":{fixed},")
            } else {
                String::new()
            },
            start.elapsed().as_secs_f64() * 1000.0,
        ),
    }
    if errors > 0 || io_errors > 0 {
        ExitCode::from(EXIT_REFUTED)
    } else if deny_warnings && warnings > 0 {
        ExitCode::from(EXIT_GAVE_UP)
    } else {
        ExitCode::SUCCESS
    }
}

/// Total and maximum per-file time of a span phase, in milliseconds, read
/// back from the registry delta since `before`.
fn phase_ms(before: &cycleq::MetricsSnapshot, phase: &str) -> (f64, f64) {
    let after = cycleq::trace::metrics().snapshot();
    let delta = after.delta(before);
    let profile = delta.profile();
    profile
        .phase(phase)
        .map(|p| (p.total_seconds * 1000.0, p.max_seconds * 1000.0))
        .unwrap_or((0.0, 0.0))
}

/// `cycleq check <FILES>... [--jobs N]`: re-validates certificate files in
/// parallel. Prints one line per file plus a greppable `check:` summary.
fn run_check(args: &[String]) -> ExitCode {
    let mut files = Vec::new();
    let mut jobs = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--jobs" => {
                let n = it.next().and_then(|v| v.parse::<usize>().ok());
                let Some(n) = n else {
                    eprintln!("error: --jobs requires an integer value\n\n{USAGE}");
                    return ExitCode::from(EXIT_USAGE);
                };
                jobs = if n == 0 { available_parallelism() } else { n };
            }
            flag if flag.starts_with('-') && flag.len() > 1 => {
                eprintln!("error: unknown option `{flag}`\n\n{USAGE}");
                return ExitCode::from(EXIT_USAGE);
            }
            _ => files.push(arg.clone()),
        }
    }
    if files.is_empty() {
        eprintln!("error: cycleq check requires at least one certificate file\n\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    // An unreadable certificate is reported per-file as invalid (so the
    // exit code reflects it) and never aborts the rest of the batch.
    let texts: Vec<Result<String, String>> = files
        .iter()
        .map(|f| std::fs::read_to_string(f).map_err(|e| format!("cannot read: {e}")))
        .collect();
    // As in `run_lint`: per-file timing comes back out of the registry's
    // `cycleq_phase_seconds{phase="check_file"}` histogram.
    cycleq::trace::set_enabled(true);
    let before = cycleq::trace::metrics().snapshot();
    let start = std::time::Instant::now();
    let tasks: Vec<_> = texts
        .iter()
        .map(|text| {
            move |_worker: usize| match text {
                Ok(text) => {
                    let _span = cycleq::trace::span!("check_file");
                    check_certificate(text).map_err(|e| e.to_string())
                }
                Err(e) => Err(e.clone()),
            }
        })
        .collect();
    let results = BatchScheduler::new(jobs).run(tasks);
    let (file_total_ms, file_max_ms) = phase_ms(&before, "check_file");
    let mut valid = 0usize;
    for (file, result) in files.iter().zip(&results) {
        match result {
            Ok(checked) => {
                valid += 1;
                println!(
                    "cert {file}: valid goal {} ({} nodes, {} reducts, {} memo hits, {:?})",
                    checked.goal,
                    checked.report.nodes,
                    checked.report.reducts_checked,
                    checked.report.memo_hits,
                    checked.report.elapsed,
                );
            }
            Err(e) => println!("cert {file}: INVALID ({e})"),
        }
    }
    println!(
        "check: valid {}/{} | jobs={} | file total={file_total_ms:.1}ms \
         max={file_max_ms:.1}ms | elapsed={:?}",
        valid,
        files.len(),
        jobs,
        start.elapsed(),
    );
    if valid == files.len() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_REFUTED)
    }
}

fn main() -> ExitCode {
    // Deterministic fault injection, for testing fault tolerance: a plan in
    // `CYCLEQ_FAULTS` arms panic/delay/cancel rules at the span sites before
    // any work starts. Absent the variable this is a no-op and every span
    // site stays on its fast path.
    match cycleq::trace::FaultPlan::from_env() {
        Ok(Some(plan)) => cycleq::trace::install_fault_plan(plan),
        Ok(None) => {}
        Err(msg) => {
            eprintln!("error: invalid CYCLEQ_FAULTS: {msg}\n\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check") {
        return run_check(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("lint") {
        return run_lint(&args[1..]);
    }
    // `cycleq prove FILE` spells out the default mode like the other
    // subcommands do; both forms take the same options.
    let args: &[String] = if args.first().map(String::as_str) == Some("prove") {
        &args[1..]
    } else {
        &args
    };
    let opts = match parse_args(args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    match run(&opts) {
        Ok(tally) => tally.exit_code(),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}
