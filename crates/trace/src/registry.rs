//! Process-wide metrics registry: counters, gauges, log₂ latency histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones whose updates are lock-free atomic operations; the registry lock
//! is only taken at registration and snapshot time. Instrumented crates
//! register their families once (typically from a `OnceLock` in the
//! constructor of the instrumented structure) and update handles on the hot
//! path.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Bucket boundaries: `2^8 ns` (256 ns) doubling up to `2^34 ns` (~17.2 s),
/// plus `+Inf`. 27 finite buckets cover everything from a warm memo hit to a
/// timed-out goal.
const FIRST_EXP: u32 = 8;
const LAST_EXP: u32 = 34;
const FINITE_BUCKETS: usize = (LAST_EXP - FIRST_EXP + 1) as usize;
const NUM_BUCKETS: usize = FINITE_BUCKETS + 1;

/// Returns the process-wide metrics registry.
///
/// ```
/// let g = cycleq_trace::metrics().gauge("doc_queue_depth", "Tasks queued.");
/// g.set(7);
/// g.sub(2);
/// assert_eq!(cycleq_trace::metrics().snapshot().value("doc_queue_depth"), Some(5));
/// ```
pub fn metrics() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// The kind of a metric family, matching the Prometheus `# TYPE` line.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time level (queue depth, cache entries, ...).
    Gauge,
    /// log₂-bucketed latency distribution in seconds.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A point-in-time gauge handle (non-negative).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        // fetch_update never fails with a `Some` closure result.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

struct HistogramInner {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum_ns: AtomicU64,
    count: AtomicU64,
    max_ns: AtomicU64,
}

impl HistogramInner {
    fn new() -> HistogramInner {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed latency histogram handle (seconds, stored as ns).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, d: Duration) {
        self.observe_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one observation given in nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let idx = bucket_index(ns);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// Maps a nanosecond observation to its bucket (last bucket is `+Inf`).
fn bucket_index(ns: u64) -> usize {
    if ns <= (1 << FIRST_EXP) {
        return 0;
    }
    // Ceil of log2(ns): number of bits needed to represent ns - 1.
    let ceil_log2 = 64 - (ns - 1).leading_zeros();
    usize::try_from(ceil_log2 - FIRST_EXP)
        .unwrap_or(NUM_BUCKETS - 1)
        .min(NUM_BUCKETS - 1)
}

/// Upper bound of finite bucket `idx`, in nanoseconds.
fn bucket_bound_ns(idx: usize) -> u64 {
    1u64 << (FIRST_EXP + u32::try_from(idx).unwrap_or(0))
}

#[derive(Clone, Debug)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Keyed by the label string rendered inside `{...}` ("" for none).
    samples: BTreeMap<String, Handle>,
}

/// The registry of metric families. Obtain the process-wide instance via
/// [`metrics`].
#[derive(Debug)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            families: Mutex::new(BTreeMap::new()),
        }
    }

    fn handle(
        &self,
        family: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &str,
    ) -> Handle {
        let mut families = crate::sync::lock_recover(&self.families);
        let fam = families.entry(family).or_insert_with(|| Family {
            help,
            kind,
            samples: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric family `{family}` registered twice with different kinds"
        );
        fam.samples
            .entry(labels.to_owned())
            .or_insert_with(|| match kind {
                MetricKind::Counter => Handle::Counter(Counter(Arc::new(AtomicU64::new(0)))),
                MetricKind::Gauge => Handle::Gauge(Gauge(Arc::new(AtomicU64::new(0)))),
                MetricKind::Histogram => {
                    Handle::Histogram(Histogram(Arc::new(HistogramInner::new())))
                }
            })
            .clone()
    }

    /// Registers (or fetches) an unlabeled counter.
    pub fn counter(&self, family: &'static str, help: &'static str) -> Counter {
        self.counter_labeled(family, help, "")
    }

    /// Registers (or fetches) a counter sample with a literal label string,
    /// e.g. `kind="reduce"` (rendered verbatim inside `{...}`).
    pub fn counter_labeled(
        &self,
        family: &'static str,
        help: &'static str,
        labels: &str,
    ) -> Counter {
        match self.handle(family, help, MetricKind::Counter, labels) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Registers (or fetches) an unlabeled gauge.
    pub fn gauge(&self, family: &'static str, help: &'static str) -> Gauge {
        self.gauge_labeled(family, help, "")
    }

    /// Registers (or fetches) a gauge sample with a literal label string.
    pub fn gauge_labeled(&self, family: &'static str, help: &'static str, labels: &str) -> Gauge {
        match self.handle(family, help, MetricKind::Gauge, labels) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Registers (or fetches) an unlabeled histogram.
    pub fn histogram(&self, family: &'static str, help: &'static str) -> Histogram {
        self.histogram_labeled(family, help, "")
    }

    /// Registers (or fetches) a histogram sample with a literal label string.
    pub fn histogram_labeled(
        &self,
        family: &'static str,
        help: &'static str,
        labels: &str,
    ) -> Histogram {
        match self.handle(family, help, MetricKind::Histogram, labels) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Captures a consistent point-in-time snapshot of every registered
    /// family.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = crate::sync::lock_recover(&self.families);
        let mut out = Vec::with_capacity(families.len() + 1);
        // Synthetic family: the poison-recovery count lives in a plain
        // atomic (see `crate::sync`) so that recovering the registry's own
        // lock never re-enters the registry. Splice it in at its sorted
        // position so the output stays ordered by family name.
        let poison = FamilySnapshot {
            name: crate::sync::POISON_FAMILY.to_owned(),
            help: crate::sync::POISON_HELP.to_owned(),
            kind: MetricKind::Counter,
            samples: vec![MetricSample {
                labels: String::new(),
                value: SampleValue::Counter(crate::sync::poison_recoveries()),
            }],
        };
        let mut poison = Some(poison);
        for (name, fam) in families.iter() {
            if let Some(p) = poison.take_if(|p| p.name.as_str() <= *name) {
                out.push(p);
            }
            let samples = fam
                .samples
                .iter()
                .map(|(labels, handle)| MetricSample {
                    labels: labels.clone(),
                    value: match handle {
                        Handle::Counter(c) => SampleValue::Counter(c.get()),
                        Handle::Gauge(g) => SampleValue::Gauge(g.get()),
                        Handle::Histogram(h) => SampleValue::Histogram(snapshot_histogram(h)),
                    },
                })
                .collect();
            out.push(FamilySnapshot {
                name: (*name).to_owned(),
                help: fam.help.to_owned(),
                kind: fam.kind,
                samples,
            });
        }
        if let Some(p) = poison {
            out.push(p);
        }
        MetricsSnapshot { families: out }
    }
}

fn snapshot_histogram(h: &Histogram) -> HistogramSnapshot {
    let mut cumulative = Vec::with_capacity(FINITE_BUCKETS);
    let mut running = 0u64;
    for idx in 0..FINITE_BUCKETS {
        running += h.0.buckets[idx].load(Ordering::Relaxed);
        cumulative.push((ns_to_seconds(bucket_bound_ns(idx)), running));
    }
    HistogramSnapshot {
        cumulative,
        sum_seconds: ns_to_seconds(h.0.sum_ns.load(Ordering::Relaxed)),
        count: h.0.count.load(Ordering::Relaxed),
        max_seconds: ns_to_seconds(h.0.max_ns.load(Ordering::Relaxed)),
    }
}

#[allow(clippy::cast_precision_loss)]
fn ns_to_seconds(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// One sample of a family: a label string (may be empty) plus its value.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// The literal label string rendered inside `{...}`, e.g. `phase="round"`.
    pub labels: String,
    /// The sampled value.
    pub value: SampleValue,
}

/// The value of one metric sample.
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(u64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// Snapshot of one histogram sample.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// `(le_seconds, cumulative_count)` per finite bucket; the `+Inf`
    /// cumulative count equals [`HistogramSnapshot::count`].
    pub cumulative: Vec<(f64, u64)>,
    /// Sum of all observations, in seconds.
    pub sum_seconds: f64,
    /// Number of observations.
    pub count: u64,
    /// Largest single observation, in seconds (not exposed in Prometheus
    /// text format; used by summary lines and profiles).
    pub max_seconds: f64,
}

/// Snapshot of one metric family.
#[derive(Clone, Debug)]
pub struct FamilySnapshot {
    /// Family name, e.g. `cycleq_search_nodes_created_total`.
    pub name: String,
    /// Help text for the `# HELP` line.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Samples, sorted by label string.
    pub samples: Vec<MetricSample>,
}

/// A consistent snapshot of every registered metric family.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Families sorted by name.
    pub families: Vec<FamilySnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter or gauge value by full sample name — the family
    /// name plus an optional literal label suffix, e.g.
    /// `cycleq_search_nodes_created_total` or
    /// `cycleq_rule_applications_total{kind="reduce"}`.
    pub fn value(&self, name: &str) -> Option<u64> {
        let (family, labels) = match name.split_once('{') {
            Some((fam, rest)) => (fam, rest.strip_suffix('}').unwrap_or(rest)),
            None => (name, ""),
        };
        let fam = self.families.iter().find(|f| f.name == family)?;
        let sample = fam.samples.iter().find(|s| s.labels == labels)?;
        match &sample.value {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => Some(*v),
            SampleValue::Histogram(_) => None,
        }
    }

    /// Looks up a histogram sample by full sample name (see
    /// [`MetricsSnapshot::value`] for the syntax).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        let (family, labels) = match name.split_once('{') {
            Some((fam, rest)) => (fam, rest.strip_suffix('}').unwrap_or(rest)),
            None => (name, ""),
        };
        let fam = self.families.iter().find(|f| f.name == family)?;
        let sample = fam.samples.iter().find(|s| s.labels == labels)?;
        match &sample.value {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Returns `self - earlier` sample-wise: counters and histogram
    /// bucket/sum/count values are subtracted (saturating — a sample absent
    /// from `earlier` is kept whole); gauges and histogram maxima keep their
    /// later (i.e. `self`) value. Used for per-problem and per-session
    /// profiles over the process-wide registry.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let families = self
            .families
            .iter()
            .map(|fam| {
                let base_fam = earlier.families.iter().find(|f| f.name == fam.name);
                let samples = fam
                    .samples
                    .iter()
                    .map(|s| {
                        let base = base_fam
                            .and_then(|bf| bf.samples.iter().find(|b| b.labels == s.labels));
                        MetricSample {
                            labels: s.labels.clone(),
                            value: delta_value(&s.value, base.map(|b| &b.value)),
                        }
                    })
                    .collect();
                FamilySnapshot {
                    name: fam.name.clone(),
                    help: fam.help.clone(),
                    kind: fam.kind,
                    samples,
                }
            })
            .collect();
        MetricsSnapshot { families }
    }

    /// Extracts the per-phase time breakdown from the `cycleq_phase_seconds`
    /// histogram family (populated by [`span!`](crate::span!) guards while
    /// tracing is enabled). Empty when tracing never ran.
    pub fn profile(&self) -> Profile {
        let mut phases = Vec::new();
        if let Some(fam) = self
            .families
            .iter()
            .find(|f| f.name == crate::span::PHASE_FAMILY)
        {
            for s in &fam.samples {
                if let SampleValue::Histogram(h) = &s.value {
                    let phase = s
                        .labels
                        .strip_prefix("phase=\"")
                        .and_then(|rest| rest.strip_suffix('"'))
                        .unwrap_or(s.labels.as_str())
                        .to_owned();
                    phases.push(PhaseStat {
                        phase,
                        count: h.count,
                        total_seconds: h.sum_seconds,
                        max_seconds: h.max_seconds,
                    });
                }
            }
        }
        Profile { phases }
    }

    /// Renders the snapshot in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.as_str()));
            for s in &fam.samples {
                match &s.value {
                    SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                        out.push_str(&render_sample(&fam.name, &s.labels, &v.to_string()));
                    }
                    SampleValue::Histogram(h) => {
                        for (le, cum) in &h.cumulative {
                            let labels =
                                join_labels(&s.labels, &format!("le=\"{}\"", format_f64(*le)));
                            out.push_str(&render_sample(
                                &format!("{}_bucket", fam.name),
                                &labels,
                                &cum.to_string(),
                            ));
                        }
                        let labels = join_labels(&s.labels, "le=\"+Inf\"");
                        out.push_str(&render_sample(
                            &format!("{}_bucket", fam.name),
                            &labels,
                            &h.count.to_string(),
                        ));
                        out.push_str(&render_sample(
                            &format!("{}_sum", fam.name),
                            &s.labels,
                            &format_f64(h.sum_seconds),
                        ));
                        out.push_str(&render_sample(
                            &format!("{}_count", fam.name),
                            &s.labels,
                            &h.count.to_string(),
                        ));
                    }
                }
            }
        }
        out
    }
}

fn render_sample(name: &str, labels: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{labels}}} {value}\n")
    }
}

fn join_labels(a: &str, b: &str) -> String {
    if a.is_empty() {
        b.to_owned()
    } else {
        format!("{a},{b}")
    }
}

/// Formats an `f64` for Prometheus text: plain decimal, trailing zeros
/// trimmed (bucket bounds are exact powers of two in ns, so nine decimals
/// are always sufficient).
fn format_f64(v: f64) -> String {
    let s = format!("{v:.9}");
    let s = s.trim_end_matches('0');
    let s = s.strip_suffix('.').unwrap_or(s);
    if s.is_empty() {
        "0".to_owned()
    } else {
        s.to_owned()
    }
}

fn delta_value(later: &SampleValue, earlier: Option<&SampleValue>) -> SampleValue {
    match (later, earlier) {
        (SampleValue::Counter(l), Some(SampleValue::Counter(e))) => {
            SampleValue::Counter(l.saturating_sub(*e))
        }
        (SampleValue::Histogram(l), Some(SampleValue::Histogram(e))) => {
            let cumulative = l
                .cumulative
                .iter()
                .zip(e.cumulative.iter())
                .map(|((le, lc), (_, ec))| (*le, lc.saturating_sub(*ec)))
                .collect();
            SampleValue::Histogram(HistogramSnapshot {
                cumulative,
                sum_seconds: (l.sum_seconds - e.sum_seconds).max(0.0),
                count: l.count.saturating_sub(e.count),
                max_seconds: l.max_seconds,
            })
        }
        _ => later.clone(),
    }
}

/// Per-phase time breakdown extracted from a [`MetricsSnapshot`].
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// One entry per span name observed, sorted by family label order.
    pub phases: Vec<PhaseStat>,
}

impl Profile {
    /// Looks up a phase by span name.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.phase == name)
    }
}

/// Aggregate timing of one span name.
///
/// Totals are *inclusive* of child spans: a recursive `expand` span counts
/// its nested expansions' time again, so per-phase totals are attribution
/// weights, not a partition of wall-clock time.
#[derive(Clone, Debug)]
pub struct PhaseStat {
    /// Span name (`prove_goal`, `round`, `normalize`, ...).
    pub phase: String,
    /// Number of spans recorded.
    pub count: u64,
    /// Total time across those spans, seconds.
    pub total_seconds: f64,
    /// Longest single span, seconds.
    pub max_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(256), 0);
        assert_eq!(bucket_index(257), 1);
        assert_eq!(bucket_index(512), 1);
        assert_eq!(bucket_index(1 << 34), FINITE_BUCKETS - 1);
        assert_eq!(bucket_index((1 << 34) + 1), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn counter_gauge_roundtrip() {
        let c = metrics().counter("test_registry_counter_total", "test");
        let before = c.get();
        c.add(3);
        assert_eq!(c.get(), before + 3);

        let g = metrics().gauge("test_registry_gauge", "test");
        g.set(10);
        g.sub(4);
        g.add(1);
        assert_eq!(g.get(), 7);
        g.sub(100);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn labeled_counters_are_distinct_samples() {
        let a = metrics().counter_labeled("test_labeled_total", "test", "kind=\"a\"");
        let b = metrics().counter_labeled("test_labeled_total", "test", "kind=\"b\"");
        a.inc();
        b.add(2);
        let snap = metrics().snapshot();
        assert_eq!(snap.value("test_labeled_total{kind=\"a\"}"), Some(1));
        assert_eq!(snap.value("test_labeled_total{kind=\"b\"}"), Some(2));
    }

    #[test]
    fn histogram_prometheus_shape() {
        let h = metrics().histogram("test_hist_seconds", "test");
        h.observe(Duration::from_nanos(100));
        h.observe(Duration::from_micros(10));
        h.observe(Duration::from_secs(100)); // lands in +Inf
        let snap = metrics().snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE test_hist_seconds histogram"));
        assert!(text.contains("test_hist_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("test_hist_seconds_count 3"));
        // First bucket (256 ns) holds exactly the 100 ns observation.
        assert!(text.contains("test_hist_seconds_bucket{le=\"0.000000256\"} 1"));
        let hist = snap.histogram("test_hist_seconds").expect("histogram");
        assert_eq!(hist.count, 3);
        assert!(hist.max_seconds >= 100.0);
        // Cumulative counts are monotone.
        let mut prev = 0;
        for (_, c) in &hist.cumulative {
            assert!(*c >= prev);
            prev = *c;
        }
    }

    #[test]
    fn delta_subtracts_counters_keeps_gauges() {
        let c = metrics().counter("test_delta_total", "test");
        let g = metrics().gauge("test_delta_gauge", "test");
        c.add(5);
        g.set(3);
        let before = metrics().snapshot();
        c.add(2);
        g.set(9);
        let after = metrics().snapshot();
        let d = after.delta(&before);
        assert_eq!(d.value("test_delta_total"), Some(2));
        assert_eq!(d.value("test_delta_gauge"), Some(9));
    }

    #[test]
    fn format_f64_trims() {
        assert_eq!(format_f64(0.000000256), "0.000000256");
        assert_eq!(format_f64(1.0), "1");
        assert_eq!(format_f64(0.5), "0.5");
        assert_eq!(format_f64(0.0), "0");
    }
}
