//! Hierarchical spans over thread-local buffers.
//!
//! Cost model:
//! - disabled (default): two relaxed atomic loads per [`span`] call (span
//!   timing plus the fault-injection hook, both off by default);
//! - enabled: two `Instant` reads plus a lock-free histogram update per
//!   span (per-thread handle cache, no registry lock on the hot path);
//! - collecting: additionally one `Vec` push per span; buffers flush into
//!   the global sink under a mutex only when the thread's span stack
//!   returns to depth zero or the buffer reaches [`FLUSH_CHUNK`] records,
//!   so no span is ever dropped and the lock stays off the hot path.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::chrome::Trace;
use crate::registry::{metrics, Histogram};

/// The histogram family every finished span observes into while tracing is
/// enabled, labeled `phase="<span name>"`.
pub(crate) const PHASE_FAMILY: &str = "cycleq_phase_seconds";
const PHASE_HELP: &str = "Time spent per span phase (inclusive of child spans).";

/// Flush threshold for per-thread span buffers while collecting.
const FLUSH_CHUNK: usize = 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTING: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[derive(Debug, Default)]
struct TraceSink {
    spans: Vec<SpanRecord>,
    threads: BTreeMap<u32, String>,
}

fn sink() -> &'static Mutex<TraceSink> {
    static SINK: OnceLock<Mutex<TraceSink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(TraceSink::default()))
}

/// One finished span, timestamped relative to the process trace epoch.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Trace-local thread ordinal (stable per thread, assigned on first use).
    pub tid: u32,
    /// Static span name.
    pub name: &'static str,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at the time the span was open (0 = top level).
    pub depth: u16,
}

struct ThreadState {
    tid: u32,
    label: Option<String>,
    depth: u32,
    buf: Vec<SpanRecord>,
    phase_cache: HashMap<&'static str, Histogram>,
}

impl ThreadState {
    fn new() -> ThreadState {
        ThreadState {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            label: None,
            depth: 0,
            buf: Vec::new(),
            phase_cache: HashMap::new(),
        }
    }

    fn thread_name(&self) -> String {
        if let Some(label) = &self.label {
            return label.clone();
        }
        std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{}", self.tid), str::to_owned)
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut sink = crate::sync::lock_recover(sink());
        sink.threads
            .entry(self.tid)
            .or_insert_with(|| self.thread_name());
        sink.spans.append(&mut self.buf);
    }
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// Globally enables or disables span timing. Disabled spans cost one
/// relaxed atomic load. Enabling also fixes the trace epoch if it is not
/// set yet.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether span timing is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether a trace collection is currently active.
pub fn collecting() -> bool {
    COLLECTING.load(Ordering::Relaxed)
}

/// Starts collecting finished spans into the process-wide trace sink
/// (clearing any previous collection) and enables span timing.
///
/// Collection is process-global: concurrent collections interleave, so
/// tests serialise access to this pair of functions.
pub fn start_collect() {
    let _ = epoch();
    {
        let mut sink = crate::sync::lock_recover(sink());
        sink.spans.clear();
        sink.threads.clear();
    }
    set_enabled(true);
    COLLECTING.store(true, Ordering::SeqCst);
}

/// Stops collecting and returns the gathered [`Trace`]. Span timing stays
/// enabled (call [`set_enabled`] to turn it off).
pub fn finish_collect() -> Trace {
    COLLECTING.store(false, Ordering::SeqCst);
    // Flush the calling thread's buffer: worker threads flush when their
    // span stacks unwind, but the caller may still hold an open span.
    let _ = TLS.try_with(|s| s.borrow_mut().flush());
    let mut sink = crate::sync::lock_recover(sink());
    let mut spans = std::mem::take(&mut sink.spans);
    spans.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns), s.tid));
    let threads = std::mem::take(&mut sink.threads).into_iter().collect();
    Trace { spans, threads }
}

/// Labels the calling thread in exported traces (e.g. `worker-3`).
/// Without a label the OS thread name (or `thread-<tid>`) is used.
pub fn set_thread_label(label: &str) {
    let _ = TLS.try_with(|s| {
        let mut st = s.borrow_mut();
        st.label = Some(label.to_owned());
        if collecting() {
            let name = st.thread_name();
            let tid = st.tid;
            let mut sink = crate::sync::lock_recover(sink());
            sink.threads.insert(tid, name);
        }
    });
}

/// Guard returned by [`span`] / [`span!`](crate::span!); records the span
/// when dropped. Hold it in a named local (`let _g = span!(...)`), not `_`.
#[must_use = "a span ends when its guard is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a span; prefer the [`span!`](crate::span!) macro.
///
/// Span sites double as fault-injection points: when a
/// [`FaultPlan`](crate::FaultPlan) is installed (never in production), the
/// matching rule's action runs here before the span opens.
pub fn span(name: &'static str) -> SpanGuard {
    if crate::fault::faults_active() {
        crate::fault::hit(name);
    }
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { name, start: None };
    }
    let _ = TLS.try_with(|s| s.borrow_mut().depth += 1);
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        let _ = TLS.try_with(|s| {
            let mut st = s.borrow_mut();
            st.depth = st.depth.saturating_sub(1);
            let hist = st
                .phase_cache
                .entry(self.name)
                .or_insert_with(|| {
                    metrics().histogram_labeled(
                        PHASE_FAMILY,
                        PHASE_HELP,
                        &format!("phase=\"{}\"", self.name),
                    )
                })
                .clone();
            hist.observe(dur);
            if COLLECTING.load(Ordering::Relaxed) {
                let start_ns = start
                    .checked_duration_since(epoch())
                    .unwrap_or_default()
                    .as_nanos();
                let record = SpanRecord {
                    tid: st.tid,
                    name: self.name,
                    start_ns: u64::try_from(start_ns).unwrap_or(u64::MAX),
                    dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
                    depth: u16::try_from(st.depth).unwrap_or(u16::MAX),
                };
                st.buf.push(record);
                if st.depth == 0 || st.buf.len() >= FLUSH_CHUNK {
                    st.flush();
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collection state is process-global; every test that touches it takes
    /// this lock.
    fn collect_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = collect_lock().lock().expect("test lock");
        set_enabled(false);
        let before = metrics().snapshot();
        {
            let _g = crate::span!("test_disabled_phase");
        }
        let after = metrics().snapshot();
        assert_eq!(
            after
                .histogram("cycleq_phase_seconds{phase=\"test_disabled_phase\"}")
                .map_or(0, |h| h.count),
            before
                .histogram("cycleq_phase_seconds{phase=\"test_disabled_phase\"}")
                .map_or(0, |h| h.count),
        );
    }

    #[test]
    fn collected_spans_nest_and_flush() {
        let _guard = collect_lock().lock().expect("test lock");
        start_collect();
        set_thread_label("span-test-main");
        {
            let _outer = crate::span!("test_outer");
            {
                let _inner = crate::span!("test_inner");
            }
            {
                let _inner = crate::span!("test_inner");
            }
        }
        // A worker thread contributes its own track.
        std::thread::spawn(|| {
            set_thread_label("span-test-worker");
            let _g = crate::span!("test_worker_span");
        })
        .join()
        .expect("worker");
        let trace = finish_collect();
        set_enabled(false);

        assert_eq!(trace.count("test_outer"), 1);
        assert_eq!(trace.count("test_inner"), 2);
        assert_eq!(trace.count("test_worker_span"), 1);
        let outer = trace
            .spans
            .iter()
            .find(|s| s.name == "test_outer")
            .expect("outer span");
        let inner: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.name == "test_inner")
            .collect();
        for i in &inner {
            assert_eq!(i.depth, outer.depth + 1);
            assert_eq!(i.tid, outer.tid);
            assert!(i.start_ns >= outer.start_ns);
            assert!(i.start_ns + i.dur_ns <= outer.start_ns + outer.dur_ns);
        }
        let labels: Vec<&str> = trace.threads.iter().map(|(_, n)| n.as_str()).collect();
        assert!(labels.contains(&"span-test-main"));
        assert!(labels.contains(&"span-test-worker"));

        // Phase histogram observed the spans even though collection ended.
        let snap = metrics().snapshot();
        assert!(snap
            .histogram("cycleq_phase_seconds{phase=\"test_inner\"}")
            .is_some_and(|h| h.count >= 2));
    }

    #[test]
    fn enabled_without_collection_feeds_histograms_only() {
        let _guard = collect_lock().lock().expect("test lock");
        set_enabled(true);
        {
            let _g = crate::span!("test_histogram_only");
        }
        set_enabled(false);
        let snap = metrics().snapshot();
        assert!(snap
            .histogram("cycleq_phase_seconds{phase=\"test_histogram_only\"}")
            .is_some_and(|h| h.count >= 1));
        // Nothing leaked into the sink.
        assert!(sink()
            .lock()
            .expect("sink")
            .spans
            .iter()
            .all(|s| s.name != "test_histogram_only"));
    }
}
