//! Unified observability for the CycleQ prover stack.
//!
//! This crate provides the two primitives every other `cycleq_*` crate
//! instruments itself with:
//!
//! 1. **Hierarchical spans** ([`span!`]) — lightweight timed scopes recorded
//!    into thread-local buffers. When tracing is *disabled* (the default) a
//!    span costs a single relaxed atomic load — cheap enough to leave in the
//!    innermost normalization loop (pinned by the `trace_overhead` bench
//!    group). When enabled, finished spans feed a per-phase latency
//!    histogram, and — while a collection started with [`start_collect`] is
//!    active — are also gathered into a [`Trace`] exportable as Chrome
//!    trace-event JSON (loadable in `chrome://tracing` or
//!    [Perfetto](https://ui.perfetto.dev)).
//! 2. **A process-wide metrics registry** ([`metrics`]) of named counters,
//!    gauges, and log₂-bucketed latency histograms. A [`MetricsSnapshot`]
//!    captures all of them at once and renders Prometheus text exposition
//!    format — the payload a future `cycleq serve` daemon will expose.
//!
//! Two robustness primitives ride along because this crate sits at the
//! bottom of the dependency graph:
//!
//! - [`lock_recover`] — poison-recovering mutex acquisition (counted in the
//!   `cycleq_lock_poison_recoveries_total` family), used by every shared
//!   lock in the stack instead of `.expect("poisoned")`;
//! - [`FaultPlan`] — deterministic fault injection hooked at the span sites
//!   (panic / delay / cancel at the n-th occurrence of a site, optionally
//!   scoped to one goal), configured programmatically or via the
//!   `CYCLEQ_FAULTS` environment variable. A single relaxed atomic load
//!   when no plan is installed.
//!
//! The span taxonomy used by the prover stack:
//!
//! | span             | scope                                               |
//! |------------------|-----------------------------------------------------|
//! | `prove_goal`     | one goal end-to-end (all deepening rounds)          |
//! | `round`          | one iterative-deepening round                       |
//! | `expand`         | one proof-node expansion (nested under recursion)   |
//! | `normalize`      | one memoized normalization call                     |
//! | `closure_update` | one incremental size-change closure edge insertion  |
//! | `check`          | one certificate / proof re-check                    |
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//!
//! // Counters and histograms work without enabling span timing.
//! let c = cycleq_trace::metrics().counter("doc_requests_total", "Requests served.");
//! c.inc();
//! let h = cycleq_trace::metrics().histogram("doc_latency_seconds", "Request latency.");
//! h.observe(Duration::from_micros(120));
//!
//! let snap = cycleq_trace::metrics().snapshot();
//! assert_eq!(snap.value("doc_requests_total"), Some(1));
//! assert!(snap.to_prometheus().contains("# TYPE doc_latency_seconds histogram"));
//! ```

mod chrome;
mod fault;
mod registry;
mod span;
mod sync;

pub use chrome::Trace;
pub use fault::{
    clear_fault_plan, fault_scope, fault_scope_with_cancel, faults_active, install_fault_plan,
    FaultAction, FaultPlan, FaultRule, FaultScope, FireSpec,
};
pub use registry::{
    metrics, Counter, FamilySnapshot, Gauge, Histogram, HistogramSnapshot, MetricKind,
    MetricSample, MetricsSnapshot, PhaseStat, Profile, Registry, SampleValue,
};
pub use span::{
    collecting, enabled, finish_collect, set_enabled, set_thread_label, span, start_collect,
    SpanGuard, SpanRecord,
};
pub use sync::{lock_recover, poison_recoveries};

/// Opens a timed span that ends when the returned guard is dropped.
///
/// The name must be a `&'static str` (span names are a closed vocabulary —
/// see the crate-level taxonomy table). When tracing is disabled this is a
/// single relaxed atomic load.
///
/// ```
/// cycleq_trace::set_enabled(true);
/// {
///     let _outer = cycleq_trace::span!("prove_goal");
///     let _inner = cycleq_trace::span!("normalize");
///     // ... guards record both phases into `cycleq_phase_seconds` ...
/// }
/// let profile = cycleq_trace::metrics().snapshot().profile();
/// assert!(profile.phases.iter().any(|p| p.phase == "normalize" && p.count >= 1));
/// cycleq_trace::set_enabled(false);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}
