//! Chrome trace-event JSON export.
//!
//! The emitted document is the stable "JSON object format" understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a
//! `traceEvents` array of `ph:"X"` *complete events* (one per span, `ts` and
//! `dur` in microseconds) plus `ph:"M"` metadata events naming the process
//! and one track per worker thread. Event key order is pinned by
//! `crates/cli/tests/observability.rs`.

use crate::span::SpanRecord;

/// A finished span collection, returned by
/// [`finish_collect`](crate::finish_collect).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All recorded spans, sorted by start time (parents before children).
    pub spans: Vec<SpanRecord>,
    /// `(tid, name)` for every thread that contributed spans.
    pub threads: Vec<(u32, String)>,
}

impl Trace {
    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of spans with the given name.
    pub fn count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Renders the trace as Chrome trace-event JSON.
    pub fn to_chrome_json(&self) -> String {
        let mut events = Vec::with_capacity(self.spans.len() + self.threads.len() + 1);
        events.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"cycleq\"}}"
                .to_owned(),
        );
        for (tid, name) in &self.threads {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                tid,
                escape(name)
            ));
        }
        for s in &self.spans {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"cycleq\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{}}}",
                escape(s.name),
                micros(s.start_ns),
                micros(s.dur_ns),
                s.tid
            ));
        }
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
            events.join(",\n")
        )
    }
}

/// Formats nanoseconds as microseconds with sub-µs precision (`12.345`).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tid: u32, name: &'static str, start_ns: u64, dur_ns: u64, depth: u16) -> SpanRecord {
        SpanRecord {
            tid,
            name,
            start_ns,
            dur_ns,
            depth,
        }
    }

    #[test]
    fn chrome_json_shape() {
        let trace = Trace {
            spans: vec![
                record(1, "prove_goal", 1_000, 500_500, 0),
                record(1, "round", 2_000, 400_000, 1),
            ],
            threads: vec![(1, "worker-0".to_owned())],
        };
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
             \"args\":{\"name\":\"worker-0\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"prove_goal\",\"cat\":\"cycleq\",\"ph\":\"X\",\"ts\":1.000,\
             \"dur\":500.500,\"pid\":1,\"tid\":1}"
        ));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        // Balanced braces / brackets (cheap well-formedness check; the CLI
        // integration test does a structural parse).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn micros_formats_sub_microsecond() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_234_567), "1234.567");
    }
}
