//! Deterministic fault injection at span sites.
//!
//! A [`FaultPlan`] is a list of [`FaultRule`]s, each naming a span site from
//! the crate-level taxonomy (`expand`, `normalize`, `round`, ...) and an
//! action to take when that site is entered: panic, sleep, or request
//! cancellation. Rules can be scoped to a labelled region (typically one
//! goal, via [`fault_scope`]) and restricted to the n-th matching occurrence
//! or a seeded pseudo-random fraction of occurrences, so a fault fires at a
//! reproducible point of the computation.
//!
//! Plans are installed process-wide with [`install_fault_plan`] (tests) or
//! parsed from the `CYCLEQ_FAULTS` environment variable (CLI). When no plan
//! is installed the hook in [`span`](crate::span) is a single relaxed atomic
//! load — the same cost class as disabled tracing, so production code pays
//! nothing for the capability.
//!
//! # Specification grammar (`CYCLEQ_FAULTS`)
//!
//! Comma-separated rules, each `ACTION@SITE[/SCOPE][SELECTOR]`:
//!
//! - `ACTION` — `panic`, `delay:<N>ms` (or `delay:<N>s`), or `cancel`;
//! - `SITE` — a span name (`expand`, `normalize`, `round`, `prove_goal`,
//!   `check`, `lint_file`, ...);
//! - `/SCOPE` — only fire inside a matching [`fault_scope`] label (the
//!   engine scopes each goal by name);
//! - `SELECTOR` — `#N` fire on exactly the N-th matching entry (default
//!   `#1`), `#every` fire on all of them, or `%P` fire on roughly P percent
//!   of them, decided by a hash of the plan seed (`CYCLEQ_FAULT_SEED`) and
//!   the occurrence index.
//!
//! Example: `panic@expand/addComm#1,delay:50ms@normalize%10`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// What an armed [`FaultRule`] does when it fires.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Panic with a recognizable message; the surrounding task isolation
    /// turns this into a structured `Panicked` failure.
    Panic,
    /// Sleep for the given duration, simulating a slow phase (drives
    /// timeout/retry paths deterministically).
    Delay(Duration),
    /// Invoke the innermost cancellation hook registered with
    /// [`fault_scope_with_cancel`] (no-op if none is registered).
    Cancel,
}

/// Which matching occurrences of a rule's site actually fire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FireSpec {
    /// Exactly the n-th matching occurrence (1-based).
    Nth(u64),
    /// Every matching occurrence.
    Every,
    /// Each matching occurrence independently, with this probability
    /// (0.0..=1.0), decided deterministically from the plan seed and the
    /// occurrence index.
    Prob(f64),
}

/// One injection rule: where, when, and what.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// Span site name this rule watches (must match the `span!` name).
    pub site: String,
    /// Optional scope label; the rule only matches while a
    /// [`fault_scope`] with this label is active on the current thread.
    pub scope: Option<String>,
    /// Occurrence selector (counted per rule, over matching entries only).
    pub fire: FireSpec,
    /// Action taken when the rule fires.
    pub action: FaultAction,
}

impl FaultRule {
    /// A rule that panics on the first entry of `site`.
    pub fn panic_at(site: &str) -> FaultRule {
        FaultRule {
            site: site.to_owned(),
            scope: None,
            fire: FireSpec::Nth(1),
            action: FaultAction::Panic,
        }
    }

    /// A rule that sleeps for `delay` on the first entry of `site`.
    pub fn delay_at(site: &str, delay: Duration) -> FaultRule {
        FaultRule {
            site: site.to_owned(),
            scope: None,
            fire: FireSpec::Nth(1),
            action: FaultAction::Delay(delay),
        }
    }

    /// A rule that requests cancellation on the first entry of `site`.
    pub fn cancel_at(site: &str) -> FaultRule {
        FaultRule {
            site: site.to_owned(),
            scope: None,
            fire: FireSpec::Nth(1),
            action: FaultAction::Cancel,
        }
    }

    /// Restricts the rule to a [`fault_scope`] label (e.g. a goal name).
    #[must_use]
    pub fn scoped(mut self, scope: &str) -> FaultRule {
        self.scope = Some(scope.to_owned());
        self
    }

    /// Sets the occurrence selector.
    #[must_use]
    pub fn with_fire(mut self, fire: FireSpec) -> FaultRule {
        self.fire = fire;
        self
    }
}

/// A set of fault rules plus the seed for probabilistic selectors.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Rules, checked in order on every matching site entry.
    pub rules: Vec<FaultRule>,
    /// Seed for [`FireSpec::Prob`] decisions.
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan (installing it disables injection, like
    /// [`clear_fault_plan`]).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Appends a rule (builder style).
    #[must_use]
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Sets the seed used by probabilistic selectors.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Parses a comma-separated rule specification (see the module docs for
    /// the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            plan.rules.push(parse_rule(part)?);
        }
        Ok(plan)
    }

    /// Reads a plan from `CYCLEQ_FAULTS` / `CYCLEQ_FAULT_SEED`. Returns
    /// `Ok(None)` when the variable is unset or empty.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        let spec = match std::env::var("CYCLEQ_FAULTS") {
            Ok(s) if !s.trim().is_empty() => s,
            _ => return Ok(None),
        };
        let mut plan = FaultPlan::parse(&spec)?;
        if let Ok(seed) = std::env::var("CYCLEQ_FAULT_SEED") {
            plan.seed = seed
                .trim()
                .parse()
                .map_err(|_| format!("CYCLEQ_FAULT_SEED: not a u64: `{seed}`"))?;
        }
        Ok(Some(plan))
    }
}

fn parse_rule(part: &str) -> Result<FaultRule, String> {
    let (action_str, rest) = part
        .split_once('@')
        .ok_or_else(|| format!("fault rule `{part}`: expected ACTION@SITE"))?;
    let action = parse_action(action_str.trim())?;

    // Split the trailing selector first so scopes may contain `#`-free text.
    let (site_scope, fire) = if let Some((head, pct)) = rest.rsplit_once('%') {
        let p: f64 = pct
            .trim()
            .parse()
            .map_err(|_| format!("fault rule `{part}`: bad percentage `{pct}`"))?;
        if !(0.0..=100.0).contains(&p) {
            return Err(format!("fault rule `{part}`: percentage out of range"));
        }
        (head, FireSpec::Prob(p / 100.0))
    } else if let Some((head, sel)) = rest.rsplit_once('#') {
        let sel = sel.trim();
        if sel == "every" || sel == "all" {
            (head, FireSpec::Every)
        } else {
            let n: u64 = sel
                .parse()
                .map_err(|_| format!("fault rule `{part}`: bad occurrence `{sel}`"))?;
            if n == 0 {
                return Err(format!(
                    "fault rule `{part}`: occurrences are 1-based (use #every for all)"
                ));
            }
            (head, FireSpec::Nth(n))
        }
    } else {
        (rest, FireSpec::Nth(1))
    };

    let (site, scope) = match site_scope.split_once('/') {
        Some((site, scope)) => (site.trim(), Some(scope.trim().to_owned())),
        None => (site_scope.trim(), None),
    };
    if site.is_empty() {
        return Err(format!("fault rule `{part}`: empty site"));
    }
    Ok(FaultRule {
        site: site.to_owned(),
        scope,
        fire,
        action,
    })
}

fn parse_action(s: &str) -> Result<FaultAction, String> {
    if s == "panic" {
        return Ok(FaultAction::Panic);
    }
    if s == "cancel" {
        return Ok(FaultAction::Cancel);
    }
    if let Some(d) = s.strip_prefix("delay:") {
        let d = d.trim();
        let (num, unit_ms) = if let Some(n) = d.strip_suffix("ms") {
            (n, 1.0)
        } else if let Some(n) = d.strip_suffix('s') {
            (n, 1000.0)
        } else {
            (d, 1.0)
        };
        let v: f64 = num
            .trim()
            .parse()
            .map_err(|_| format!("fault action `{s}`: bad duration"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!("fault action `{s}`: bad duration"));
        }
        return Ok(FaultAction::Delay(Duration::from_secs_f64(
            v * unit_ms / 1000.0,
        )));
    }
    Err(format!(
        "fault action `{s}`: expected panic, delay:<N>ms, or cancel"
    ))
}

struct ArmedRule {
    rule: FaultRule,
    /// Matching occurrences seen so far (across all threads).
    hits: AtomicU64,
}

struct ArmedPlan {
    seed: u64,
    rules: Vec<ArmedRule>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static Mutex<Option<Arc<ArmedPlan>>> {
    static PLAN: OnceLock<Mutex<Option<Arc<ArmedPlan>>>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(None))
}

/// Installs `plan` process-wide, replacing any previous plan and resetting
/// its occurrence counters. An empty plan deactivates injection.
pub fn install_fault_plan(plan: FaultPlan) {
    let armed = ArmedPlan {
        seed: plan.seed,
        rules: plan
            .rules
            .into_iter()
            .map(|rule| ArmedRule {
                rule,
                hits: AtomicU64::new(0),
            })
            .collect(),
    };
    let active = !armed.rules.is_empty();
    *crate::sync::lock_recover(plan_slot()) = active.then(|| Arc::new(armed));
    ACTIVE.store(active, Ordering::SeqCst);
}

/// Removes any installed fault plan.
pub fn clear_fault_plan() {
    *crate::sync::lock_recover(plan_slot()) = None;
    ACTIVE.store(false, Ordering::SeqCst);
}

/// Whether a non-empty fault plan is currently installed.
pub fn faults_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

type CancelHook = Arc<dyn Fn() + Send + Sync>;

struct ScopeFrame {
    label: String,
    on_cancel: Option<CancelHook>,
}

thread_local! {
    static SCOPES: RefCell<Vec<ScopeFrame>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`fault_scope`]; pops the scope label when dropped.
#[must_use = "a fault scope ends when its guard is dropped"]
#[derive(Debug)]
pub struct FaultScope {
    _private: (),
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        let _ = SCOPES.try_with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Labels the current thread's execution (e.g. with the goal name) so
/// scoped fault rules can target it. Scopes nest.
pub fn fault_scope(label: &str) -> FaultScope {
    push_scope(label, None)
}

/// Like [`fault_scope`], additionally registering the hook a
/// [`FaultAction::Cancel`] rule invokes while this scope is innermost.
pub fn fault_scope_with_cancel(label: &str, on_cancel: CancelHook) -> FaultScope {
    push_scope(label, Some(on_cancel))
}

fn push_scope(label: &str, on_cancel: Option<CancelHook>) -> FaultScope {
    let _ = SCOPES.try_with(|s| {
        s.borrow_mut().push(ScopeFrame {
            label: label.to_owned(),
            on_cancel,
        });
    });
    FaultScope { _private: () }
}

/// Deterministic per-occurrence decision for [`FireSpec::Prob`]
/// (splitmix64 of seed and occurrence index).
fn prob_fires(seed: u64, occurrence: u64, p: f64) -> bool {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(occurrence);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    #[allow(clippy::cast_precision_loss)]
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    unit < p
}

/// Span-site hook: called from [`span`](crate::span) when a plan is active.
/// Decides and executes at most one action per call (first matching rule
/// that fires wins).
pub(crate) fn hit(site: &'static str) {
    let Some(plan) = crate::sync::lock_recover(plan_slot()).clone() else {
        return;
    };
    // Decide while holding only the TLS borrow, act after releasing it:
    // a panic or user cancel hook must not run inside the scope borrow.
    let mut fired: Option<(FaultAction, Option<CancelHook>, String)> = None;
    let _ = SCOPES.try_with(|scopes| {
        let scopes = scopes.borrow();
        for armed in &plan.rules {
            if armed.rule.site != site {
                continue;
            }
            if let Some(scope) = &armed.rule.scope {
                if !scopes.iter().any(|f| &f.label == scope) {
                    continue;
                }
            }
            let occurrence = armed.hits.fetch_add(1, Ordering::Relaxed) + 1;
            let fires = match armed.rule.fire {
                FireSpec::Nth(n) => occurrence == n,
                FireSpec::Every => true,
                FireSpec::Prob(p) => prob_fires(plan.seed, occurrence, p),
            };
            if fires {
                let hook = scopes.iter().rev().find_map(|f| f.on_cancel.clone());
                let scope_label = scopes
                    .last()
                    .map_or_else(|| "<unscoped>".to_owned(), |f| f.label.clone());
                fired = Some((armed.rule.action.clone(), hook, scope_label));
                break;
            }
        }
    });
    let Some((action, hook, scope_label)) = fired else {
        return;
    };
    match action {
        FaultAction::Panic => {
            panic!("cycleq fault injection: panic@{site} (scope {scope_label})")
        }
        FaultAction::Delay(d) => std::thread::sleep(d),
        FaultAction::Cancel => {
            if let Some(hook) = hook {
                hook();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicUsize;

    use super::*;

    /// Fault plans are process-global; every test that installs one takes
    /// this lock.
    fn plan_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn parse_full_grammar() {
        let plan =
            FaultPlan::parse("panic@expand/goal3#1, delay:50ms@normalize%10, cancel@round#2")
                .expect("parse");
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].site, "expand");
        assert_eq!(plan.rules[0].scope.as_deref(), Some("goal3"));
        assert_eq!(plan.rules[0].fire, FireSpec::Nth(1));
        assert_eq!(plan.rules[0].action, FaultAction::Panic);
        assert_eq!(
            plan.rules[1].action,
            FaultAction::Delay(Duration::from_millis(50))
        );
        assert_eq!(plan.rules[1].fire, FireSpec::Prob(0.1));
        assert!(plan.rules[1].scope.is_none());
        assert_eq!(plan.rules[2].fire, FireSpec::Nth(2));
        assert_eq!(plan.rules[2].action, FaultAction::Cancel);

        assert_eq!(
            FaultPlan::parse("delay:2s@check#every")
                .expect("parse")
                .rules[0]
                .fire,
            FireSpec::Every
        );
        assert!(FaultPlan::parse("explode@expand").is_err());
        assert!(FaultPlan::parse("panic@").is_err());
        assert!(FaultPlan::parse("panic@expand#0").is_err());
        assert!(FaultPlan::parse("panic@expand%150").is_err());
    }

    #[test]
    fn nth_rule_fires_once_at_the_right_site() {
        let _guard = plan_lock().lock().expect("test lock");
        install_fault_plan(FaultPlan::new().rule(FaultRule::panic_at("test_fault_site")));
        // Wrong site: nothing happens.
        hit("test_other_site");
        // First matching occurrence panics...
        let err = catch_unwind(AssertUnwindSafe(|| hit("test_fault_site")))
            .expect_err("fault should panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("fault injection"), "message: {msg}");
        assert!(msg.contains("panic@test_fault_site"), "message: {msg}");
        // ...and the rule is spent.
        hit("test_fault_site");
        clear_fault_plan();
        hit("test_fault_site");
    }

    #[test]
    fn scoped_rule_only_fires_inside_its_scope() {
        let _guard = plan_lock().lock().expect("test lock");
        install_fault_plan(
            FaultPlan::new().rule(FaultRule::panic_at("test_scoped_site").scoped("goalB")),
        );
        {
            let _a = fault_scope("goalA");
            hit("test_scoped_site"); // no match, does not consume the rule
        }
        {
            let _b = fault_scope("goalB");
            assert!(catch_unwind(AssertUnwindSafe(|| hit("test_scoped_site"))).is_err());
        }
        clear_fault_plan();
    }

    #[test]
    fn cancel_rule_invokes_innermost_hook() {
        let _guard = plan_lock().lock().expect("test lock");
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = Arc::clone(&calls);
        install_fault_plan(FaultPlan::new().rule(FaultRule::cancel_at("test_cancel_site")));
        {
            let _s = fault_scope_with_cancel(
                "goalC",
                Arc::new(move || {
                    calls2.fetch_add(1, Ordering::SeqCst);
                }),
            );
            hit("test_cancel_site");
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        clear_fault_plan();
    }

    #[test]
    fn prob_is_deterministic_in_the_seed() {
        let fires: Vec<bool> = (1..=64).map(|i| prob_fires(42, i, 0.5)).collect();
        let again: Vec<bool> = (1..=64).map(|i| prob_fires(42, i, 0.5)).collect();
        assert_eq!(fires, again);
        assert!(fires.iter().any(|f| *f));
        assert!(fires.iter().any(|f| !*f));
        assert!((1..=64).all(|i| prob_fires(7, i, 1.0)));
        assert!((1..=64).all(|i| !prob_fires(7, i, 0.0)));
    }

    #[test]
    fn delay_rule_sleeps() {
        let _guard = plan_lock().lock().expect("test lock");
        install_fault_plan(FaultPlan::new().rule(FaultRule::delay_at(
            "test_delay_site",
            Duration::from_millis(30),
        )));
        let t0 = std::time::Instant::now();
        hit("test_delay_site");
        assert!(t0.elapsed() >= Duration::from_millis(25));
        clear_fault_plan();
    }
}
