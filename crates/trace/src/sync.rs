//! Poison-recovering mutex acquisition.
//!
//! A thread that panics while holding a [`Mutex`] poisons it; every later
//! `.lock().expect(..)` then aborts the process even though the panicking
//! frame has long unwound. For the long-lived prover substrate (shared
//! caches, scheduler queues, trace sinks) that turns one bad goal into a
//! process-wide outage. [`lock_recover`] instead clears the poison flag,
//! counts the recovery, and hands back the guard — callers that need
//! stronger invariants than "the data is structurally valid" (e.g. the
//! shared normal-form cache, which drops a poisoned shard's entries) layer
//! their own repair on top.
//!
//! Recoveries are counted in a plain process-wide atomic (surfaced as the
//! `cycleq_lock_poison_recoveries_total` counter family in
//! [`metrics()`](crate::metrics) snapshots) rather than a registry handle,
//! so the helper stays safe to use on the registry's own lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Prometheus family name under which [`poison_recoveries`] is exported.
pub(crate) const POISON_FAMILY: &str = "cycleq_lock_poison_recoveries_total";
pub(crate) const POISON_HELP: &str =
    "Poisoned mutexes recovered (poison cleared, guard handed back) instead of aborting.";

static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Locks `mutex`, recovering from poisoning instead of panicking.
///
/// On a poisoned lock the poison flag is cleared, the process-wide
/// [`poison_recoveries`] counter is bumped, and the inner guard is returned
/// as-is. The protected value is whatever the panicking thread left behind —
/// safe for monotone state (queues, memo tables, sinks) where a torn update
/// is at worst a lost entry, not a broken invariant.
///
/// ```
/// use std::sync::{Arc, Mutex};
///
/// let m = Arc::new(Mutex::new(0_u32));
/// let m2 = Arc::clone(&m);
/// let _ = std::thread::spawn(move || {
///     let _guard = m2.lock().unwrap();
///     panic!("poison the lock");
/// })
/// .join();
/// assert!(m.is_poisoned());
/// *cycleq_trace::lock_recover(&m) += 1;
/// assert!(!m.is_poisoned());
/// assert_eq!(*m.lock().unwrap(), 1);
/// ```
pub fn lock_recover<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            mutex.clear_poison();
            POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        }
    }
}

/// Total poisoned-mutex recoveries performed by [`lock_recover`] since
/// process start.
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use std::sync::{Arc, Mutex};

    use super::*;

    #[test]
    fn recovers_and_clears_poison() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        let join = std::thread::spawn(move || {
            let mut g = m2.lock().expect("fresh lock");
            g.push(4);
            panic!("intentional test panic");
        })
        .join();
        assert!(join.is_err());
        assert!(m.is_poisoned());

        let before = poison_recoveries();
        {
            let g = lock_recover(&m);
            // The panicking thread's completed update is preserved.
            assert_eq!(*g, vec![1, 2, 3, 4]);
        }
        assert!(!m.is_poisoned());
        assert_eq!(poison_recoveries(), before + 1);

        // Subsequent plain locks succeed again.
        m.lock().expect("poison cleared").push(5);
    }

    #[test]
    fn unpoisoned_lock_is_untouched() {
        let m = Mutex::new(7_u8);
        let before = poison_recoveries();
        assert_eq!(*lock_recover(&m), 7);
        assert_eq!(poison_recoveries(), before);
    }

    #[test]
    fn recoveries_surface_in_snapshot() {
        let m = Arc::new(Mutex::new(()));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().expect("fresh lock");
            panic!("intentional test panic");
        })
        .join();
        let _g = lock_recover(&m);
        let snap = crate::metrics().snapshot();
        assert!(snap.value(POISON_FAMILY).is_some_and(|v| v >= 1));
    }
}
