//! A std-only work-stealing task scheduler.
//!
//! The build environment has no crates.io access, so there is no rayon;
//! this is the classic scheme built from the standard library alone. Tasks
//! are seeded round-robin into one deque per worker; each worker drains its
//! own deque from the front and, when empty, steals from the *back* of its
//! peers' deques (back-stealing takes the work its owner would reach last,
//! which keeps contention on opposite ends of each deque). No task ever
//! enqueues another task, so a worker may exit as soon as every deque is
//! empty.
//!
//! Determinism: results are written into a slot per task index, so the
//! returned `Vec` is always in task order no matter which worker finished
//! what, when. Scheduling (which worker runs which task) is *not*
//! deterministic — tasks must not depend on execution order, only on their
//! own input. Proof search satisfies this: goals are independent.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread;

/// Stack size for worker threads. Reduction and proof search recurse on
/// term structure, which for deep numeral towers can nest thousands of
/// frames; the default 2 MiB spawn stack is too tight, so workers get the
/// same order of headroom as the main thread.
const WORKER_STACK_BYTES: usize = 32 * 1024 * 1024;

/// The number of hardware threads, with a floor of 1 (used for `--jobs 0`
/// / "auto").
pub fn available_parallelism() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A fixed-width work-stealing executor for independent, indexed tasks.
#[derive(Copy, Clone, Debug)]
pub struct BatchScheduler {
    jobs: usize,
}

impl BatchScheduler {
    /// A scheduler running `jobs` workers; `0` means one worker per
    /// hardware thread.
    pub fn new(jobs: usize) -> BatchScheduler {
        BatchScheduler {
            jobs: if jobs == 0 {
                available_parallelism()
            } else {
                jobs
            },
        }
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every task and returns the results **in task order**.
    ///
    /// Each task receives the index of the worker running it (workers own
    /// per-worker state such as a term store, so the index lets callers
    /// pre-allocate one slot per worker). With one worker — or a single
    /// task — everything runs inline on the calling thread, in order: the
    /// sequential fallback involves no threads at all.
    ///
    /// # Panics
    ///
    /// If a task panics, the panic is propagated to the caller once the
    /// remaining workers have drained their queues.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce(usize) -> T + Send,
    {
        let n = tasks.len();
        let workers = self.jobs.min(n).max(1);
        if workers == 1 {
            return tasks.into_iter().map(|t| t(0)).collect();
        }
        // Seed round-robin so every worker starts with a contiguous share
        // of the index space interleaved with its peers'.
        let queues: Vec<Mutex<VecDeque<(usize, F)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            queues[i % workers]
                .lock()
                .expect("queue poisoned")
                .push_back((i, t));
        }
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let slots = &slots;
                thread::Builder::new()
                    .name(format!("cycleq-batch-{w}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, move || loop {
                        let job = {
                            let own = queues[w].lock().expect("queue poisoned").pop_front();
                            own.or_else(|| {
                                (1..workers).find_map(|off| {
                                    queues[(w + off) % workers]
                                        .lock()
                                        .expect("queue poisoned")
                                        .pop_back()
                                })
                            })
                        };
                        match job {
                            Some((i, task)) => {
                                let out = task(w);
                                *slots[i].lock().expect("slot poisoned") = Some(out);
                            }
                            // Every deque empty and tasks never spawn
                            // tasks: nothing left to do.
                            None => break,
                        }
                    })
                    .expect("spawn batch worker");
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot poisoned")
                    .expect("scope joined, so every task ran")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn results_are_in_task_order() {
        // Make early tasks slow so completion order inverts task order.
        let out = BatchScheduler::new(4).run(
            (0..32)
                .map(|i| {
                    move |_w: usize| {
                        if i < 4 {
                            thread::sleep(Duration::from_millis(20));
                        }
                        i * 10
                    }
                })
                .collect(),
        );
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_inline_in_order() {
        let order = Mutex::new(Vec::new());
        let out = BatchScheduler::new(1).run(
            (0..8)
                .map(|i| {
                    let order = &order;
                    move |w: usize| {
                        assert_eq!(w, 0);
                        order.lock().unwrap().push(i);
                        i
                    }
                })
                .collect(),
        );
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_batches() {
        let none: Vec<i32> = BatchScheduler::new(4).run(Vec::<fn(usize) -> i32>::new());
        assert!(none.is_empty());
        let one = BatchScheduler::new(4).run(vec![|_w: usize| 42]);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn idle_workers_steal_from_loaded_ones() {
        // One long task pins a worker; the other workers must steal the
        // remaining short tasks instead of idling. If stealing is broken
        // the short tasks seeded behind the long one would wait the full
        // sleep, and distinct_workers would be 1.
        let workers_seen = Mutex::new(std::collections::BTreeSet::new());
        let done = AtomicUsize::new(0);
        BatchScheduler::new(3).run(
            (0..9)
                .map(|i| {
                    let workers_seen = &workers_seen;
                    let done = &done;
                    move |w: usize| {
                        workers_seen.lock().unwrap().insert(w);
                        if i == 0 {
                            // Wait until everyone else finished: only
                            // possible if the other workers made progress
                            // concurrently (and stole worker 0's share).
                            let deadline = std::time::Instant::now() + Duration::from_secs(10);
                            while done.load(Ordering::SeqCst) < 8 {
                                assert!(
                                    std::time::Instant::now() < deadline,
                                    "peers never stole worker 0's queued tasks"
                                );
                                thread::sleep(Duration::from_millis(1));
                            }
                        }
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .collect(),
        );
        assert_eq!(done.load(Ordering::SeqCst), 9);
        assert!(workers_seen.lock().unwrap().len() > 1);
    }

    #[test]
    fn jobs_zero_means_auto() {
        let s = BatchScheduler::new(0);
        assert!(s.jobs() >= 1);
        assert_eq!(s.jobs(), available_parallelism());
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let out = BatchScheduler::new(64).run((0..3).map(|i| move |_w: usize| i).collect());
        assert_eq!(out, vec![0, 1, 2]);
    }
}
