//! A std-only work-stealing task scheduler with cost-ordered seeding.
//!
//! The build environment has no crates.io access, so there is no rayon;
//! this is the classic scheme built from the standard library alone. Tasks
//! are seeded into one deque per worker — heaviest predicted cost first,
//! spread greedily across the least-loaded deques (longest-processing-time
//! order), so a batch with a few heavy goals starts them immediately
//! instead of discovering them last. Each worker drains its own deque from
//! the front and, when empty, steals from the *back* of its peers' deques
//! (back-stealing takes the work its owner would reach last, which keeps
//! contention on opposite ends of each deque). No task ever enqueues
//! another task, so a worker may exit as soon as every deque is empty.
//!
//! Determinism: results are written into a slot per task index, so the
//! returned `Vec` is always in task order no matter which worker finished
//! what, when. Scheduling (which worker runs which task) is *not*
//! deterministic — tasks must not depend on execution order, only on their
//! own input. Proof search satisfies this: goals are independent.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};
use std::thread;

use cycleq_trace::{lock_recover, metrics, Counter, Gauge};

/// Process-wide registry handles for scheduler activity.
#[derive(Debug, Clone)]
struct SchedulerMetrics {
    /// Tasks a worker popped from a peer's deque instead of its own.
    steals: Counter,
    /// Tasks executed (own pops + steals).
    tasks: Counter,
    /// Tasks currently queued across all live batch runs.
    queue_depth: Gauge,
    /// Tasks whose panic was caught and isolated into a [`TaskPanic`].
    task_panics: Counter,
}

fn scheduler_metrics() -> &'static SchedulerMetrics {
    static METRICS: OnceLock<SchedulerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SchedulerMetrics {
        steals: metrics().counter(
            "cycleq_batch_steals_total",
            "Batch tasks executed by a worker that stole them from a peer's queue.",
        ),
        tasks: metrics().counter(
            "cycleq_batch_tasks_total",
            "Batch tasks executed by the work-stealing scheduler (including inline runs).",
        ),
        queue_depth: metrics().gauge(
            "cycleq_batch_queue_depth",
            "Batch tasks currently queued and not yet started, across live runs.",
        ),
        task_panics: metrics().counter(
            "cycleq_batch_task_panics_total",
            "Batch tasks that panicked and were isolated into per-task failures.",
        ),
    })
}

/// A task that panicked instead of returning; the scheduler's catching
/// entry points turn the unwind into this structured per-task failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload, if it was a string (the common case for both
    /// `panic!` and assertion failures); a placeholder otherwise.
    pub message: String,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Extracts a human-readable message from a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one task under `catch_unwind`, counting caught panics.
///
/// `AssertUnwindSafe` is sound here because a panicking task's result slot
/// is overwritten with the `Err` — no caller observes state the task left
/// half-updated through the scheduler, and shared state reached through
/// captured references is itself poison-recovering.
fn run_task<T, F>(task: F, worker: usize, m: &SchedulerMetrics) -> Result<T, TaskPanic>
where
    F: FnOnce(usize) -> T,
{
    match catch_unwind(AssertUnwindSafe(|| task(worker))) {
        Ok(v) => Ok(v),
        Err(payload) => {
            m.task_panics.inc();
            Err(TaskPanic {
                message: panic_message(payload.as_ref()),
            })
        }
    }
}

/// Stack size for worker threads. Reduction and proof search recurse on
/// term structure, which for deep numeral towers can nest thousands of
/// frames; the default 2 MiB spawn stack is too tight, so workers get the
/// same order of headroom as the main thread.
const WORKER_STACK_BYTES: usize = 32 * 1024 * 1024;

/// The number of hardware threads, with a floor of 1 (used for `--jobs 0`
/// / "auto").
pub fn available_parallelism() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A fixed-width work-stealing executor for independent, indexed tasks.
#[derive(Copy, Clone, Debug)]
pub struct BatchScheduler {
    jobs: usize,
}

impl BatchScheduler {
    /// A scheduler running `jobs` workers; `0` means one worker per
    /// hardware thread.
    pub fn new(jobs: usize) -> BatchScheduler {
        BatchScheduler {
            jobs: if jobs == 0 {
                available_parallelism()
            } else {
                jobs
            },
        }
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every task and returns the results **in task order**, seeding
    /// the worker queues in task order (equal predicted costs).
    ///
    /// Each task receives the index of the worker running it (workers own
    /// per-worker state such as a term store, so the index lets callers
    /// pre-allocate one slot per worker). With one worker — or a single
    /// task — everything runs inline on the calling thread, in order: the
    /// sequential fallback involves no threads at all.
    ///
    /// # Panics
    ///
    /// If a task panics, the panic is caught and isolated (every other task
    /// still runs to completion), then re-raised to the caller after the
    /// batch finishes. Use [`BatchScheduler::run_catching`] to receive
    /// per-task failures instead.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce(usize) -> T + Send,
    {
        let costs = vec![1u64; tasks.len()];
        self.run_with_costs(tasks, &costs)
    }

    /// Like [`BatchScheduler::run`], but a panicking task yields
    /// `Err(TaskPanic)` in its slot instead of re-raising: the batch always
    /// completes, and the caller decides how a faulted task degrades.
    pub fn run_catching<T, F>(&self, tasks: Vec<F>) -> Vec<Result<T, TaskPanic>>
    where
        T: Send,
        F: FnOnce(usize) -> T + Send,
    {
        let costs = vec![1u64; tasks.len()];
        self.run_with_costs_catching(tasks, &costs)
    }

    /// Runs every task and returns the results **in task order**, seeding
    /// the worker queues by *predicted cost*: tasks are sorted
    /// heaviest-first (ties keep task order) and assigned greedily to the
    /// least-loaded queue, the classic longest-processing-time heuristic.
    /// A suite with a few heavy goals starts them immediately on separate
    /// workers instead of discovering them behind a wall of cheap ones,
    /// which is what bounds the batch's tail latency. Work stealing then
    /// mops up any misprediction.
    ///
    /// Costs are relative weights in arbitrary units (goal term size,
    /// milliseconds from a previous run, …); only their order and rough
    /// ratios matter. With uniform costs the seeding degenerates to the
    /// round-robin order [`BatchScheduler::run`] promises.
    ///
    /// # Panics
    ///
    /// Propagates task panics like [`BatchScheduler::run`]. A cost-length
    /// mismatch is a caller bug flagged by a `debug_assert`; release builds
    /// degrade gracefully (missing costs default to 1, extras are ignored)
    /// rather than killing a long-lived batch over a mispredicted hint.
    pub fn run_with_costs<T, F>(&self, tasks: Vec<F>, costs: &[u64]) -> Vec<T>
    where
        T: Send,
        F: FnOnce(usize) -> T + Send,
    {
        self.run_with_costs_catching(tasks, costs)
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(p) => panic!("batch {p}"),
            })
            .collect()
    }

    /// Like [`BatchScheduler::run_with_costs`], but with per-task panic
    /// isolation (see [`BatchScheduler::run_catching`]).
    pub fn run_with_costs_catching<T, F>(
        &self,
        tasks: Vec<F>,
        costs: &[u64],
    ) -> Vec<Result<T, TaskPanic>>
    where
        T: Send,
        F: FnOnce(usize) -> T + Send,
    {
        debug_assert_eq!(
            costs.len(),
            tasks.len(),
            "one predicted cost per task required"
        );
        // Costs are a scheduling *hint*: pad a short slice with the uniform
        // weight and ignore extras, rather than panicking in release.
        let cost_of = |i: usize| costs.get(i).copied().unwrap_or(1);
        let n = tasks.len();
        let workers = self.jobs.min(n).max(1);
        let sched_metrics = scheduler_metrics();
        if workers == 1 {
            sched_metrics.queue_depth.add(n as u64);
            return tasks
                .into_iter()
                .map(|t| {
                    sched_metrics.queue_depth.sub(1);
                    sched_metrics.tasks.inc();
                    run_task(t, 0, sched_metrics)
                })
                .collect();
        }
        // LPT seeding: heaviest task first, each to the least-loaded queue
        // (ties broken by queue index, so uniform costs reproduce the
        // historical round-robin order exactly).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(cost_of(i)));
        let queues: Vec<Mutex<VecDeque<(usize, F)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let mut load = vec![0u64; workers];
        let mut slots_of: Vec<Option<F>> = tasks.into_iter().map(Some).collect();
        for &i in &order {
            let w = (0..workers)
                .min_by_key(|&w| (load[w], w))
                .expect("workers >= 1");
            load[w] = load[w].saturating_add(cost_of(i).max(1));
            lock_recover(&queues[w])
                .push_back((i, slots_of[i].take().expect("each task seeded once")));
        }
        let slots: Vec<Mutex<Option<Result<T, TaskPanic>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        sched_metrics.queue_depth.add(n as u64);
        thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let slots = &slots;
                thread::Builder::new()
                    .name(format!("cycleq-batch-{w}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, move || {
                        cycleq_trace::set_thread_label(&format!("worker-{w}"));
                        loop {
                            let (job, stolen) = {
                                let own = lock_recover(&queues[w]).pop_front();
                                match own {
                                    Some(job) => (Some(job), false),
                                    None => (
                                        (1..workers).find_map(|off| {
                                            lock_recover(&queues[(w + off) % workers]).pop_back()
                                        }),
                                        true,
                                    ),
                                }
                            };
                            match job {
                                Some((i, task)) => {
                                    sched_metrics.queue_depth.sub(1);
                                    sched_metrics.tasks.inc();
                                    if stolen {
                                        sched_metrics.steals.inc();
                                    }
                                    let out = run_task(task, w, sched_metrics);
                                    *lock_recover(&slots[i]) = Some(out);
                                }
                                // Every deque empty and tasks never spawn
                                // tasks: nothing left to do.
                                None => break,
                            }
                        }
                    })
                    .expect("spawn batch worker");
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("scope joined, so every task ran")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn results_are_in_task_order() {
        // Make early tasks slow so completion order inverts task order.
        let out = BatchScheduler::new(4).run(
            (0..32)
                .map(|i| {
                    move |_w: usize| {
                        if i < 4 {
                            thread::sleep(Duration::from_millis(20));
                        }
                        i * 10
                    }
                })
                .collect(),
        );
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_inline_in_order() {
        let order = Mutex::new(Vec::new());
        let out = BatchScheduler::new(1).run(
            (0..8)
                .map(|i| {
                    let order = &order;
                    move |w: usize| {
                        assert_eq!(w, 0);
                        order.lock().unwrap().push(i);
                        i
                    }
                })
                .collect(),
        );
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_batches() {
        let none: Vec<i32> = BatchScheduler::new(4).run(Vec::<fn(usize) -> i32>::new());
        assert!(none.is_empty());
        let one = BatchScheduler::new(4).run(vec![|_w: usize| 42]);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn idle_workers_steal_from_loaded_ones() {
        // One long task pins a worker; the other workers must steal the
        // remaining short tasks instead of idling. If stealing is broken
        // the short tasks seeded behind the long one would wait the full
        // sleep, and distinct_workers would be 1.
        let workers_seen = Mutex::new(std::collections::BTreeSet::new());
        let done = AtomicUsize::new(0);
        BatchScheduler::new(3).run(
            (0..9)
                .map(|i| {
                    let workers_seen = &workers_seen;
                    let done = &done;
                    move |w: usize| {
                        workers_seen.lock().unwrap().insert(w);
                        if i == 0 {
                            // Wait until everyone else finished: only
                            // possible if the other workers made progress
                            // concurrently (and stole worker 0's share).
                            let deadline = std::time::Instant::now() + Duration::from_secs(10);
                            while done.load(Ordering::SeqCst) < 8 {
                                assert!(
                                    std::time::Instant::now() < deadline,
                                    "peers never stole worker 0's queued tasks"
                                );
                                thread::sleep(Duration::from_millis(1));
                            }
                        }
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .collect(),
        );
        assert_eq!(done.load(Ordering::SeqCst), 9);
        assert!(workers_seen.lock().unwrap().len() > 1);
    }

    #[test]
    fn cost_ordered_results_stay_in_task_order() {
        // Costs descending-by-index: the scheduler reorders *execution*,
        // never results.
        let costs: Vec<u64> = (0..32).map(|i| 32 - i).collect();
        let out = BatchScheduler::new(4)
            .run_with_costs((0..32u64).map(|i| move |_w: usize| i * 7).collect(), &costs);
        assert_eq!(out, (0..32).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn heavy_tasks_are_seeded_first() {
        // Task 30 is predicted heaviest, so it must be popped before the
        // cheap tasks seeded ahead of it in index order. Record the global
        // start order and check the heavy task is started among the first
        // `workers` tasks.
        let started = Mutex::new(Vec::new());
        let heavy = 30usize;
        let mut costs = vec![1u64; 32];
        costs[heavy] = 1_000;
        BatchScheduler::new(2).run_with_costs(
            (0..32usize)
                .map(|i| {
                    let started = &started;
                    move |_w: usize| {
                        started.lock().unwrap().push(i);
                    }
                })
                .collect(),
            &costs,
        );
        let order = started.lock().unwrap();
        let pos = order.iter().position(|&i| i == heavy).unwrap();
        assert!(
            pos < 2,
            "heavy task started at position {pos}, expected within the first 2: {order:?}"
        );
    }

    #[test]
    fn uniform_costs_reproduce_round_robin_seeding() {
        // With one worker the inline path runs in task order either way;
        // this pins the delegation itself.
        let out = BatchScheduler::new(1).run((0..8).map(|i| move |_w: usize| i).collect());
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    /// A cost-length mismatch is a caller bug: debug builds assert.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "one predicted cost per task")]
    fn mismatched_costs_panic_in_debug() {
        let _ = BatchScheduler::new(2)
            .run_with_costs((0..4).map(|i| move |_w: usize| i).collect(), &[1, 2]);
    }

    /// Release builds degrade gracefully on a cost-length mismatch: the
    /// short slice is padded with uniform weights and every task still runs
    /// to completion, in task order.
    #[cfg(not(debug_assertions))]
    #[test]
    fn mismatched_costs_pad_in_release() {
        let out = BatchScheduler::new(2)
            .run_with_costs((0..4).map(|i| move |_w: usize| i).collect(), &[1, 2]);
        assert_eq!(out, vec![0, 1, 2, 3]);
        let out = BatchScheduler::new(2)
            .run_with_costs((0..2).map(|i| move |_w: usize| i).collect(), &[1, 2, 3, 4]);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn panicking_task_is_isolated() {
        for jobs in [1, 4] {
            let results = BatchScheduler::new(jobs).run_catching(
                (0..8)
                    .map(|i| {
                        move |_w: usize| {
                            assert!(i != 3, "task 3 exploded");
                            i * 2
                        }
                    })
                    .collect(),
            );
            assert_eq!(results.len(), 8, "jobs={jobs}");
            for (i, r) in results.iter().enumerate() {
                if i == 3 {
                    let p = r.as_ref().expect_err("task 3 must fail");
                    assert!(p.message.contains("task 3 exploded"), "{p}");
                } else {
                    assert_eq!(*r.as_ref().expect("healthy task"), i * 2);
                }
            }
        }
    }

    #[test]
    fn run_repanics_after_the_batch_completes() {
        // The re-raise happens only after every other task ran: the counter
        // must reach 7 even though one task panicked.
        let done = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            BatchScheduler::new(2).run(
                (0..8)
                    .map(|i| {
                        let done = &done;
                        move |_w: usize| {
                            assert!(i != 0, "first task exploded");
                            done.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                    .collect(),
            )
        }));
        assert!(caught.is_err());
        assert_eq!(done.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn jobs_zero_means_auto() {
        let s = BatchScheduler::new(0);
        assert!(s.jobs() >= 1);
        assert_eq!(s.jobs(), available_parallelism());
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let out = BatchScheduler::new(64).run((0..3).map(|i| move |_w: usize| i).collect());
        assert_eq!(out, vec![0, 1, 2]);
    }
}
