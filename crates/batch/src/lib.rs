//! Parallel goal batching for CycleQ.
//!
//! CycleQ goals are proved independently — the paper's evaluation (§6.1) is
//! per-goal wall clock over a suite — so a batch of goals is an
//! embarrassingly parallel workload. This crate provides the two pieces
//! that turn the one-goal prover into a suite-scale engine:
//!
//! - [`BatchScheduler`]: a std-only work-stealing executor
//!   (`std::thread::scope` + per-worker deques, no external crates) that
//!   fans indexed tasks out across `--jobs` workers and returns results in
//!   *task order*, independent of completion order; seeding is
//!   cost-ordered ([`BatchScheduler::run_with_costs`]) so predicted-heavy
//!   goals start first and bound the batch's tail latency;
//! - [`SharedNormalFormCache`] (re-exported from `cycleq_rewrite`): the
//!   program-scoped cache each worker's `MemoRewriter` consults, so hint
//!   goals, re-proved lemmas and benchmark suites share reductions across
//!   workers and across `prove` calls.
//!
//! Each worker owns its own term store and memo table (per-goal search
//! stays lock-free); the shared cache is the only synchronised state, and
//! it is sharded. `cycleq::Session::prove_all` and
//! `cycleq_benchsuite::run_suite` are the main consumers.

mod scheduler;

pub use cycleq_rewrite::{CacheStats, SharedNormalFormCache};
pub use scheduler::{available_parallelism, panic_message, BatchScheduler, TaskPanic};
