//! Benchmark helpers for the CycleQ reproduction.
