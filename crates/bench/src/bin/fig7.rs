//! Regenerates Figure 7 and the §6.1 summary statistics.
//!
//! Figure 7 plots the number of IsaPlanner problems solved within a given
//! time bound. This binary runs the 85-problem suite (averaging over
//! `--runs N` repetitions, default 3, as the paper averages over 10),
//! prints the cumulative series as a text plot plus a data table, and the
//! summary row reported in the text: problems solved, solved under 100 ms,
//! and mean time.
//!
//! Usage: `fig7 [--runs N] [--timeout-ms N] [--csv]`

use std::time::Duration;

use cycleq::SearchConfig;
use cycleq_benchsuite::{cactus_series, run_suite, summarize, RunConfig, RunStatus, ISAPLANNER};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut runs = 3usize;
    let mut timeout_ms = 2000u64;
    let mut as_csv = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--runs" => {
                i += 1;
                runs = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(3);
            }
            "--timeout-ms" => {
                i += 1;
                timeout_ms = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(2000);
            }
            "--csv" => as_csv = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let problems: Vec<_> = ISAPLANNER.iter().collect();
    let config = RunConfig {
        search: SearchConfig {
            timeout: Some(Duration::from_millis(timeout_ms)),
            ..SearchConfig::default()
        },
        with_hints: false,
        recheck: true,
        ..RunConfig::default()
    };

    // Average solve times across runs (status taken from the first run;
    // statuses are deterministic).
    let mut batches = Vec::with_capacity(runs);
    for _ in 0..runs {
        batches.push(run_suite(&problems, &config));
    }
    let mut averaged = batches[0].clone();
    for out in &mut averaged {
        let times: Vec<Duration> = batches
            .iter()
            .map(|b| {
                b.iter()
                    .find(|o| o.problem.id == out.problem.id)
                    .expect("same problem set")
                    .time
            })
            .collect();
        let total: Duration = times.iter().sum();
        out.time = total / (times.len() as u32);
    }

    let series = cactus_series(&averaged);
    if as_csv {
        println!("time_ms,solved");
        for (t, n) in &series {
            println!("{t:.3},{n}");
        }
        return;
    }

    println!("Figure 7 — cumulative IsaPlanner problems solved vs. time ({runs} run average)");
    println!();
    // Text plot: logarithmic time buckets matching the paper's axis.
    let buckets = [0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0];
    for b in buckets {
        let solved = series.iter().filter(|(t, _)| *t <= b).count();
        let bar = "#".repeat(solved);
        println!("{b:>9.2} ms | {bar} {solved}");
    }
    println!();
    println!("{:>10}  {:>6}", "time(ms)", "solved");
    for (t, n) in &series {
        println!("{t:>10.3}  {n:>6}");
    }
    println!();
    let s = summarize(&averaged);
    println!(
        "== Summary (paper §6.1: 44 solved, 13 out of scope, 40 under 100 ms, mean 129 ms) =="
    );
    println!(
        "solved {} / {} in scope | out-of-scope {} | <100ms {} | mean {:.2} ms | max {:.2} ms",
        s.proved,
        s.attempted,
        s.out_of_scope,
        s.proved_under_100ms,
        s.mean_proved_ms,
        s.max_proved_ms
    );
    let failures: Vec<&str> = averaged
        .iter()
        .filter(|o| !o.status.is_proved() && o.status != RunStatus::OutOfScope)
        .map(|o| o.problem.id)
        .collect();
    println!("unsolved (in scope): {}", failures.join(" "));
}
