//! Full benchmark-suite runner: prints the per-problem table, the §6.1
//! summary statistics, and (with `--csv`) machine-readable output.
//!
//! Usage:
//!
//! ```text
//! suite [--category isaplanner|mutual|figure] [--quick] [--jobs N]
//!       [--hints] [--csv] [--profile] [--timeout-ms N] [--emit-certs DIR]
//!       [--emit-sources DIR]
//! ```
//!
//! `--jobs N` fans problems out across N worker threads (0 = one per
//! hardware thread); output order stays declaration order. `--quick`
//! restricts the run to the fast figure + mutual-induction problems — the
//! combination `--quick --jobs 2` is the CI smoke test for the parallel
//! scheduler. `--emit-certs DIR` writes a `<id>.cqc` certificate for every
//! proved problem, producing the corpus that `cycleq check` re-validates in
//! CI. `--emit-sources DIR` skips the run entirely and instead dumps every
//! selected problem's module source as `<id>.hs` — the corpus that
//! `cycleq lint` sweeps in CI. `--profile` appends a per-problem
//! phase-time table (prove_goal / round / expand / normalize /
//! closure_update / check) read back from the `cycleq_trace` registry —
//! combine with `--jobs 1` (the default) for exact per-problem
//! attribution. Exits non-zero when any problem is refuted or errors (a
//! mis-encoded property), so CI catches those too.

use std::time::Duration;

use cycleq::SearchConfig;
use cycleq_benchsuite::{
    all_problems, csv, profile_table, run_suite, summarize, text_table, Category, RunConfig,
    RunStatus,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut category: Option<Category> = None;
    let mut with_hints = false;
    let mut as_csv = false;
    let mut quick = false;
    let mut profile = false;
    let mut jobs: usize = 1;
    let mut timeout_ms: u64 = 2000;
    let mut emit_certs: Option<std::path::PathBuf> = None;
    let mut emit_sources: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--category" => {
                i += 1;
                category = match args.get(i).map(String::as_str) {
                    Some("isaplanner") => Some(Category::IsaPlanner),
                    Some("mutual") => Some(Category::Mutual),
                    Some("figure") => Some(Category::Figure),
                    other => {
                        eprintln!("unknown category {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--hints" => with_hints = true,
            "--csv" => as_csv = true,
            "--quick" => quick = true,
            "--profile" => profile = true,
            "--jobs" => {
                i += 1;
                jobs = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs needs a number");
                    std::process::exit(2);
                });
            }
            "--timeout-ms" => {
                i += 1;
                timeout_ms = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--timeout-ms needs a number");
                    std::process::exit(2);
                });
            }
            "--emit-certs" => {
                i += 1;
                emit_certs = args.get(i).map(std::path::PathBuf::from).or_else(|| {
                    eprintln!("--emit-certs needs a directory");
                    std::process::exit(2);
                });
            }
            "--emit-sources" => {
                i += 1;
                emit_sources = args.get(i).map(std::path::PathBuf::from).or_else(|| {
                    eprintln!("--emit-sources needs a directory");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let problems: Vec<_> = all_problems()
        .into_iter()
        .filter(|p| category.is_none_or(|c| p.category == c))
        .filter(|p| !quick || p.category != Category::IsaPlanner)
        .collect();
    if let Some(dir) = &emit_sources {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create source directory {}: {e}", dir.display());
            std::process::exit(2);
        }
        let mut written = 0usize;
        for p in &problems {
            let Some(src) = p.source() else { continue };
            let path = dir.join(format!("{}.hs", p.id));
            if let Err(e) = std::fs::write(&path, src) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
            written += 1;
        }
        println!("emitted {written} problem sources to {}", dir.display());
        return;
    }
    let config = RunConfig {
        search: SearchConfig {
            timeout: Some(Duration::from_millis(timeout_ms)),
            ..SearchConfig::default()
        },
        with_hints,
        recheck: true,
        jobs,
        emit_certs: emit_certs.clone(),
        profile,
    };
    if let Some(dir) = &emit_certs {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create certificate directory {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    let outcomes = run_suite(&problems, &config);
    if as_csv {
        print!("{}", csv(&outcomes));
    } else {
        print!("{}", text_table(&outcomes));
        let s = summarize(&outcomes);
        println!();
        println!(
            "attempted {} | proved {} | out-of-scope {} | <100ms {} | mean {:.2}ms | max {:.2}ms | jobs {}",
            s.attempted,
            s.proved,
            s.out_of_scope,
            s.proved_under_100ms,
            s.mean_proved_ms,
            s.max_proved_ms,
            config.jobs,
        );
        if profile {
            println!();
            print!("{}", profile_table(&outcomes));
        }
    }
    let broken = outcomes
        .iter()
        .any(|o| matches!(o.status, RunStatus::Refuted | RunStatus::Error(_)));
    if broken {
        eprintln!("error: a problem was refuted or failed to load — mis-encoded property?");
        std::process::exit(1);
    }
}
