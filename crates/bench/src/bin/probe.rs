//! Developer probe: run one suite problem with a chosen timeout/depth and
//! print the outcome and statistics. Usage: `probe IP79 [timeout_ms] [depth]`.

use std::time::Duration;

use cycleq::{Engine, SearchConfig};
use cycleq_benchsuite::all_problems;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(String::as_str).unwrap_or("IP79");
    let timeout: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let depth: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(24);
    let p = all_problems()
        .into_iter()
        .find(|p| p.id == id)
        .unwrap_or_else(|| panic!("unknown problem {id}"));
    let src = p.source().expect("problem in scope");
    let session = Engine::builder()
        .config(SearchConfig {
            timeout: Some(Duration::from_millis(timeout)),
            max_depth: depth,
            ..SearchConfig::default()
        })
        .build()
        .load(&src)
        .unwrap();
    let v = session.prove(&p.goal_name()).unwrap();
    println!("{id}: {:?}", v.result.outcome);
    println!("stats: {:#?}", v.result.stats);
    // One greppable line for the size-change engine counters, asserted
    // non-trivial by the CI smoke step so they cannot silently rot.
    let s = &v.result.stats;
    println!(
        "closure: graphs={} interned={} compositions={} memo_hits={} subsumed={}",
        s.closure_graphs,
        s.interned_graphs,
        s.closure_compositions,
        s.composition_memo_hits,
        s.graphs_subsumed,
    );
}
