//! Experiment E7 (§5.1): the lemma restriction ablation.
//!
//! The paper restricts `(Subst)` lemmas to `(Case)`-justified nodes,
//! arguing the other candidates are redundant (in the commutativity proof:
//! 3 candidates instead of 16 vertices). This bench proves the same goals
//! under `LemmaPolicy::CaseOnly` and `LemmaPolicy::AllNodes`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cycleq::{Engine, LemmaPolicy, SearchConfig, Session};
use cycleq_benchsuite::PRELUDE;

fn session(goal: &str, policy: LemmaPolicy) -> Session {
    let src = format!("{PRELUDE}\ngoal g: {goal}\n");
    Engine::builder()
        .config(SearchConfig {
            lemma_policy: policy,
            timeout: Some(Duration::from_secs(30)),
            ..SearchConfig::default()
        })
        .recheck(false)
        .build()
        .load(&src)
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let goals = [
        ("add_comm", "add x y === add y x"),
        ("add_assoc", "add (add x y) z === add x (add y z)"),
        ("take_drop", "app (take n xs) (drop n xs) === xs"),
        (
            "butlast_take",
            "butlast xs === take (sub (len xs) (S Z)) xs",
        ),
    ];
    let mut group = c.benchmark_group("lemma_policy");
    group.sample_size(10);
    for (name, goal) in goals {
        for (policy_name, policy) in [
            ("case_only", LemmaPolicy::CaseOnly),
            ("all_nodes", LemmaPolicy::AllNodes),
        ] {
            let s = session(goal, policy);
            group.bench_with_input(BenchmarkId::new(policy_name, name), &s, |b, s| {
                b.iter(|| {
                    let v = s.prove("g").unwrap();
                    assert!(
                        v.is_proved(),
                        "{name}/{policy_name}: {:?}",
                        v.result.outcome
                    );
                    v.result.stats.nodes_created
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
