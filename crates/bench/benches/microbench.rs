//! Micro-benchmarks of the substrate operations the prover performs
//! constantly: normalisation, matching, unification and size-change graph
//! composition/closure (with deterministic randomised workloads).

use criterion::{criterion_group, criterion_main, Criterion};
use cycleq_rewrite::fixtures::nat_list_program;
use cycleq_rewrite::{MemoRewriter, Rewriter};
use cycleq_sizechange::{Closure, GraphStore, IncrementalClosure, Label, ScGraph};
use cycleq_term::{match_term, unify, Term, TermStore, VarStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_normalize(c: &mut Criterion) {
    let p = nat_list_program();
    let rw = Rewriter::new(&p.prog.sig, &p.prog.trs);
    // A balanced add-tree with 64 leaves of S^8 Z.
    fn tree(p: &cycleq_rewrite::fixtures::ProgramFixture, depth: usize) -> Term {
        if depth == 0 {
            p.f.num(8)
        } else {
            Term::apps(p.f.add, vec![tree(p, depth - 1), tree(p, depth - 1)])
        }
    }
    let t = tree(&p, 6);
    c.bench_function("normalize_add_tree_64x8", |b| {
        b.iter(|| {
            let n = rw.normalize(&t);
            assert!(n.in_normal_form);
            n.steps
        })
    });
    // The same workload on hash-consed terms. "cold" pays interning and a
    // fresh memo table per iteration (the tree's repeated subterms are
    // still shared within the run); "warm" reuses the table across
    // iterations, which is how the prover uses it within one goal.
    c.bench_function("normalize_add_tree_64x8_interned_cold", |b| {
        b.iter(|| {
            let mut memo = MemoRewriter::new(&p.prog.sig, &p.prog.trs);
            let id = memo.intern(&t);
            let n = memo.normalize_id(id);
            assert!(n.in_normal_form);
            n.steps
        })
    });
    let mut warm = MemoRewriter::new(&p.prog.sig, &p.prog.trs);
    let warm_id = warm.intern(&t);
    c.bench_function("normalize_add_tree_64x8_interned_warm", |b| {
        b.iter(|| {
            let n = warm.normalize_id(warm_id);
            assert!(n.in_normal_form);
            n.id
        })
    });
}

fn bench_matching(c: &mut Criterion) {
    let p = nat_list_program();
    let mut vars = VarStore::new();
    let xs: Vec<_> = (0..6)
        .map(|i| vars.fresh(&format!("x{i}"), p.f.nat_ty()))
        .collect();
    // A pattern with 6 distinct variables over a deep term.
    fn pat(p: &cycleq_rewrite::fixtures::ProgramFixture, vs: &[cycleq_term::VarId]) -> Term {
        vs.iter().fold(Term::sym(p.f.zero), |acc, v| {
            Term::apps(p.f.add, vec![acc, Term::var(*v)])
        })
    }
    let pattern = pat(&p, &xs);
    let subject = {
        let mut s = cycleq_term::Subst::new();
        for (i, v) in xs.iter().enumerate() {
            s.insert(*v, p.f.num(i));
        }
        s.apply(&pattern)
    };
    c.bench_function("match_6_vars", |b| {
        b.iter(|| match_term(&pattern, &subject).expect("matches"))
    });
    let mut store = TermStore::new();
    let pid = store.intern(&pattern);
    let sid = store.intern(&subject);
    c.bench_function("match_6_vars_interned", |b| {
        b.iter(|| store.match_terms(pid, sid).expect("matches"))
    });
    c.bench_function("unify_with_instance", |b| {
        b.iter(|| unify(&pattern, &subject).expect("unifies"))
    });
}

fn bench_closure(c: &mut Criterion) {
    // Deterministic random call-graph of 6 nodes, 12 edges, 4 variables.
    let mut rng = StdRng::seed_from_u64(0xC1C1E);
    let mut edges = Vec::new();
    for _ in 0..12 {
        let a = rng.gen_range(0..6usize);
        let b = rng.gen_range(0..6usize);
        let mut g = ScGraph::new();
        for _ in 0..rng.gen_range(1..5) {
            let x = rng.gen_range(0..4u32);
            let y = rng.gen_range(0..4u32);
            let l = if rng.gen_bool(0.4) {
                Label::Strict
            } else {
                Label::NonStrict
            };
            g.insert(x, y, l);
        }
        edges.push((a, b, g));
    }
    c.bench_function("closure_random_12_edges", |b| {
        b.iter(|| {
            let cl = Closure::from_edges(edges.iter().cloned());
            (cl.num_graphs(), cl.check())
        })
    });
}

/// The `add_comm`-shaped incremental workload: a two-node cycle whose
/// edges are repeatedly added and undone, as the prover does across
/// backtracking and deepening rounds. Compares the subsumption-pruned
/// engine against the prune-free one, and the memoized composition path
/// against a cold store.
fn bench_sizechange_closure(c: &mut Criterion) {
    // Deterministic edge pool shaped like the commutativity proof: two
    // nodes, forward edges with a strict hop, back edges that rename, over
    // 4 variables.
    let mut rng = StdRng::seed_from_u64(0xADDC0);
    let mut edges: Vec<(usize, usize, ScGraph<u32>)> = Vec::new();
    for i in 0..10 {
        let (a, b) = if i % 2 == 0 { (0, 1) } else { (1, 0) };
        let mut g = ScGraph::new();
        for _ in 0..rng.gen_range(2..5) {
            let x = rng.gen_range(0..4u32);
            let y = rng.gen_range(0..4u32);
            let l = if rng.gen_bool(0.5) {
                Label::Strict
            } else {
                Label::NonStrict
            };
            g.insert(x, y, l);
        }
        // Keep the cycle plausibly sound: every edge keeps a strict
        // self-trace on variable 0, like the analysed induction variable.
        g.insert(0, 0, Label::Strict);
        edges.push((a, b, g));
    }

    let mut group = c.benchmark_group("sizechange_closure");
    let rounds = 6;
    group.bench_function("incremental_add_undo", |b| {
        b.iter(|| {
            let mut inc = IncrementalClosure::new();
            for round in 0..rounds {
                let mark = inc.mark();
                for (a, b, g) in &edges {
                    inc.add_edge(*a, *b, g.clone());
                }
                if round < rounds - 1 {
                    inc.undo_to(mark);
                }
            }
            inc.num_graphs()
        })
    });
    group.bench_function("incremental_add_undo_no_subsumption", |b| {
        b.iter(|| {
            let mut inc = IncrementalClosure::without_subsumption();
            for round in 0..rounds {
                let mark = inc.mark();
                for (a, b, g) in &edges {
                    inc.add_edge(*a, *b, g.clone());
                }
                if round < rounds - 1 {
                    inc.undo_to(mark);
                }
            }
            inc.num_graphs()
        })
    });

    // Cold vs memoized composition on the graphs the workload produces.
    let pool: Vec<ScGraph<u32>> = edges.iter().map(|(_, _, g)| g.clone()).collect();
    group.bench_function("seq_cold", |b| {
        b.iter(|| {
            let mut store = GraphStore::new();
            let ids: Vec<_> = pool.iter().map(|g| store.intern(g)).collect();
            let mut acc = 0usize;
            for &x in &ids {
                for &y in &ids {
                    acc += store.seq(x, y).index();
                }
            }
            acc
        })
    });
    let mut warm = GraphStore::new();
    let warm_ids: Vec<_> = pool.iter().map(|g| warm.intern(g)).collect();
    // Populate the memo once; iterations below are pure hits.
    for &x in &warm_ids {
        for &y in &warm_ids {
            warm.seq(x, y);
        }
    }
    group.bench_function("seq_memoized", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &x in &warm_ids {
                for &y in &warm_ids {
                    acc += warm.seq(x, y).index();
                }
            }
            acc
        })
    });
    group.bench_function("seq_owned_scgraph", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for x in &pool {
                for y in &pool {
                    acc += x.seq(y).len();
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_normalize,
    bench_matching,
    bench_closure,
    bench_sizechange_closure
);
criterion_main!(benches);
