//! Overhead of the `cycleq_trace` span machinery.
//!
//! The span sites sit on the prover's hottest paths (every normalisation,
//! every expansion), so the disabled case must stay near-free: a relaxed
//! atomic load and nothing else. This bench pins that claim — compare
//! `span_disabled` against the `baseline_loop` floor — and measures the
//! enabled (histogram-feeding) and collecting (record-buffering) cases plus
//! the end-to-end effect on a headline goal.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use cycleq::{Engine, SearchConfig};

const QUICKSTART: &str = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
goal addComm: add x y === add y x
";

fn bench_span_sites(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    // The floor: the same loop body without a span site.
    g.bench_function("baseline_loop", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        })
    });
    // Disabled (the default): one relaxed atomic load per span.
    cycleq::trace::set_enabled(false);
    g.bench_function("span_disabled", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                let _span = cycleq::trace::span!("bench");
                acc = acc.wrapping_add(i);
            }
            acc
        })
    });
    // Enabled without collection: each span end feeds a phase histogram.
    cycleq::trace::set_enabled(true);
    g.bench_function("span_enabled", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                let _span = cycleq::trace::span!("bench");
                acc = acc.wrapping_add(i);
            }
            acc
        })
    });
    // Collecting: spans additionally buffer records for the trace file.
    cycleq::trace::start_collect();
    g.bench_function("span_collecting", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                let _span = cycleq::trace::span!("bench");
                acc = acc.wrapping_add(i);
            }
            acc
        })
    });
    let _ = cycleq::trace::finish_collect();
    cycleq::trace::set_enabled(false);
    g.finish();
}

fn bench_headline_goal(c: &mut Criterion) {
    let engine = Engine::builder()
        .config(SearchConfig {
            timeout: Some(Duration::from_secs(10)),
            ..SearchConfig::default()
        })
        .build();
    let session = engine.load(QUICKSTART).expect("quickstart loads");
    let mut g = c.benchmark_group("trace_overhead");
    // End to end with tracing disabled — the configuration every user who
    // never passes --trace-out/--metrics-out runs in.
    cycleq::trace::set_enabled(false);
    g.bench_function("prove_add_comm_tracing_off", |b| {
        b.iter(|| {
            let v = session.prove("addComm").expect("proves");
            assert!(v.is_proved());
            v.result.stats.nodes_created
        })
    });
    cycleq::trace::set_enabled(true);
    g.bench_function("prove_add_comm_tracing_on", |b| {
        b.iter(|| {
            let v = session.prove("addComm").expect("proves");
            assert!(v.is_proved());
            v.result.stats.nodes_created
        })
    });
    cycleq::trace::set_enabled(false);
    g.finish();
}

criterion_group!(benches, bench_span_sites, bench_headline_goal);
criterion_main!(benches);
