//! Experiment E3 (§6.1): the mutual-induction suite.
//!
//! The paper reports all mutual-induction problems solved in 5.3 ms on
//! average; this bench measures each of the eight problems in our suite.

use criterion::{criterion_group, criterion_main, Criterion};
use cycleq::Engine;
use cycleq_benchsuite::MUTUAL;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutual_induction");
    for p in MUTUAL {
        let src = p.source().expect("mutual problems are in scope");
        let session = Engine::builder().recheck(false).build().load(&src).unwrap();
        let goal = p.goal_name();
        group.bench_function(p.id, |b| {
            b.iter(|| {
                let v = session.prove(&goal).unwrap();
                assert!(v.is_proved(), "{}: {:?}", p.id, v.result.outcome);
                v.result.proof.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
