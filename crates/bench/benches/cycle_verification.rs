//! Experiment E6 (§5.2): the cost of verifying the global correctness
//! condition.
//!
//! Cyclist re-verifies candidate proofs from scratch as they grow, which the
//! paper identifies as a dominant cost. We compare three regimes on the
//! edge lists of real proofs produced by the search:
//!
//! - `batch_once`: one closure computation over the finished proof (the
//!   checker's job; a lower bound);
//! - `recheck_per_step`: a fresh batch closure after every added edge — the
//!   naive search-time discipline;
//! - `incremental`: the trail-based incremental closure the search actually
//!   uses, extended edge by edge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cycleq::{NodeId, Session};
use cycleq_benchsuite::{MUTUAL_PRELUDE, PRELUDE};
use cycleq_sizechange::{Closure, IncrementalClosure, ScGraph};
use cycleq_term::VarId;

type Edges = Vec<(NodeId, NodeId, ScGraph<VarId>)>;

fn proof_edges(prelude: &str, goal: &str) -> Edges {
    let src = format!("{prelude}\ngoal g: {goal}\n");
    let session = Session::from_source(&src).unwrap();
    let v = session.prove("g").unwrap();
    assert!(v.is_proved(), "{goal}: {:?}", v.result.outcome);
    cycleq::global_edges(&v.result.proof)
}

fn bench(c: &mut Criterion) {
    let cases: Vec<(&str, Edges)> = vec![
        ("add_comm", proof_edges(PRELUDE, "add x y === add y x")),
        (
            "butlast_take",
            proof_edges(PRELUDE, "butlast xs === take (sub (len xs) (S Z)) xs"),
        ),
        ("mapE_id", proof_edges(MUTUAL_PRELUDE, "mapE id e === e")),
    ];
    let mut group = c.benchmark_group("cycle_verification");
    for (name, edges) in &cases {
        group.bench_with_input(BenchmarkId::new("batch_once", name), edges, |b, edges| {
            b.iter(|| Closure::from_edges(edges.iter().cloned()).check())
        });
        group.bench_with_input(
            BenchmarkId::new("recheck_per_step", name),
            edges,
            |b, edges| {
                b.iter(|| {
                    let mut verdict = None;
                    for i in 1..=edges.len() {
                        verdict = Some(Closure::from_edges(edges[..i].iter().cloned()).check());
                    }
                    verdict
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("incremental", name), edges, |b, edges| {
            b.iter(|| {
                let mut inc = IncrementalClosure::new();
                let mut verdict = None;
                for (a, bb, g) in edges {
                    verdict = Some(inc.add_edge(*a, *bb, g.clone()));
                }
                verdict
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
