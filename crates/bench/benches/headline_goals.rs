//! Experiment E4: the individual goals the paper calls out.
//!
//! - Fig. 2 / IsaPlanner 50: `butLast xs ≈ take (len xs − S Z) xs`, which
//!   CycleQ proves in ~40 ms (HipSpec: ~40 s);
//! - Fig. 4: commutativity of addition, proved with no hints;
//! - Fig. 1: the mutual-induction functor law;
//! - Fig. 9: `map id xs ≈ xs`.
//!
//! The `cache_cold_vs_shared` group re-proves the same goal through one
//! session twice over: `cold` detaches the shared normal-form cache (every
//! prove recomputes all reductions, the pre-batching behaviour), `shared`
//! keeps the program-scoped cache attached so iterations after the first
//! replay reductions from it — the single-goal view of what a batch run
//! shares across workers.

use criterion::{criterion_group, criterion_main, Criterion};
use cycleq::{Engine, Session};
use cycleq_benchsuite::{MUTUAL_PRELUDE, PRELUDE};

fn session(prelude: &str, goal: &str) -> Session {
    let src = format!("{prelude}\ngoal g: {goal}\n");
    Engine::builder().recheck(false).build().load(&src).unwrap()
}

fn cold_session(prelude: &str, goal: &str) -> Session {
    let src = format!("{prelude}\ngoal g: {goal}\n");
    Engine::builder()
        .recheck(false)
        .shared_cache(false)
        .build()
        .load(&src)
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let cases = [
        (
            "fig2_butlast_take_ip50",
            PRELUDE,
            "butlast xs === take (sub (len xs) (S Z)) xs",
        ),
        ("fig4_add_comm", PRELUDE, "add x y === add y x"),
        ("fig1_mapE_id", MUTUAL_PRELUDE, "mapE id e === e"),
        ("fig9_map_id", PRELUDE, "map id xs === xs"),
        (
            "ip01_take_drop",
            PRELUDE,
            "app (take n xs) (drop n xs) === xs",
        ),
    ];
    let mut group = c.benchmark_group("headline_goals");
    for (name, prelude, goal) in cases {
        let s = session(prelude, goal);
        group.bench_function(name, |b| {
            b.iter(|| {
                let v = s.prove("g").unwrap();
                assert!(v.is_proved(), "{name}: {:?}", v.result.outcome);
                v.result.proof.len()
            })
        });
    }
    group.finish();

    let mut cache_group = c.benchmark_group("cache_cold_vs_shared");
    for (name, prelude, goal) in [
        ("fig4_add_comm", PRELUDE, "add x y === add y x"),
        ("fig9_map_id", PRELUDE, "map id xs === xs"),
    ] {
        let cold = cold_session(prelude, goal);
        cache_group.bench_function(format!("{name}_cold"), |b| {
            b.iter(|| {
                let v = cold.prove("g").unwrap();
                assert!(v.is_proved());
                v.result.stats.nodes_created
            })
        });
        let shared = session(prelude, goal);
        cache_group.bench_function(format!("{name}_shared"), |b| {
            b.iter(|| {
                let v = shared.prove("g").unwrap();
                assert!(v.is_proved());
                v.result.stats.nodes_created
            })
        });
    }
    cache_group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
