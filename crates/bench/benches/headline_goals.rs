//! Experiment E4: the individual goals the paper calls out.
//!
//! - Fig. 2 / IsaPlanner 50: `butLast xs ≈ take (len xs − S Z) xs`, which
//!   CycleQ proves in ~40 ms (HipSpec: ~40 s);
//! - Fig. 4: commutativity of addition, proved with no hints;
//! - Fig. 1: the mutual-induction functor law;
//! - Fig. 9: `map id xs ≈ xs`.

use criterion::{criterion_group, criterion_main, Criterion};
use cycleq::Session;
use cycleq_benchsuite::{MUTUAL_PRELUDE, PRELUDE};

fn session(prelude: &str, goal: &str) -> Session {
    let src = format!("{prelude}\ngoal g: {goal}\n");
    Session::from_source(&src).unwrap().without_recheck()
}

fn bench(c: &mut Criterion) {
    let cases = [
        (
            "fig2_butlast_take_ip50",
            PRELUDE,
            "butlast xs === take (sub (len xs) (S Z)) xs",
        ),
        ("fig4_add_comm", PRELUDE, "add x y === add y x"),
        ("fig1_mapE_id", MUTUAL_PRELUDE, "mapE id e === e"),
        ("fig9_map_id", PRELUDE, "map id xs === xs"),
        (
            "ip01_take_drop",
            PRELUDE,
            "app (take n xs) (drop n xs) === xs",
        ),
    ];
    let mut group = c.benchmark_group("headline_goals");
    for (name, prelude, goal) in cases {
        let s = session(prelude, goal);
        group.bench_function(name, |b| {
            b.iter(|| {
                let v = s.prove("g").unwrap();
                assert!(v.is_proved(), "{name}: {:?}", v.result.outcome);
                v.result.proof.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
