//! Owned vs interned proof checking on the headline proofs.
//!
//! Three variants per proof:
//!
//! - `owned`: the reference checker ([`cycleq::check`]) walking owned
//!   terms and renormalising every `(Reduce)` premise from scratch;
//! - `interned_cold`: [`cycleq::check_interned`] with a fresh
//!   [`MemoRewriter`] per call — what a single `cycleq check` of one
//!   certificate pays;
//! - `interned_warm`: [`cycleq::check_interned_with`] reusing one
//!   checker-side rewriter across iterations — what rechecking many
//!   proofs over the same program pays per proof after the first.
//!
//! The interned variants must beat `owned` comfortably (the PR's
//! acceptance bar is ≥3× on `fig4_add_comm`); `interned_warm` shows the
//! additional headroom from cross-proof memoisation.

use criterion::{criterion_group, criterion_main, Criterion};
use cycleq::{check, check_interned, check_interned_with, Engine, GlobalCheck};
use cycleq_benchsuite::{MUTUAL_PRELUDE, PRELUDE};
use cycleq_rewrite::MemoRewriter;

fn bench(c: &mut Criterion) {
    let cases = [
        ("fig4_add_comm", PRELUDE, "add x y === add y x"),
        ("fig9_map_id", PRELUDE, "map id xs === xs"),
        ("fig1_mapE_id", MUTUAL_PRELUDE, "mapE id e === e"),
        (
            "fig2_butlast_take_ip50",
            PRELUDE,
            "butlast xs === take (sub (len xs) (S Z)) xs",
        ),
    ];
    let mut group = c.benchmark_group("checker");
    for (name, prelude, goal) in cases {
        let src = format!("{prelude}\ngoal g: {goal}\n");
        let session = Engine::builder().recheck(false).build().load(&src).unwrap();
        let v = session.prove("g").unwrap();
        assert!(v.is_proved(), "{name}: {:?}", v.result.outcome);
        let proof = &v.result.proof;
        let prog = session.program();
        group.bench_function(format!("{name}_owned"), |b| {
            b.iter(|| {
                check(proof, prog, GlobalCheck::VariableTraces)
                    .unwrap()
                    .nodes
            })
        });
        group.bench_function(format!("{name}_interned_cold"), |b| {
            b.iter(|| {
                check_interned(proof, prog, GlobalCheck::VariableTraces)
                    .unwrap()
                    .nodes
            })
        });
        group.bench_function(format!("{name}_interned_warm"), |b| {
            let mut rw = MemoRewriter::new(&prog.sig, &prog.trs);
            check_interned_with(proof, prog, GlobalCheck::VariableTraces, &mut rw).unwrap();
            b.iter(|| {
                check_interned_with(proof, prog, GlobalCheck::VariableTraces, &mut rw)
                    .unwrap()
                    .nodes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
