//! Experiment E8 (§4): rewriting induction vs. cyclic search on orientable
//! structural goals (where both succeed), showing the relative cost of the
//! two proof strategies on the same program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cycleq::Engine;
use cycleq_benchsuite::PRELUDE;
use cycleq_ri::RiProver;

fn bench(c: &mut Criterion) {
    let goals = [
        ("add_zero_right", "add x Z === x"),
        ("add_succ_right", "add x (S y) === S (add x y)"),
        ("add_assoc", "add (add x y) z === add x (add y z)"),
        ("app_assoc", "app (app xs ys) zs === app xs (app ys zs)"),
        ("len_app", "len (app xs ys) === add (len xs) (len ys)"),
    ];
    let mut group = c.benchmark_group("ri_vs_cycleq");
    for (name, goal) in goals {
        let src = format!("{PRELUDE}\ngoal g: {goal}\n");
        let session = Engine::builder().recheck(false).build().load(&src).unwrap();
        let module = session.module().clone();
        group.bench_with_input(BenchmarkId::new("cycleq", name), &session, |b, s| {
            b.iter(|| {
                let v = s.prove("g").unwrap();
                assert!(v.is_proved(), "{name}: {:?}", v.result.outcome);
            })
        });
        group.bench_with_input(BenchmarkId::new("ri", name), &module, |b, m| {
            let prover = RiProver::new(&m.program).unwrap();
            let g = m.goal("g").unwrap();
            b.iter(|| {
                let res = prover.prove(g.eq.clone(), g.vars.clone());
                assert!(res.outcome.is_proved(), "{name}: {:?}", res.outcome);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
