//! Property test for the source printer: printing is a fixed point of the
//! parse → print loop (`print(parse(print(m))) == print(m)`), so any
//! clause the fix synthesizer emits through the printer re-parses to the
//! same module it printed.

use cycleq_lang::{parse_module, print_module};
use proptest::prelude::*;
use proptest::test_runner::Config;

fn cfg() -> Config {
    Config {
        cases: 128,
        ..Config::default()
    }
}

const PATS: &[&str] = &["Z", "(S x)", "(S (S x))", "x"];

#[test]
fn printing_is_a_fixed_point_of_parse() {
    proptest!(cfg(), |(
        clauses in proptest::collection::vec((0..PATS.len(), 0usize..4), 1..5),
        with_list in 0usize..2,
        with_goal in 0usize..2,
    )| {
        let mut src = String::from("data Nat = Z | S Nat\n");
        if with_list == 1 {
            src.push_str(
                "data List a = Nil | Cons a (List a)\n\
                 len :: List a -> Nat\n\
                 len Nil = Z\n\
                 len (Cons x xs) = S (len xs)\n",
            );
        }
        src.push_str("f :: Nat -> Nat\n");
        for (p, r) in &clauses {
            let pat = PATS[*p];
            // Right-hand sides only over the variables the pattern binds.
            let rhs: &[&str] = if pat.contains('x') {
                &["Z", "x", "S x", "f x"]
            } else {
                &["Z", "S Z", "f Z"]
            };
            src.push_str(&format!("f {} = {}\n", pat, rhs[r % rhs.len()]));
        }
        if with_goal == 1 {
            src.push_str("goal g: f x === Z\n");
        }
        let m = parse_module(&src).unwrap();
        let p1 = print_module(&m);
        let m2 = parse_module(&p1).expect("printed source re-parses");
        let p2 = print_module(&m2);
        prop_assert_eq!(p1, p2, "printing is not a fixed point for:\n{}", src);
    });
}
