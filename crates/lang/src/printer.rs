//! Source printer: a lowered [`Module`] (or bare [`Program`]) back to
//! parseable `.hs` text.
//!
//! The printer is the inverse half of the frontend that `cycleq lint
//! --fix` needs: synthesized clauses must be rendered exactly as the
//! parser would accept them. Printing is *canonical*, not source-faithful
//! — datatype parameters are renamed to `a`, `b`, …; clauses are grouped
//! under their function's signature; comments are gone — but the result
//! re-parses to the same module, and printing is a fixed point
//! (`print(parse(print(m))) == print(m)`, pinned by proptest).

use cycleq_rewrite::Program;
use cycleq_term::{Signature, SymId, SymKind, Term, TyVarId, Type, VarStore};

use crate::lower::Module;

/// Renders a bare program (datatypes, signatures, clauses) as parseable
/// source.
pub fn print_program(program: &Program) -> String {
    let sig = &program.sig;
    let mut out = String::new();
    for (id, data) in sig.datas() {
        out.push_str("data ");
        out.push_str(data.name());
        for i in 0..data.arity() {
            out.push(' ');
            out.push_str(&TyVarId(i).display_name());
        }
        let cons: Vec<String> = sig
            .constructors_of(id)
            .iter()
            .map(|&c| print_constructor(sig, c))
            .collect();
        if !cons.is_empty() {
            out.push_str(" = ");
            out.push_str(&cons.join(" | "));
        }
        out.push('\n');
    }
    for (id, decl) in sig.syms() {
        if decl.kind() != SymKind::Defined {
            continue;
        }
        out.push_str(decl.name());
        out.push_str(" :: ");
        out.push_str(&decl.scheme().body().display(sig).to_string());
        out.push('\n');
        for rule_id in program.trs.rules_for(id) {
            let rule = program.trs.rule(*rule_id);
            out.push_str(&print_clause(
                sig,
                program.trs.vars(),
                decl.name(),
                rule.params(),
                rule.rhs(),
            ));
            out.push('\n');
        }
    }
    out
}

/// Renders a full module: the program followed by its goals.
pub fn print_module(module: &Module) -> String {
    let mut out = print_program(&module.program);
    let sig = &module.program.sig;
    for g in &module.goals {
        out.push_str(&format!(
            "goal {}: {} === {}\n",
            g.name,
            g.eq.lhs().display(sig, &g.vars),
            g.eq.rhs().display(sig, &g.vars),
        ));
    }
    out
}

/// Renders one clause `f p0 … pn = rhs` exactly as the parser accepts it.
/// Used directly by fix synthesis to emit replacement clauses.
pub fn print_clause(
    sig: &Signature,
    vars: &VarStore,
    name: &str,
    params: &[Term],
    rhs: &Term,
) -> String {
    let mut out = String::from(name);
    for p in params {
        out.push(' ');
        if p.args().is_empty() {
            out.push_str(&p.display(sig, vars).to_string());
        } else {
            out.push('(');
            out.push_str(&p.display(sig, vars).to_string());
            out.push(')');
        }
    }
    out.push_str(" = ");
    out.push_str(&rhs.display(sig, vars).to_string());
    out
}

fn print_constructor(sig: &Signature, con: SymId) -> String {
    let decl = sig.sym(con);
    let (args, _ret) = decl.scheme().body().uncurry();
    let mut out = String::from(decl.name());
    for a in args {
        out.push(' ');
        out.push_str(&print_atom_type(sig, a));
    }
    out
}

/// A type in argument position: parenthesized unless atomic.
fn print_atom_type(sig: &Signature, ty: &Type) -> String {
    let needs_parens = match ty {
        Type::Arrow(_, _) => true,
        Type::Data(_, args) => !args.is_empty(),
        _ => false,
    };
    if needs_parens {
        format!("({})", ty.display(sig))
    } else {
        ty.display(sig).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    #[test]
    fn prints_parseable_canonical_source() {
        let src = "data Nat = Z | S Nat\n\
                   sub :: Nat -> Nat -> Nat\n\
                   sub Z y = Z\n\
                   sub (S x) Z = S x\n\
                   sub (S x) (S y) = sub x y\n\
                   goal g1: sub x x === Z\n";
        let m = parse_module(src).unwrap();
        let printed = print_module(&m);
        assert_eq!(printed, src, "already-canonical source prints verbatim");
    }

    #[test]
    fn polymorphic_data_and_higher_order_sigs_round_trip() {
        let src = "data Nat = Z | S Nat\n\
                   data List a = Nil | Cons a (List a)\n\
                   len :: List a -> Nat\n\
                   len Nil = Z\n\
                   len (Cons x xs) = S (len xs)\n";
        let m = parse_module(src).unwrap();
        let printed = print_module(&m);
        let m2 = parse_module(&printed).expect("printed source re-parses");
        assert_eq!(print_module(&m2), printed, "printing is a fixed point");
        assert!(printed.contains("data List a = Nil | Cons a (List a)"));
    }

    #[test]
    fn print_clause_matches_parser_syntax() {
        let m = parse_module(
            "data Nat = Z | S Nat\nadd :: Nat -> Nat -> Nat\nadd Z y = y\nadd (S x) y = S (add x y)\n",
        )
        .unwrap();
        let trs = &m.program.trs;
        let sig = &m.program.sig;
        let add = sig.sym_by_name("add").unwrap();
        let rules = trs.rules_for(add);
        let r = trs.rule(rules[1]);
        assert_eq!(
            print_clause(sig, trs.vars(), "add", r.params(), r.rhs()),
            "add (S x) y = S (add x y)"
        );
    }
}
