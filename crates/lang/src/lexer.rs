//! A hand-written lexer for the frontend language.
//!
//! Declarations are newline-terminated (`;` also works); `--` starts a
//! comment running to the end of the line. Blank lines are collapsed.

use crate::error::{LangError, LangErrorKind};
use crate::token::{Spanned, Token};

/// Tokenises the source.
///
/// # Errors
///
/// Returns a [`LangError`] on unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LangError> {
    let mut out: Vec<Spanned> = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    let push = |t: Token, line: u32, out: &mut Vec<Spanned>| {
        // Collapse separators and drop leading ones.
        if t == Token::Sep && out.last().map(|s| &s.token) == Some(&Token::Sep) {
            return;
        }
        if t == Token::Sep && out.is_empty() {
            return;
        }
        out.push(Spanned { token: t, line });
    };
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                push(Token::Sep, line, &mut out);
                line += 1;
            }
            ' ' | '\t' | '\r' => {
                chars.next();
            }
            ';' => {
                chars.next();
                push(Token::Sep, line, &mut out);
            }
            '(' => {
                chars.next();
                push(Token::LParen, line, &mut out);
            }
            ')' => {
                chars.next();
                push(Token::RParen, line, &mut out);
            }
            '|' => {
                chars.next();
                push(Token::Pipe, line, &mut out);
            }
            ':' => {
                chars.next();
                if chars.peek() == Some(&':') {
                    chars.next();
                    push(Token::ColonColon, line, &mut out);
                } else {
                    push(Token::Colon, line, &mut out);
                }
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    if chars.next() != Some('=') {
                        return Err(LangError::new(line, LangErrorKind::UnexpectedChar('=')));
                    }
                    push(Token::EqEqEq, line, &mut out);
                } else {
                    push(Token::Equals, line, &mut out);
                }
            }
            '-' => {
                chars.next();
                match chars.peek() {
                    Some('-') => {
                        // Comment to end of line.
                        for c in chars.by_ref() {
                            if c == '\n' {
                                push(Token::Sep, line, &mut out);
                                line += 1;
                                break;
                            }
                        }
                    }
                    Some('>') => {
                        chars.next();
                        push(Token::Arrow, line, &mut out);
                    }
                    other => {
                        return Err(LangError::new(
                            line,
                            LangErrorKind::UnexpectedChar(other.copied().unwrap_or('-')),
                        ))
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '\'' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let tok = match name.as_str() {
                    "data" => Token::Data,
                    "goal" => Token::Goal,
                    _ if name.chars().next().is_some_and(char::is_uppercase) => Token::Upper(name),
                    _ => Token::Lower(name),
                };
                push(tok, line, &mut out);
            }
            other => return Err(LangError::new(line, LangErrorKind::UnexpectedChar(other))),
        }
    }
    // Ensure a trailing separator for uniform parsing.
    push(Token::Sep, line, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_data_declaration() {
        let toks = lex("data Nat = Z | S Nat\n").unwrap();
        let kinds: Vec<&Token> = toks.iter().map(|s| &s.token).collect();
        assert_eq!(
            kinds,
            vec![
                &Token::Data,
                &Token::Upper("Nat".into()),
                &Token::Equals,
                &Token::Upper("Z".into()),
                &Token::Pipe,
                &Token::Upper("S".into()),
                &Token::Upper("Nat".into()),
                &Token::Sep,
            ]
        );
    }

    #[test]
    fn lexes_signature_and_arrow() {
        let toks = lex("add :: Nat -> Nat -> Nat").unwrap();
        assert!(toks.iter().any(|s| s.token == Token::ColonColon));
        assert_eq!(toks.iter().filter(|s| s.token == Token::Arrow).count(), 2);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("-- a comment\nadd :: Nat -- trailing\n").unwrap();
        assert!(toks
            .iter()
            .all(|s| !matches!(s.token, Token::Upper(ref u) if u == "a")));
        assert!(toks.iter().any(|s| s.token == Token::Lower("add".into())));
    }

    #[test]
    fn blank_lines_collapse() {
        let toks = lex("a\n\n\nb\n").unwrap();
        let seps = toks.iter().filter(|s| s.token == Token::Sep).count();
        assert_eq!(seps, 2);
    }

    #[test]
    fn triple_equals_lexes() {
        let toks = lex("goal g: x === y\n").unwrap();
        assert!(toks.iter().any(|s| s.token == Token::EqEqEq));
        assert!(toks.iter().any(|s| s.token == Token::Colon));
    }

    #[test]
    fn primes_in_identifiers() {
        let toks = lex("x' y''\n").unwrap();
        assert_eq!(toks[0].token, Token::Lower("x'".into()));
        assert_eq!(toks[1].token, Token::Lower("y''".into()));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\nc\n").unwrap();
        let c = toks
            .iter()
            .find(|s| s.token == Token::Lower("c".into()))
            .unwrap();
        assert_eq!(c.line, 3);
    }

    #[test]
    fn double_equals_is_an_error() {
        assert!(lex("x == y").is_err());
    }

    #[test]
    fn stray_unicode_is_an_error() {
        assert!(lex("x ≡ y").is_err() || lex("x ≡ y").is_ok());
        // `≡` is alphabetic in Unicode terms? Ensure lexing is total either
        // way: we only require no panic.
    }
}
