//! Name resolution, type checking and lowering of raw declarations to a
//! [`Program`] plus goal equations.
//!
//! Clauses are checked against their declared signatures with *rigid*
//! quantified variables: a clause may not force a signature variable to a
//! concrete type (otherwise rewriting at other instances would be
//! ill-typed). Goal variables are implicitly universally quantified; their
//! types are inferred and residual metavariables are generalised to fresh
//! rigid type variables (polymorphic goals such as `map id xs === xs`).

use std::collections::HashMap;

use cycleq_rewrite::{Program, RuleId, Trs};
use cycleq_term::{
    Equation, Signature, Subst, SymId, Term, TyUnifier, TyVarId, Type, VarId, VarStore,
};

use crate::ast::{Decl, RawTerm, RawType};
use crate::error::{LangError, LangErrorKind};

/// Type-variable ids at or above this value are inference metavariables.
const META_FLOOR: u32 = 100_000;

/// A named goal: an equation together with the store owning its variables.
#[derive(Clone, Debug)]
pub struct GoalDef {
    /// The goal's name.
    pub name: String,
    /// The equation to prove.
    pub eq: Equation,
    /// The store holding the goal's variables and their types.
    pub vars: VarStore,
    /// Source line of the declaration.
    pub line: u32,
}

impl GoalDef {
    /// Renames the goal's variables into `target`, returning the renamed
    /// equation. Used to import one goal as a hint lemma for another.
    pub fn rename_into(&self, target: &mut VarStore) -> Equation {
        let mut renaming = Subst::new();
        for (v, name, ty) in self.vars.iter() {
            let w = target.fresh(name, ty.clone());
            renaming.insert(v, Term::var(w));
        }
        self.eq.subst(&renaming)
    }
}

/// A lowered module: the program and its goals, plus the source map that
/// survives lowering (clause lines per rule, declaration lines per name)
/// so downstream diagnostics can point at the offending source line.
#[derive(Clone, Debug)]
pub struct Module {
    /// The signature and rewrite rules.
    pub program: Program,
    /// Goals in declaration order.
    pub goals: Vec<GoalDef>,
    /// Source line of the clause that produced each rule, indexed by
    /// [`RuleId`] (rules are numbered in declaration order).
    pub rule_lines: Vec<u32>,
    /// Declaration line per name: datatypes, constructors (at their `data`
    /// line) and function signatures.
    pub decl_lines: HashMap<String, u32>,
}

impl Module {
    /// Looks up a goal by name.
    pub fn goal(&self, name: &str) -> Option<&GoalDef> {
        self.goals.iter().find(|g| g.name == name)
    }

    /// The source line of the clause that produced `rule`, when known
    /// (rules added programmatically, outside the frontend, have none).
    pub fn rule_line(&self, rule: RuleId) -> Option<u32> {
        self.rule_lines.get(rule.index()).copied()
    }

    /// The declaration line of a datatype, constructor or function
    /// signature.
    pub fn decl_line(&self, name: &str) -> Option<u32> {
        self.decl_lines.get(name).copied()
    }

    /// Validates the program against the paper's standing assumptions
    /// (Remark 2.1), returning human-readable warnings: incomplete pattern
    /// matches and non-orthogonal rules.
    pub fn validate(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (sym, witness) in cycleq_rewrite::check_program(&self.program.sig, &self.program.trs) {
            let pats: Vec<String> = witness
                .iter()
                .map(|w| w.display(&self.program.sig))
                .collect();
            out.push(format!(
                "`{}` does not cover: {}",
                self.program.sig.sym(sym).name(),
                pats.join(" ")
            ));
        }
        let report = cycleq_rewrite::check_orthogonality(&self.program.trs);
        for id in report.non_left_linear {
            out.push(format!("rule #{} is not left-linear", id.index()));
        }
        for (a, b) in report.overlaps {
            out.push(format!("rules #{} and #{} overlap", a.index(), b.index()));
        }
        // Weak normalisation (Remark 2.1), established by size-change
        // termination (sound but incomplete).
        if !cycleq_rewrite::size_change_terminates(&self.program.sig, &self.program.trs) {
            let suspects: Vec<String> =
                cycleq_rewrite::non_terminating_suspects(&self.program.sig, &self.program.trs)
                    .into_iter()
                    .map(|s| format!("`{}`", self.program.sig.sym(s).name()))
                    .collect();
            out.push(format!(
                "termination not established by size-change analysis (suspects: {})",
                suspects.join(", ")
            ));
        }
        out
    }
}

fn type_spine(raw: &RawType) -> (&RawType, Vec<&RawType>) {
    let mut args = Vec::new();
    let mut cur = raw;
    while let RawType::App(f, a) = cur {
        args.push(a.as_ref());
        cur = f.as_ref();
    }
    args.reverse();
    (cur, args)
}

/// Resolves a raw type; lowercase identifiers are looked up in `tyvars`
/// (inserting fresh ids when `implicit` is set).
fn resolve_type(
    raw: &RawType,
    sig: &Signature,
    tyvars: &mut HashMap<String, TyVarId>,
    implicit: bool,
    line: u32,
) -> Result<Type, LangError> {
    match raw {
        RawType::Arrow(a, b) => Ok(Type::arrow(
            resolve_type(a, sig, tyvars, implicit, line)?,
            resolve_type(b, sig, tyvars, implicit, line)?,
        )),
        _ => {
            let (head, args) = type_spine(raw);
            match head {
                RawType::Ident(n) if n.chars().next().is_some_and(char::is_uppercase) => {
                    let data = sig
                        .data_by_name(n)
                        .ok_or_else(|| LangError::new(line, LangErrorKind::Unknown(n.clone())))?;
                    let arity = sig.data(data).arity() as usize;
                    if args.len() != arity {
                        return Err(LangError::new(
                            line,
                            LangErrorKind::Type(format!(
                                "`{n}` expects {arity} type argument(s), got {}",
                                args.len()
                            )),
                        ));
                    }
                    let mut targs = Vec::with_capacity(args.len());
                    for a in args {
                        targs.push(resolve_type(a, sig, tyvars, implicit, line)?);
                    }
                    Ok(Type::Data(data, targs))
                }
                RawType::Ident(n) => {
                    if !args.is_empty() {
                        return Err(LangError::new(
                            line,
                            LangErrorKind::Type(format!("type variable `{n}` cannot be applied")),
                        ));
                    }
                    match tyvars.get(n) {
                        Some(v) => Ok(Type::Var(*v)),
                        None if implicit => {
                            let v = TyVarId(tyvars.len() as u32);
                            tyvars.insert(n.clone(), v);
                            Ok(Type::Var(v))
                        }
                        None => Err(LangError::new(line, LangErrorKind::Unknown(n.clone()))),
                    }
                }
                RawType::Arrow(..) => {
                    // `(a -> b) c` — an applied arrow; reject.
                    Err(LangError::new(
                        line,
                        LangErrorKind::Type("function types cannot be applied".into()),
                    ))
                }
                RawType::App(..) => unreachable!("spine flattens applications"),
            }
        }
    }
}

/// Builds a term from raw syntax. `env` maps bound variable names;
/// `make_var` (when set) creates variables for unknown lowercase names
/// (goal mode). Resolution errors point at the offending identifier's own
/// source line.
fn build_term(
    raw: &RawTerm,
    sig: &Signature,
    env: &mut HashMap<String, VarId>,
    vars: &mut VarStore,
    uni: &mut TyUnifier,
    implicit_vars: bool,
) -> Result<Term, LangError> {
    let (head, raw_args) = raw.spine();
    let mut args = Vec::with_capacity(raw_args.len());
    for a in raw_args {
        args.push(build_term(a, sig, env, vars, uni, implicit_vars)?);
    }
    let RawTerm::Ident(name, iline) = head else {
        unreachable!("spine flattens applications")
    };
    let iline = *iline;
    if name.chars().next().is_some_and(char::is_uppercase) {
        let sym = sig
            .sym_by_name(name)
            .ok_or_else(|| LangError::new(iline, LangErrorKind::Unknown(name.clone())))?;
        return Ok(Term::apps(sym, args));
    }
    // Lowercase: bound variable shadows defined symbol.
    if let Some(v) = env.get(name) {
        return Ok(Term::from_parts(cycleq_term::Head::Var(*v), args));
    }
    if let Some(sym) = sig.sym_by_name(name) {
        return Ok(Term::apps(sym, args));
    }
    if implicit_vars {
        let v = vars.fresh(name, Type::Var(uni.fresh()));
        env.insert(name.clone(), v);
        return Ok(Term::from_parts(cycleq_term::Head::Var(v), args));
    }
    Err(LangError::new(iline, LangErrorKind::Unknown(name.clone())))
}

/// Builds a clause pattern, allocating meta-typed variables and enforcing
/// linearity and constructor arity.
fn build_pattern(
    raw: &RawTerm,
    sig: &Signature,
    env: &mut HashMap<String, VarId>,
    vars: &mut VarStore,
    uni: &mut TyUnifier,
) -> Result<Term, LangError> {
    let (head, raw_args) = raw.spine();
    let RawTerm::Ident(name, line) = head else {
        unreachable!("spine flattens applications")
    };
    let line = *line;
    if name.chars().next().is_some_and(char::is_uppercase) {
        let sym = sig
            .sym_by_name(name)
            .ok_or_else(|| LangError::new(line, LangErrorKind::Unknown(name.clone())))?;
        if !sig.is_constructor(sym) {
            return Err(LangError::new(
                line,
                LangErrorKind::Rule(format!("`{name}` is not a constructor")),
            ));
        }
        let arity = sig.constructor_arity(sym);
        if raw_args.len() != arity {
            return Err(LangError::new(
                line,
                LangErrorKind::PatternArity {
                    constructor: name.clone(),
                    expected: arity,
                    got: raw_args.len(),
                },
            ));
        }
        let mut args = Vec::with_capacity(raw_args.len());
        for a in raw_args {
            args.push(build_pattern(a, sig, env, vars, uni)?);
        }
        Ok(Term::apps(sym, args))
    } else {
        if !raw_args.is_empty() {
            return Err(LangError::new(
                line,
                LangErrorKind::Rule("pattern variables cannot be applied".into()),
            ));
        }
        if env.contains_key(name) {
            return Err(LangError::new(
                line,
                LangErrorKind::NonLinearPattern(name.clone()),
            ));
        }
        let v = vars.fresh(name, Type::Var(uni.fresh()));
        env.insert(name.clone(), v);
        Ok(Term::var(v))
    }
}

/// Rewrites residual metavariables in `ty` to canonical rigid variables,
/// recording the renaming in `canon`.
fn generalize(ty: &Type, canon: &mut HashMap<TyVarId, TyVarId>) -> Type {
    match ty {
        Type::Var(v) if v.0 >= META_FLOOR => {
            let next = TyVarId(canon.len() as u32);
            Type::Var(*canon.entry(*v).or_insert(next))
        }
        Type::Var(v) => Type::Var(*v),
        Type::Data(d, args) => Type::Data(*d, args.iter().map(|a| generalize(a, canon)).collect()),
        Type::Arrow(a, b) => Type::arrow(generalize(a, canon), generalize(b, canon)),
    }
}

/// Lowers parsed declarations to a module.
///
/// # Errors
///
/// Returns the first resolution or type error.
pub fn lower(decls: &[Decl]) -> Result<Module, LangError> {
    let mut sig = Signature::new();
    let mut decl_lines: HashMap<String, u32> = HashMap::new();
    // Pass 1a: datatypes (names only, so mutually recursive datatypes work).
    for d in decls {
        if let Decl::Data {
            name, params, line, ..
        } = d
        {
            sig.add_datatype(name, params.len() as u32)
                .map_err(|_| LangError::new(*line, LangErrorKind::Duplicate(name.clone())))?;
            decl_lines.insert(name.clone(), *line);
        }
    }
    // Pass 1b: constructors.
    for d in decls {
        if let Decl::Data {
            name,
            params,
            cons,
            line,
        } = d
        {
            let data = sig.data_by_name(name).expect("registered in pass 1a");
            let mut tyvars: HashMap<String, TyVarId> = params
                .iter()
                .enumerate()
                .map(|(i, p)| (p.clone(), TyVarId(i as u32)))
                .collect();
            for con in cons {
                let mut args = Vec::with_capacity(con.args.len());
                for a in &con.args {
                    args.push(resolve_type(a, &sig, &mut tyvars, false, *line)?);
                }
                sig.add_constructor(&con.name, data, args)
                    .map_err(|e| LangError::new(*line, LangErrorKind::Type(e.to_string())))?;
                decl_lines.insert(con.name.clone(), *line);
            }
        }
    }
    // Pass 2: signatures.
    for d in decls {
        if let Decl::Sig { name, ty, line } = d {
            let mut tyvars = HashMap::new();
            let body = resolve_type(ty, &sig, &mut tyvars, true, *line)?;
            let scheme = cycleq_term::TypeScheme::poly(tyvars.len() as u32, body);
            sig.add_defined(name, scheme)
                .map_err(|_| LangError::new(*line, LangErrorKind::Duplicate(name.clone())))?;
            decl_lines.insert(name.clone(), *line);
        }
    }
    // Pass 3: clauses.
    let mut trs = Trs::new();
    let mut rule_lines = Vec::new();
    for d in decls {
        if let Decl::Clause {
            name,
            params,
            rhs,
            line,
        } = d
        {
            let sym = sig
                .sym_by_name(name)
                .filter(|s| sig.is_defined(*s))
                .ok_or_else(|| {
                    LangError::new(*line, LangErrorKind::MissingSignature(name.clone()))
                })?;
            let rule = lower_clause(&mut trs, &sig, sym, params, rhs, *line)?;
            debug_assert_eq!(rule.index(), rule_lines.len());
            rule_lines.push(*line);
        }
    }
    // Pass 4: goals.
    let mut goals = Vec::new();
    for d in decls {
        if let Decl::Goal {
            name,
            lhs,
            rhs,
            line,
        } = d
        {
            if goals.iter().any(|g: &GoalDef| &g.name == name) {
                return Err(LangError::new(
                    *line,
                    LangErrorKind::Duplicate(name.clone()),
                ));
            }
            goals.push(lower_goal(&sig, name, lhs, rhs, *line)?);
        }
    }
    Ok(Module {
        program: Program::new(sig, trs),
        goals,
        rule_lines,
        decl_lines,
    })
}

fn lower_clause(
    trs: &mut Trs,
    sig: &Signature,
    sym: SymId,
    params: &[RawTerm],
    rhs: &RawTerm,
    line: u32,
) -> Result<RuleId, LangError> {
    let scheme = sig.sym(sym).scheme().clone();
    let (arg_tys, ret_ty) = scheme.body().uncurry();
    if params.len() > arg_tys.len() {
        return Err(LangError::new(
            line,
            LangErrorKind::Type(format!(
                "clause has {} patterns but the signature allows at most {}",
                params.len(),
                arg_tys.len()
            )),
        ));
    }
    let mut uni = TyUnifier::new(META_FLOOR);
    let mut env = HashMap::new();
    // Variables are allocated in the TRS store with placeholder meta types.
    let mark = trs.vars().len();
    let mut pattern_terms = Vec::with_capacity(params.len());
    {
        let vars = trs.vars_mut();
        for raw in params {
            pattern_terms.push(build_pattern(raw, sig, &mut env, vars, &mut uni)?);
        }
    }
    // Type the patterns against the signature's rigid argument types.
    for (pat, want) in pattern_terms.iter().zip(&arg_tys) {
        let got = pat
            .infer_type(sig, trs.vars(), &mut uni)
            .map_err(|e| LangError::new(line, LangErrorKind::Type(e.to_string())))?;
        uni.unify(&got, want)
            .map_err(|e| LangError::new(line, LangErrorKind::Type(e.to_string())))?;
    }
    // Result type: remaining arrows.
    let result_ty = Type::arrows(
        arg_tys[params.len()..]
            .iter()
            .map(|t| (*t).clone())
            .collect(),
        ret_ty.clone(),
    );
    // Build and type the right-hand side.
    let rhs_term = {
        let mut scratch_env = env.clone();
        let vars = trs.vars_mut();
        build_term(rhs, sig, &mut scratch_env, vars, &mut uni, false)?
    };
    let rhs_ty = rhs_term
        .infer_type(sig, trs.vars(), &mut uni)
        .map_err(|e| LangError::new(line, LangErrorKind::Type(e.to_string())))?;
    uni.unify(&rhs_ty, &result_ty)
        .map_err(|e| LangError::new(line, LangErrorKind::Type(e.to_string())))?;
    // Rigidity: signature variables must remain themselves.
    for i in 0..scheme.num_vars() {
        let v = TyVarId(i);
        if uni.resolve(&Type::Var(v)) != Type::Var(v) {
            return Err(LangError::new(
                line,
                LangErrorKind::RigidEscape(format!(
                    "signature variable `{}` was instantiated",
                    v.display_name()
                )),
            ));
        }
    }
    // Write back solved variable types, generalising residual metas.
    let mut canon: HashMap<TyVarId, TyVarId> = HashMap::new();
    // Seed the canonical map with the scheme's own variables so fresh rigid
    // ids don't collide with them.
    for i in 0..scheme.num_vars() {
        canon.insert(TyVarId(i), TyVarId(i));
    }
    for idx in mark..trs.vars().len() {
        let v = VarId::from_index(idx);
        let solved = uni.resolve(trs.vars().ty(v));
        let ty = generalize(&solved, &mut canon);
        trs.vars_mut().set_ty(v, ty);
    }
    trs.add_rule(sig, sym, pattern_terms, rhs_term)
        .map_err(|e| LangError::new(line, LangErrorKind::Rule(e.to_string())))
}

fn lower_goal(
    sig: &Signature,
    name: &str,
    lhs: &RawTerm,
    rhs: &RawTerm,
    line: u32,
) -> Result<GoalDef, LangError> {
    let mut uni = TyUnifier::new(META_FLOOR);
    let mut env = HashMap::new();
    let mut vars = VarStore::new();
    let lhs_term = build_term(lhs, sig, &mut env, &mut vars, &mut uni, true)?;
    let rhs_term = build_term(rhs, sig, &mut env, &mut vars, &mut uni, true)?;
    let lt = lhs_term
        .infer_type(sig, &vars, &mut uni)
        .map_err(|e| LangError::new(line, LangErrorKind::Type(e.to_string())))?;
    let rt = rhs_term
        .infer_type(sig, &vars, &mut uni)
        .map_err(|e| LangError::new(line, LangErrorKind::Type(e.to_string())))?;
    uni.unify(&lt, &rt)
        .map_err(|e| LangError::new(line, LangErrorKind::Type(e.to_string())))?;
    // Solve and generalise goal variable types.
    let mut canon = HashMap::new();
    for idx in 0..vars.len() {
        let v = VarId::from_index(idx);
        let solved = uni.resolve(vars.ty(v));
        vars.set_ty(v, generalize(&solved, &mut canon));
    }
    Ok(GoalDef {
        name: name.to_string(),
        eq: Equation::new(lhs_term, rhs_term),
        vars,
        line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const NAT: &str = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
";

    fn module(src: &str) -> Module {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn lowers_nat_program() {
        let m = module(NAT);
        assert_eq!(m.program.trs.len(), 2);
        let add = m.program.sig.sym_by_name("add").unwrap();
        assert_eq!(m.program.trs.rules_for(add).len(), 2);
        assert!(m.validate().is_empty());
    }

    #[test]
    fn lowers_polymorphic_lists() {
        let src = "data List a = Nil | Cons a (List a)
data Nat = Z | S Nat
len :: List a -> Nat
len Nil = Z
len (Cons x xs) = S (len xs)
";
        let m = module(src);
        assert!(m.validate().is_empty());
        let len = m.program.sig.sym_by_name("len").unwrap();
        assert_eq!(m.program.sig.sym(len).scheme().num_vars(), 1);
    }

    #[test]
    fn goal_variables_are_inferred() {
        let src = format!("{NAT}goal comm: add x y === add y x\n");
        let m = module(&src);
        let g = m.goal("comm").unwrap();
        assert_eq!(g.vars.len(), 2);
        let nat = m.program.sig.data_by_name("Nat").unwrap();
        for (_, _, ty) in g.vars.iter() {
            assert_eq!(ty, &Type::data0(nat));
        }
    }

    #[test]
    fn polymorphic_goal_types_are_generalised() {
        let src = "data List a = Nil | Cons a (List a)
app :: List a -> List a -> List a
app Nil ys = ys
app (Cons x xs) ys = Cons x (app xs ys)
goal nilRight: app xs Nil === xs
";
        let m = module(src);
        let g = m.goal("nilRight").unwrap();
        // xs : List a with a rigid (generalised).
        let (_, _, ty) = g.vars.iter().next().unwrap();
        match ty {
            Type::Data(_, args) => assert!(matches!(args[0], Type::Var(v) if v.0 < 100)),
            other => panic!("unexpected type {other:?}"),
        }
    }

    #[test]
    fn clause_without_signature_is_rejected() {
        let err = lower(&parse("data Nat = Z | S Nat\nf Z = Z\n").unwrap()).unwrap_err();
        assert!(matches!(err.kind, LangErrorKind::MissingSignature(_)));
    }

    #[test]
    fn non_linear_patterns_are_rejected() {
        let src = "data Nat = Z | S Nat
f :: Nat -> Nat -> Nat
f x x = x
";
        let err = lower(&parse(src).unwrap()).unwrap_err();
        assert!(matches!(err.kind, LangErrorKind::NonLinearPattern(_)));
    }

    #[test]
    fn pattern_arity_is_checked() {
        let src = "data Nat = Z | S Nat
f :: Nat -> Nat
f (S) = Z
";
        let err = lower(&parse(src).unwrap()).unwrap_err();
        assert!(matches!(err.kind, LangErrorKind::PatternArity { .. }));
    }

    #[test]
    fn ill_typed_rhs_is_rejected() {
        let src = "data Nat = Z | S Nat
data Bool = True | False
f :: Nat -> Nat
f x = True
";
        let err = lower(&parse(src).unwrap()).unwrap_err();
        assert!(matches!(err.kind, LangErrorKind::Type(_)));
    }

    #[test]
    fn clauses_less_polymorphic_than_signature_are_rejected() {
        let src = "data Nat = Z | S Nat
f :: a -> a
f x = Z
";
        let err = lower(&parse(src).unwrap()).unwrap_err();
        assert!(matches!(
            err.kind,
            LangErrorKind::RigidEscape(_) | LangErrorKind::Type(_)
        ));
    }

    #[test]
    fn unknown_identifiers_in_clause_rhs_are_rejected() {
        let src = "data Nat = Z | S Nat
f :: Nat -> Nat
f x = g x
";
        let err = lower(&parse(src).unwrap()).unwrap_err();
        assert!(matches!(err.kind, LangErrorKind::Unknown(_)));
    }

    #[test]
    fn incomplete_definitions_produce_warnings() {
        let src = "data Nat = Z | S Nat
pred :: Nat -> Nat
pred (S x) = x
";
        let m = module(src);
        let warnings = m.validate();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("pred"));
    }

    #[test]
    fn goal_rename_into_fresh_store() {
        let src = format!("{NAT}goal zr: add x Z === x\n");
        let m = module(&src);
        let g = m.goal("zr").unwrap();
        let mut target = VarStore::new();
        target.fresh(
            "occupied",
            Type::data0(m.program.sig.data_by_name("Nat").unwrap()),
        );
        let eq = g.rename_into(&mut target);
        assert_eq!(target.len(), 1 + g.vars.len());
        // The renamed equation's variables live in the target store.
        for v in eq.vars() {
            assert!(v.index() < target.len());
        }
    }

    #[test]
    fn mutually_recursive_datatypes_lower() {
        // The paper's introduction example: annotated syntax trees.
        let src = "data Nat = Z | S Nat
data Term a = Var a | Cst Nat | App (Expr a) (Expr a)
data Expr a = MkE (Term a) Nat
";
        let m = module(src);
        assert_eq!(m.program.sig.num_datas(), 3);
        let term = m.program.sig.data_by_name("Term").unwrap();
        assert_eq!(m.program.sig.constructors_of(term).len(), 3);
    }

    #[test]
    fn higher_order_functions_lower() {
        let src = "data List a = Nil | Cons a (List a)
map :: (a -> b) -> List a -> List b
map f Nil = Nil
map f (Cons x xs) = Cons (f x) (map f xs)
goal mapId: map id xs === xs
id :: a -> a
id x = x
";
        let m = module(src);
        assert!(m.validate().is_empty());
        assert_eq!(m.goals.len(), 1);
    }
}
