//! A recursive-descent parser for the frontend language.

use crate::ast::{Decl, RawCon, RawTerm, RawType};
use crate::error::{LangError, LangErrorKind};
use crate::lexer::lex;
use crate::token::{Spanned, Token};

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.token)
    }

    fn line(&self) -> u32 {
        // Clamp to the last token so end-of-input errors still carry the
        // line where input ran out (1 for empty input, never a bogus 0).
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(1)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn err(&self, expected: &str) -> LangError {
        match self.toks.get(self.pos) {
            Some(s) => LangError::new(
                s.line,
                LangErrorKind::UnexpectedToken {
                    found: s.token.to_string(),
                    expected: expected.to_string(),
                },
            ),
            None => LangError::new(self.line(), LangErrorKind::UnexpectedEof),
        }
    }

    fn expect(&mut self, want: &Token, expected: &str) -> Result<u32, LangError> {
        match self.peek() {
            Some(t) if t == want => Ok(self.next().expect("peeked").line),
            _ => Err(self.err(expected)),
        }
    }

    fn eat_seps(&mut self) {
        while self.peek() == Some(&Token::Sep) {
            self.pos += 1;
        }
    }

    // type := btype ('->' type)?
    fn parse_type(&mut self) -> Result<RawType, LangError> {
        let lhs = self.parse_btype()?;
        if self.peek() == Some(&Token::Arrow) {
            self.next();
            let rhs = self.parse_type()?;
            Ok(RawType::Arrow(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    // btype := atype+
    fn parse_btype(&mut self) -> Result<RawType, LangError> {
        let mut t = self.parse_atype()?;
        while matches!(
            self.peek(),
            Some(Token::Upper(_) | Token::Lower(_) | Token::LParen)
        ) {
            let arg = self.parse_atype()?;
            t = RawType::App(Box::new(t), Box::new(arg));
        }
        Ok(t)
    }

    fn parse_atype(&mut self) -> Result<RawType, LangError> {
        match self.peek() {
            Some(Token::Upper(_)) | Some(Token::Lower(_)) => {
                let Some(Spanned { token, .. }) = self.next() else {
                    unreachable!()
                };
                match token {
                    Token::Upper(n) | Token::Lower(n) => Ok(RawType::Ident(n)),
                    _ => unreachable!(),
                }
            }
            Some(Token::LParen) => {
                self.next();
                let t = self.parse_type()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(t)
            }
            _ => Err(self.err("a type")),
        }
    }

    // term := aterm+
    fn parse_term(&mut self) -> Result<RawTerm, LangError> {
        let mut t = self.parse_aterm()?;
        while matches!(
            self.peek(),
            Some(Token::Upper(_) | Token::Lower(_) | Token::LParen)
        ) {
            let arg = self.parse_aterm()?;
            t = RawTerm::App(Box::new(t), Box::new(arg));
        }
        Ok(t)
    }

    fn parse_aterm(&mut self) -> Result<RawTerm, LangError> {
        match self.peek() {
            Some(Token::Upper(_)) | Some(Token::Lower(_)) => {
                let Some(Spanned { token, line }) = self.next() else {
                    unreachable!()
                };
                match token {
                    Token::Upper(n) | Token::Lower(n) => Ok(RawTerm::Ident(n, line)),
                    _ => unreachable!(),
                }
            }
            Some(Token::LParen) => {
                self.next();
                let t = self.parse_term()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(t)
            }
            _ => Err(self.err("a term")),
        }
    }

    // pattern atoms for clause parameters: var, nullary constructor, or
    // parenthesised application.
    fn parse_pattern_atom(&mut self) -> Result<RawTerm, LangError> {
        match self.peek() {
            Some(Token::Lower(_)) | Some(Token::Upper(_)) => {
                let Some(Spanned { token, line }) = self.next() else {
                    unreachable!()
                };
                match token {
                    Token::Upper(n) | Token::Lower(n) => Ok(RawTerm::Ident(n, line)),
                    _ => unreachable!(),
                }
            }
            Some(Token::LParen) => {
                self.next();
                let t = self.parse_term()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(t)
            }
            _ => Err(self.err("a pattern")),
        }
    }

    fn parse_data(&mut self) -> Result<Decl, LangError> {
        let line = self.expect(&Token::Data, "`data`")?;
        let name = match self.next() {
            Some(Spanned {
                token: Token::Upper(n),
                ..
            }) => n,
            _ => return Err(self.err("a datatype name")),
        };
        let mut params = Vec::new();
        while let Some(Token::Lower(_)) = self.peek() {
            let Some(Spanned {
                token: Token::Lower(p),
                ..
            }) = self.next()
            else {
                unreachable!()
            };
            params.push(p);
        }
        self.expect(&Token::Equals, "`=`")?;
        let mut cons = Vec::new();
        loop {
            let cname = match self.next() {
                Some(Spanned {
                    token: Token::Upper(n),
                    ..
                }) => n,
                _ => return Err(self.err("a constructor name")),
            };
            let mut args = Vec::new();
            while matches!(
                self.peek(),
                Some(Token::Upper(_) | Token::Lower(_) | Token::LParen)
            ) {
                args.push(self.parse_atype()?);
            }
            cons.push(RawCon { name: cname, args });
            if self.peek() == Some(&Token::Pipe) {
                self.next();
            } else {
                break;
            }
        }
        Ok(Decl::Data {
            name,
            params,
            cons,
            line,
        })
    }

    fn parse_goal(&mut self) -> Result<Decl, LangError> {
        let line = self.expect(&Token::Goal, "`goal`")?;
        let name = match self.next() {
            Some(Spanned {
                token: Token::Lower(n),
                ..
            }) => n,
            _ => return Err(self.err("a goal name")),
        };
        self.expect(&Token::Colon, "`:`")?;
        let lhs = self.parse_term()?;
        self.expect(&Token::EqEqEq, "`===`")?;
        let rhs = self.parse_term()?;
        Ok(Decl::Goal {
            name,
            lhs,
            rhs,
            line,
        })
    }

    fn parse_sig_or_clause(&mut self) -> Result<Decl, LangError> {
        let (name, line) = match self.next() {
            Some(Spanned {
                token: Token::Lower(n),
                line,
            }) => (n, line),
            _ => return Err(self.err("a function name")),
        };
        if self.peek() == Some(&Token::ColonColon) {
            self.next();
            let ty = self.parse_type()?;
            return Ok(Decl::Sig { name, ty, line });
        }
        // Clause: patterns up to `=`.
        let mut params = Vec::new();
        while self.peek() != Some(&Token::Equals) {
            params.push(self.parse_pattern_atom()?);
        }
        self.expect(&Token::Equals, "`=`")?;
        let rhs = self.parse_term()?;
        Ok(Decl::Clause {
            name,
            params,
            rhs,
            line,
        })
    }

    fn parse_program(&mut self) -> Result<Vec<Decl>, LangError> {
        let mut decls = Vec::new();
        self.eat_seps();
        while self.pos < self.toks.len() {
            let decl = match self.peek() {
                Some(Token::Data) => self.parse_data()?,
                Some(Token::Goal) => self.parse_goal()?,
                Some(Token::Lower(_)) => self.parse_sig_or_clause()?,
                _ => return Err(self.err("a declaration")),
            };
            decls.push(decl);
            if self.pos < self.toks.len() {
                self.expect(&Token::Sep, "end of declaration")?;
            }
            self.eat_seps();
        }
        Ok(decls)
    }
}

/// Parses source text into raw declarations.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its line.
pub fn parse(src: &str) -> Result<Vec<Decl>, LangError> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_data_with_params() {
        let decls = parse("data List a = Nil | Cons a (List a)\n").unwrap();
        match &decls[0] {
            Decl::Data {
                name, params, cons, ..
            } => {
                assert_eq!(name, "List");
                assert_eq!(params, &vec!["a".to_string()]);
                assert_eq!(cons.len(), 2);
                assert_eq!(cons[1].args.len(), 2);
            }
            other => panic!("expected data, got {other:?}"),
        }
    }

    #[test]
    fn parses_signature() {
        let decls = parse("add :: Nat -> Nat -> Nat\n").unwrap();
        assert!(matches!(&decls[0], Decl::Sig { name, .. } if name == "add"));
    }

    #[test]
    fn parses_clause_with_nested_pattern() {
        let decls = parse("add (S x) y = S (add x y)\n").unwrap();
        match &decls[0] {
            Decl::Clause { name, params, .. } => {
                assert_eq!(name, "add");
                assert_eq!(params.len(), 2);
                let (head, args) = params[0].spine();
                assert_eq!(head, &RawTerm::Ident("S".into(), 1));
                assert_eq!(args.len(), 1);
            }
            other => panic!("expected clause, got {other:?}"),
        }
    }

    #[test]
    fn parses_goal() {
        let decls = parse("goal comm: add x y === add y x\n").unwrap();
        assert!(matches!(&decls[0], Decl::Goal { name, .. } if name == "comm"));
    }

    #[test]
    fn parses_multiple_declarations() {
        let src = "data Nat = Z | S Nat\nadd :: Nat -> Nat -> Nat\nadd Z y = y\nadd (S x) y = S (add x y)\ngoal zr: add x Z === x\n";
        let decls = parse(src).unwrap();
        assert_eq!(decls.len(), 5);
    }

    #[test]
    fn reports_error_lines() {
        let err = parse("data Nat = Z\n???\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_missing_rparen() {
        assert!(parse("f (S x = x\n").is_err());
    }

    #[test]
    fn semicolons_separate_declarations() {
        let decls = parse("a :: Nat; b :: Nat\n").unwrap();
        assert_eq!(decls.len(), 2);
    }
}
