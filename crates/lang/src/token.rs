//! Tokens of the CycleQ frontend language.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// The `data` keyword.
    Data,
    /// The `goal` keyword.
    Goal,
    /// An identifier starting with an uppercase letter (constructor or
    /// datatype).
    Upper(String),
    /// An identifier starting with a lowercase letter (variable or defined
    /// function).
    Lower(String),
    /// `::`
    ColonColon,
    /// `:`
    Colon,
    /// `=`
    Equals,
    /// `===` (the goal equation symbol, mirroring the plugin's `≡`).
    EqEqEq,
    /// `|`
    Pipe,
    /// `->`
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// End of a declaration (newline or `;`).
    Sep,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Data => write!(f, "data"),
            Token::Goal => write!(f, "goal"),
            Token::Upper(s) | Token::Lower(s) => write!(f, "{s}"),
            Token::ColonColon => write!(f, "::"),
            Token::Colon => write!(f, ":"),
            Token::Equals => write!(f, "="),
            Token::EqEqEq => write!(f, "==="),
            Token::Pipe => write!(f, "|"),
            Token::Arrow => write!(f, "->"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Sep => write!(f, "<newline>"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// The 1-based line number.
    pub line: u32,
}
