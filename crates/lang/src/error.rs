//! Frontend errors, with source line information.

use std::error::Error;
use std::fmt;

/// What went wrong.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LangErrorKind {
    /// An unexpected character in the source.
    UnexpectedChar(char),
    /// An unexpected token; the string describes what was expected.
    UnexpectedToken { found: String, expected: String },
    /// Unexpected end of input.
    UnexpectedEof,
    /// A name was declared twice.
    Duplicate(String),
    /// An identifier is not in scope.
    Unknown(String),
    /// A function clause appears without a preceding type signature.
    MissingSignature(String),
    /// A pattern repeats a variable.
    NonLinearPattern(String),
    /// A constructor pattern has the wrong number of arguments.
    PatternArity {
        constructor: String,
        expected: usize,
        got: usize,
    },
    /// A type error, rendered.
    Type(String),
    /// A clause violates the polymorphic signature (a rigid type variable
    /// was forced to a concrete type).
    RigidEscape(String),
    /// A rewrite-rule shape violation from the rewrite layer.
    Rule(String),
}

/// A frontend error at a source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LangError {
    /// The 1-based line number.
    pub line: u32,
    /// The failure.
    pub kind: LangErrorKind,
}

impl LangError {
    pub(crate) fn new(line: u32, kind: LangErrorKind) -> LangError {
        LangError { line, kind }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl fmt::Display for LangErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            LangErrorKind::UnexpectedToken { found, expected } => {
                write!(f, "unexpected `{found}`, expected {expected}")
            }
            LangErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            LangErrorKind::Duplicate(n) => write!(f, "duplicate declaration of `{n}`"),
            LangErrorKind::Unknown(n) => write!(f, "unknown identifier `{n}`"),
            LangErrorKind::MissingSignature(n) => {
                write!(f, "clause for `{n}` has no preceding type signature")
            }
            LangErrorKind::NonLinearPattern(v) => {
                write!(f, "pattern repeats variable `{v}`")
            }
            LangErrorKind::PatternArity {
                constructor,
                expected,
                got,
            } => write!(
                f,
                "constructor `{constructor}` expects {expected} pattern argument(s), got {got}"
            ),
            LangErrorKind::Type(msg) => write!(f, "type error: {msg}"),
            LangErrorKind::RigidEscape(msg) => {
                write!(f, "clause is less polymorphic than its signature: {msg}")
            }
            LangErrorKind::Rule(msg) => write!(f, "invalid rule: {msg}"),
        }
    }
}

impl Error for LangError {}
