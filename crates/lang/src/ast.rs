//! The raw abstract syntax tree produced by the parser, before name
//! resolution and type checking.

/// A raw type expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RawType {
    /// A type name (`Nat`) or a type variable (`a`), distinguished by case
    /// during lowering.
    Ident(String),
    /// Application of a type constructor (`List a`).
    App(Box<RawType>, Box<RawType>),
    /// A function type.
    Arrow(Box<RawType>, Box<RawType>),
}

/// A raw term (also used for patterns).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RawTerm {
    /// An identifier: variable, defined function or constructor, resolved
    /// during lowering. Carries the 1-based source line of the token so
    /// later stages (lowering, static analysis) can point diagnostics at
    /// the precise occurrence.
    Ident(String, u32),
    /// Application.
    App(Box<RawTerm>, Box<RawTerm>),
}

impl RawTerm {
    /// Flattens the application spine: `((f a) b)` becomes `(f, [a, b])`.
    pub fn spine(&self) -> (&RawTerm, Vec<&RawTerm>) {
        let mut args = Vec::new();
        let mut cur = self;
        while let RawTerm::App(f, a) = cur {
            args.push(a.as_ref());
            cur = f.as_ref();
        }
        args.reverse();
        (cur, args)
    }

    /// The source line of the term's head identifier.
    pub fn line(&self) -> u32 {
        match self {
            RawTerm::Ident(_, line) => *line,
            RawTerm::App(f, _) => f.line(),
        }
    }
}

/// A constructor declaration within a `data` declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawCon {
    /// The constructor name.
    pub name: String,
    /// Argument types.
    pub args: Vec<RawType>,
}

/// A top-level declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Decl {
    /// `data D a b = C1 τ… | C2 τ…`
    Data {
        /// The datatype name.
        name: String,
        /// Type parameters, in order.
        params: Vec<String>,
        /// Constructors.
        cons: Vec<RawCon>,
        /// Source line.
        line: u32,
    },
    /// `f :: τ`
    Sig {
        /// The function name.
        name: String,
        /// Its declared type.
        ty: RawType,
        /// Source line.
        line: u32,
    },
    /// `f p1 … pn = t`
    Clause {
        /// The function name.
        name: String,
        /// Argument patterns.
        params: Vec<RawTerm>,
        /// Right-hand side.
        rhs: RawTerm,
        /// Source line.
        line: u32,
    },
    /// `goal g: s === t`
    Goal {
        /// The goal name.
        name: String,
        /// Left-hand side.
        lhs: RawTerm,
        /// Right-hand side.
        rhs: RawTerm,
        /// Source line.
        line: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spine_flattens_nested_apps() {
        let t = RawTerm::App(
            Box::new(RawTerm::App(
                Box::new(RawTerm::Ident("f".into(), 1)),
                Box::new(RawTerm::Ident("a".into(), 1)),
            )),
            Box::new(RawTerm::Ident("b".into(), 1)),
        );
        let (head, args) = t.spine();
        assert_eq!(head, &RawTerm::Ident("f".into(), 1));
        assert_eq!(args.len(), 2);
        assert_eq!(t.line(), 1);
    }
}
