//! A small functional-language frontend for CycleQ.
//!
//! The CycleQ paper's artifact is a GHC plugin consuming "a small subset of
//! Haskell, including top-level recursive functions, algebraic datatypes,
//! and polymorphism" (§6), with goal equations written using `≡`. This crate
//! provides an equivalent stand-alone frontend: a Haskell-like surface
//! syntax with `data` declarations, type signatures, pattern-matching
//! clauses and `goal … : s === t` declarations, lowered to the formal
//! rewrite systems of §2.
//!
//! # Example
//!
//! ```
//! let src = "
//! data Nat = Z | S Nat
//! add :: Nat -> Nat -> Nat
//! add Z y = y
//! add (S x) y = S (add x y)
//! goal comm: add x y === add y x
//! ";
//! let module = cycleq_lang::parse_module(src).expect("valid program");
//! assert_eq!(module.goals.len(), 1);
//! assert!(module.validate().is_empty());
//! ```

mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
mod printer;
mod token;

pub use ast::{Decl, RawCon, RawTerm, RawType};
pub use error::{LangError, LangErrorKind};
pub use lower::{lower, GoalDef, Module};
pub use parser::parse;
pub use printer::{print_clause, print_module, print_program};

/// Parses and lowers a complete module in one step.
///
/// # Errors
///
/// Returns the first lexical, syntactic, resolution or type error.
pub fn parse_module(src: &str) -> Result<Module, LangError> {
    lower(&parse(src)?)
}
