//! Cyclic preproofs, proof checking and the global correctness condition
//! for CycleQ (§3, §5).
//!
//! A [`Preproof`] is a finite set of vertices, each carrying an equation and
//! an instance of one of the inference rules (Definition 3.1): `(Refl)`,
//! `(Reduce)`, `(Subst)`, `(Case)`, plus the implementation's eager
//! congruence and extensionality rules (§6). Premises may reference *any*
//! vertex, so cycles are represented directly.
//!
//! Preproofs are not necessarily sound (Example 3.2); a preproof is a
//! *proof* when every infinite path has a suffix with an infinitely
//! progressing trace (Definition 3.6). Restricting to variable-based traces
//! makes the condition decidable via size-change graphs: [`edge_graph`]
//! annotates each proof edge (Definition 5.3) and [`check_global`] applies
//! Theorem 5.2.
//!
//! The [`check`] function is an independent checker validating both local
//! rule instances and the global condition; everything the search or the
//! rewriting-induction translation produces is re-checked here.
//! [`check_interned`] is the same check run on a private hash-consed store
//! with reducts memoized across nodes — the fast path for re-checking — and
//! [`certificate`] serializes proofs into self-contained certificates that
//! can be re-validated offline (`cycleq check`).

mod certificate;
mod checker;
mod edges;
mod interned;
mod node;
mod preproof;
mod render;
mod transform;

pub use certificate::{export_certificate, program_fingerprint, Certificate, CertificateError};
pub use checker::{check, CheckError, CheckErrorKind, CheckReport, GlobalCheck};
pub use edges::{
    check_global, check_global_incremental, check_global_scc, cycle_witnesses, edge_graph,
    edge_graph_id, global_edges,
};
pub use interned::{check_interned, check_interned_with};
pub use node::{CaseBranch, Node, NodeId, RuleApp, Side, SubstApp};
pub use preproof::Preproof;
pub use render::{render_dot, render_text};
pub use transform::{count_redundant_lemmas, eliminate_redundant_lemmas, RedundancyReport};
