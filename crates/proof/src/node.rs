//! Proof nodes: equations justified by instances of the inference rules of
//! Fig. 3, plus the implementation's congruence and extensionality rules
//! (§6).

use cycleq_term::{Equation, Position, Subst, SymId, VarId};

/// Identifies a vertex of a [`crate::Preproof`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index. Only meaningful for ids obtained
    /// from the same preproof.
    pub fn from_index(i: usize) -> NodeId {
        NodeId(i as u32)
    }
}

/// Which side of an (internally ordered) equation a rule acted on.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Side {
    /// The stored left-hand side.
    Lhs,
    /// The stored right-hand side.
    Rhs,
}

impl Side {
    /// The other side.
    pub fn flip(self) -> Side {
        match self {
            Side::Lhs => Side::Rhs,
            Side::Rhs => Side::Lhs,
        }
    }

    /// Projects the chosen side of an equation.
    pub fn of(self, eq: &Equation) -> &cycleq_term::Term {
        match self {
            Side::Lhs => eq.lhs(),
            Side::Rhs => eq.rhs(),
        }
    }
}

/// One branch of a `(Case)` application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CaseBranch {
    /// The constructor for this branch.
    pub con: SymId,
    /// The fresh variables standing for the constructor's arguments.
    pub fresh: Vec<VarId>,
}

/// Details of a `(Subst)` application (the cut, §5).
///
/// The conclusion is `C[Mθ] ≈ P`; the premises are the *lemma* `M ≈ N`
/// (premise 0) and the *continuation* `C[Nθ] ≈ P` (premise 1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubstApp {
    /// Which side of the conclusion contains the rewritten occurrence.
    pub side: Side,
    /// The position of the occurrence within that side (the context `C`).
    pub pos: Position,
    /// The matching substitution `θ`.
    pub theta: Subst,
    /// Whether the lemma was used right-to-left (the occurrence matched the
    /// lemma's stored right-hand side). Equations are unordered, so both
    /// orientations are legal (Remark 3.1).
    pub lemma_flipped: bool,
}

/// The inference rule justifying a node, with the data needed to re-check
/// the instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuleApp {
    /// Not yet justified: a frontier goal during search. A preproof
    /// containing `Open` nodes is not checkable.
    Open,
    /// `(Refl)`: both sides are syntactically equal.
    Refl,
    /// `(Reduce)`: the single premise reduces both sides (`M →R* M'`,
    /// `N →R* N'`).
    Reduce,
    /// Congruence: `k M1 … Mn ≈ k N1 … Nn` decomposes into `Mi ≈ Ni`
    /// (derivable from `(Subst)`, applied eagerly by the implementation,
    /// §6).
    Cong,
    /// Function extensionality: `M ≈ N` at arrow type becomes
    /// `M x ≈ N x` for fresh `x` (§6).
    FunExt {
        /// The fresh variable applied to both sides.
        fresh: VarId,
    },
    /// `(Case)`: case analysis on a variable of datatype type; one premise
    /// per constructor.
    Case {
        /// The variable analysed.
        var: VarId,
        /// The branches, in the same order as the premises.
        branches: Vec<CaseBranch>,
    },
    /// `(Subst)`: contextual substitution of equals for equals; premises
    /// are `[lemma, continuation]`.
    Subst(SubstApp),
}

impl RuleApp {
    /// A short name for display.
    pub fn name(&self) -> &'static str {
        match self {
            RuleApp::Open => "Open",
            RuleApp::Refl => "Refl",
            RuleApp::Reduce => "Reduce",
            RuleApp::Cong => "Cong",
            RuleApp::FunExt { .. } => "FunExt",
            RuleApp::Case { .. } => "Case",
            RuleApp::Subst(_) => "Subst",
        }
    }
}

/// A vertex of a preproof: an equation, the rule justifying it, and its
/// premises (Definition 3.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Node {
    /// The equation at this vertex.
    pub eq: Equation,
    /// The rule instance.
    pub rule: RuleApp,
    /// Premises, in rule order. For `(Subst)` this is `[lemma,
    /// continuation]`; premises may reference *any* vertex (cycles are
    /// formed by referencing earlier nodes).
    pub premises: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_term::fixtures::NatList;
    use cycleq_term::{Term, VarStore};

    #[test]
    fn side_projection_and_flip() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let eq = Equation::new(Term::var(x), Term::sym(f.zero));
        assert_eq!(Side::Lhs.of(&eq), &Term::var(x));
        assert_eq!(Side::Rhs.of(&eq), &Term::sym(f.zero));
        assert_eq!(Side::Lhs.flip(), Side::Rhs);
    }

    #[test]
    fn rule_names() {
        assert_eq!(RuleApp::Refl.name(), "Refl");
        assert_eq!(RuleApp::Open.name(), "Open");
    }
}
