//! Cyclic preproofs (Definition 3.1) as a growable, truncatable arena.
//!
//! The arena supports the access patterns of goal-directed search: nodes are
//! pushed as goals are uncovered, justified in place once a rule applies,
//! and popped on backtracking together with the variables they introduced.

use cycleq_term::{Equation, TermId, VarStore};

use crate::node::{Node, NodeId, RuleApp};

/// A cyclic preproof: a set of vertices with equations, rules and premises.
///
/// Cycles are represented directly (Definition 3.1): a premise may reference
/// any vertex, not only descendants.
///
/// Alongside the owned equations, every node may carry the *interned* ids
/// of its two sides relative to the proof search's
/// [`cycleq_term::TermStore`]. The search uses them for O(1) lemma-side
/// lookup and equality; the independent checker deliberately ignores them
/// and re-checks the owned terms, so a corrupted store can never make a bad
/// proof pass.
#[derive(Clone, Debug, Default)]
pub struct Preproof {
    nodes: Vec<Node>,
    vars: VarStore,
    /// Interned `(lhs, rhs)` ids per node, parallel to `nodes`; `None` for
    /// nodes pushed by store-less builders.
    interned: Vec<Option<(TermId, TermId)>>,
}

impl Preproof {
    /// An empty preproof.
    pub fn new() -> Preproof {
        Preproof::default()
    }

    /// A preproof whose variables start from an existing store (e.g. the
    /// goal's variables).
    pub fn with_vars(vars: VarStore) -> Preproof {
        Preproof {
            nodes: Vec::new(),
            vars,
            interned: Vec::new(),
        }
    }

    /// The variable store owning every variable of every node equation.
    pub fn vars(&self) -> &VarStore {
        &self.vars
    }

    /// Mutable access to the variable store (for allocating fresh case
    /// variables).
    pub fn vars_mut(&mut self) -> &mut VarStore {
        &mut self.vars
    }

    /// Adds an unjustified (open) node for the equation, returning its id.
    pub fn push_open(&mut self, eq: Equation) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            eq,
            rule: RuleApp::Open,
            premises: Vec::new(),
        });
        self.interned.push(None);
        id
    }

    /// Adds an open node together with the interned ids of its two sides
    /// (relative to the caller's term store).
    pub fn push_open_interned(&mut self, eq: Equation, ids: (TermId, TermId)) -> NodeId {
        let id = self.push_open(eq);
        self.interned[id.index()] = Some(ids);
        id
    }

    /// The interned `(lhs, rhs)` ids of a node, if the builder recorded
    /// them. Ids are relative to the store of whoever built the proof.
    pub fn interned(&self, id: NodeId) -> Option<(TermId, TermId)> {
        self.interned[id.index()]
    }

    /// Justifies a node with a rule instance and premises.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn justify(&mut self, id: NodeId, rule: RuleApp, premises: Vec<NodeId>) {
        let node = &mut self.nodes[id.index()];
        node.rule = rule;
        node.premises = premises;
    }

    /// Reverts a node to `Open`, dropping its premises (backtracking).
    pub fn reopen(&mut self, id: NodeId) {
        let node = &mut self.nodes[id.index()];
        node.rule = RuleApp::Open;
        node.premises = Vec::new();
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the preproof has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Whether every node is justified (no `Open` rules).
    pub fn is_closed(&self) -> bool {
        self.nodes.iter().all(|n| !matches!(n.rule, RuleApp::Open))
    }

    /// A checkpoint for [`Preproof::truncate`]: the current node count and
    /// variable count.
    pub fn mark(&self) -> (usize, usize) {
        (self.nodes.len(), self.vars.len())
    }

    /// Pops nodes and variables back to a checkpoint from
    /// [`Preproof::mark`].
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is in the future.
    pub fn truncate(&mut self, mark: (usize, usize)) {
        assert!(mark.0 <= self.nodes.len(), "preproof mark is in the future");
        self.nodes.truncate(mark.0);
        self.interned.truncate(mark.0);
        self.vars.truncate(mark.1);
    }

    /// The underlying graph's edges `(v, premise)` (Definition 3.1).
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(|(id, n)| n.premises.iter().map(move |p| (id, *p)))
    }

    /// Whether the edge `(v, p)` is a *back edge*: its target was created
    /// no later than its source. Cycles in a preproof built by goal-directed
    /// search arise exactly from such edges.
    pub fn is_back_edge(&self, v: NodeId, p: NodeId) -> bool {
        p.index() <= v.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_term::fixtures::NatList;
    use cycleq_term::{Term, VarStore};

    fn trivial_eq(f: &NatList) -> Equation {
        Equation::new(Term::sym(f.zero), Term::sym(f.zero))
    }

    #[test]
    fn push_justify_and_read_back() {
        let f = NatList::new();
        let mut proof = Preproof::new();
        let id = proof.push_open(trivial_eq(&f));
        assert!(!proof.is_closed());
        proof.justify(id, RuleApp::Refl, vec![]);
        assert!(proof.is_closed());
        assert_eq!(proof.node(id).rule.name(), "Refl");
    }

    #[test]
    fn truncate_pops_nodes_and_vars() {
        let f = NatList::new();
        let mut proof = Preproof::new();
        proof.push_open(trivial_eq(&f));
        let mark = proof.mark();
        proof.push_open(trivial_eq(&f));
        proof.vars_mut().fresh("x", f.nat_ty());
        proof.truncate(mark);
        assert_eq!(proof.len(), 1);
        assert_eq!(proof.vars().len(), 0);
    }

    #[test]
    fn reopen_clears_premises() {
        let f = NatList::new();
        let mut proof = Preproof::new();
        let a = proof.push_open(trivial_eq(&f));
        let b = proof.push_open(trivial_eq(&f));
        proof.justify(a, RuleApp::Reduce, vec![b]);
        proof.reopen(a);
        assert!(matches!(proof.node(a).rule, RuleApp::Open));
        assert!(proof.node(a).premises.is_empty());
    }

    #[test]
    fn edges_and_back_edges() {
        let f = NatList::new();
        let mut proof = Preproof::new();
        let a = proof.push_open(trivial_eq(&f));
        let b = proof.push_open(trivial_eq(&f));
        proof.justify(a, RuleApp::Reduce, vec![b]);
        proof.justify(b, RuleApp::Reduce, vec![a]); // cycle
        let edges: Vec<_> = proof.edges().collect();
        assert_eq!(edges, vec![(a, b), (b, a)]);
        assert!(!proof.is_back_edge(a, b));
        assert!(proof.is_back_edge(b, a));
    }

    #[test]
    fn interned_ids_follow_nodes_through_truncate() {
        let f = NatList::new();
        let mut store = cycleq_term::TermStore::new();
        let z = store.intern(&Term::sym(f.zero));
        let mut proof = Preproof::new();
        let a = proof.push_open(trivial_eq(&f));
        let mark = proof.mark();
        let b = proof.push_open_interned(trivial_eq(&f), (z, z));
        assert_eq!(proof.interned(a), None);
        assert_eq!(proof.interned(b), Some((z, z)));
        proof.truncate(mark);
        assert_eq!(proof.len(), 1);
        // Re-pushing after truncation keeps the side table aligned.
        let c = proof.push_open_interned(trivial_eq(&f), (z, z));
        assert_eq!(c.index(), 1);
        assert_eq!(proof.interned(c), Some((z, z)));
    }

    #[test]
    fn with_vars_adopts_store() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        vars.fresh("x", f.nat_ty());
        let proof = Preproof::with_vars(vars);
        assert_eq!(proof.vars().len(), 1);
    }
}
