//! The interned proof checker: the same independent check as
//! [`crate::check`], run on a private hash-consed [`TermStore`].
//!
//! Every equation of the preproof is re-interned into a fresh store owned by
//! the checker — [`TermId`]s are *never* shared with the search's store, so a
//! corrupted search-side store cannot leak into certification. Within one
//! proof, though, reducts are shared: the [`MemoRewriter`]'s id-keyed memo
//! means a normal form derived while validating one `(Reduce)` node is free
//! for every later node that reaches the same term, which is what makes
//! re-checking large proofs cheap (cf. E-Cyclist's focus on validation cost).
//!
//! The rule-by-rule logic deliberately mirrors [`crate::check`] — same check
//! order, same error kinds, same messages — so the two checkers are
//! verdict-equivalent (pinned by the differential property test in
//! `tests/differential.rs`). Both sides of the comparison rely on Remark 2.1:
//! for confluent, weakly normalising systems, comparing normal forms decides
//! `→R*`-convertibility regardless of strategy, and hash-consing makes the
//! final comparison O(1) id equality.

use std::collections::HashMap;
use std::time::Instant;

use cycleq_rewrite::{MemoRewriter, Program};
use cycleq_sizechange::Soundness;
use cycleq_term::{
    Head, IdSubst, Signature, TermId, TermStore, TyUnifier, TyVarId, Type, TypeError, VarStore,
};

use crate::checker::{CheckError, CheckErrorKind, CheckReport, GlobalCheck};
use crate::edges::check_global_scc;
use crate::node::{NodeId, RuleApp, Side};
use crate::preproof::Preproof;

fn err(node: NodeId, kind: CheckErrorKind) -> CheckError {
    CheckError {
        node: Some(node),
        kind,
    }
}

fn pair_eq_modulo_flip(a: (TermId, TermId), b: (TermId, TermId)) -> bool {
    (a.0 == b.0 && a.1 == b.1) || (a.0 == b.1 && a.1 == b.0)
}

/// A cached principal type with its metavariables renumbered `0..nvars` in
/// first-occurrence order. Re-instantiated with fresh metavariables on
/// every cache hit, exactly as re-inference would allocate them.
struct CanonTy {
    canon: Type,
    nvars: u32,
}

/// Outcome of the unifier-free typing attempt ([`ground_ty_of_id`]).
enum FastTy {
    /// The subterm's principal type, ground.
    Ground(Type),
    /// Not decidable structurally (polymorphic residue, or a variable with
    /// type variables in its declared type) — fall back to unifier-based
    /// inference.
    Bail,
    /// A definite type mismatch — the node must re-run the owned inference
    /// to reproduce its exact error.
    Fail,
}

/// One-directional matching of a scheme pattern against a ground type,
/// binding scheme variables (`TyVarId(0..bind.len())`) on first use.
/// Returns false on any mismatch — which, with `t` ground, is exactly when
/// unification would fail.
fn match_ground(pat: &Type, t: &Type, bind: &mut [Option<Type>]) -> bool {
    match pat {
        Type::Var(v) => {
            let i = v.0 as usize;
            match &bind[i] {
                Some(b) => b == t,
                None => {
                    bind[i] = Some(t.clone());
                    true
                }
            }
        }
        Type::Data(d, args) => match t {
            Type::Data(d2, args2) => {
                d == d2
                    && args.len() == args2.len()
                    && args
                        .iter()
                        .zip(args2)
                        .all(|(a, b)| match_ground(a, b, bind))
            }
            _ => false,
        },
        Type::Arrow(a, b) => match t {
            Type::Arrow(a2, b2) => match_ground(a, a2, bind) && match_ground(b, b2, bind),
            _ => false,
        },
    }
}

/// Unifier-free typing for the common fully-monomorphic case: if every
/// free variable has a ground declared type and every polymorphic head is
/// fully determined by its (ground) arguments, the principal type falls
/// out of structural matching alone — no metavariables, no occurs checks,
/// no binding maps. Anything undetermined bails to the unifier-based
/// [`ty_of_id`], and a definite mismatch reports [`FastTy::Fail`] so the
/// node re-runs owned inference for the exact error text. Ground results
/// land in the same `cache` the unifier path uses (`nvars == 0`).
fn ground_ty_of_id(
    store: &TermStore,
    sig: &Signature,
    vars: &VarStore,
    cache: &mut HashMap<TermId, CanonTy>,
    id: TermId,
) -> FastTy {
    if let Some(c) = cache.get(&id) {
        return if c.nvars == 0 {
            FastTy::Ground(c.canon.clone())
        } else {
            FastTy::Bail
        };
    }
    let (mut cur, mut bind): (Type, Vec<Option<Type>>) = match store.head(id) {
        Head::Var(v) => {
            let t = vars.ty(v).clone();
            if !t.vars().is_empty() {
                return FastTy::Bail;
            }
            (t, Vec::new())
        }
        Head::Sym(s) => {
            let scheme = sig.sym(s).scheme();
            (
                scheme.body().clone(),
                vec![None; scheme.num_vars() as usize],
            )
        }
    };
    for i in 0..store.args(id).len() {
        let arg = store.args(id)[i];
        let at = match ground_ty_of_id(store, sig, vars, cache, arg) {
            FastTy::Ground(t) => t,
            other => return other,
        };
        // Resolve a scheme variable in function position through the
        // bindings collected so far; unbound means the type is not yet
        // determined structurally.
        while let Type::Var(v) = cur {
            match &bind[v.0 as usize] {
                Some(b) => cur = b.clone(),
                None => return FastTy::Bail,
            }
        }
        match cur {
            Type::Arrow(p, r) => {
                if !match_ground(&p, &at, &mut bind) {
                    return FastTy::Fail;
                }
                cur = *r;
            }
            _ => return FastTy::Fail,
        }
    }
    // Apply the bindings to the result; any leftover scheme variable means
    // the type is polymorphic and the unifier path must take over.
    let free = cur.vars();
    if !free.is_empty() {
        if free.iter().any(|v| bind[v.0 as usize].is_none()) {
            return FastTy::Bail;
        }
        let map: std::collections::BTreeMap<TyVarId, Type> = free
            .into_iter()
            .map(|v| (v, bind[v.0 as usize].clone().expect("checked above")))
            .collect();
        cur = cur.subst(&map);
        if !cur.vars().is_empty() {
            return FastTy::Bail;
        }
    }
    cache.insert(
        id,
        CanonTy {
            canon: cur.clone(),
            nvars: 0,
        },
    );
    FastTy::Ground(cur)
}

/// The unifier-based equation type check, mirroring the owned checker's
/// per-node block on interned ids. Used when [`ground_ty_of_id`] bails.
fn unifier_ty_check(
    store: &TermStore,
    sig: &Signature,
    vars: &VarStore,
    cache: &mut HashMap<TermId, CanonTy>,
    cl: TermId,
    cr: TermId,
) -> bool {
    let mut uni = TyUnifier::new(10_000);
    ty_of_id(store, sig, vars, &mut uni, cache, cl)
        .and_then(|(lt, _)| {
            let (rt, _) = ty_of_id(store, sig, vars, &mut uni, cache, cr)?;
            uni.unify(&lt, &rt)
        })
        .is_ok()
}

/// The memoized id-level counterpart of `Term::infer_type`: the same
/// bottom-up inference, except that a subterm may be typed once per check
/// and afterwards served from `cache` as a canonical scheme. Returns the
/// type plus a *purity* flag: pure means every free variable of the
/// subterm has a ground declared type, so its inference touches no
/// metavariable shared with sibling subterms — its principal type is
/// context-free up to renaming of its own fresh metavariables, which is
/// exactly what the canonical scheme captures. Impure subterms (a free
/// variable with type variables in its declared type) are never cached:
/// their inference can constrain type variables shared across the
/// equation, and skipping it could accept what the owned checker rejects.
fn ty_of_id(
    store: &TermStore,
    sig: &Signature,
    vars: &VarStore,
    uni: &mut TyUnifier,
    cache: &mut HashMap<TermId, CanonTy>,
    id: TermId,
) -> Result<(Type, bool), TypeError> {
    if let Some(c) = cache.get(&id) {
        if c.nvars == 0 {
            return Ok((c.canon.clone(), true));
        }
        let map: std::collections::BTreeMap<TyVarId, Type> = (0..c.nvars)
            .map(|i| (TyVarId(i), Type::Var(uni.fresh())))
            .collect();
        return Ok((c.canon.subst(&map), true));
    }
    let (head_ty, mut pure) = match store.head(id) {
        Head::Var(v) => {
            let t = vars.ty(v).clone();
            let ground = t.vars().is_empty();
            (t, ground)
        }
        Head::Sym(s) => (sig.sym(s).scheme().instantiate(&mut || uni.fresh()), true),
    };
    let mut cur = head_ty;
    for i in 0..store.args(id).len() {
        let arg = store.args(id)[i];
        let (arg_ty, arg_pure) = ty_of_id(store, sig, vars, uni, cache, arg)?;
        pure &= arg_pure;
        let res = Type::Var(uni.fresh());
        uni.unify(&cur, &Type::arrow(arg_ty, res.clone()))?;
        cur = res;
    }
    let ty = uni.resolve(&cur);
    if pure {
        let free = ty.vars();
        let canon = if free.is_empty() {
            ty.clone()
        } else {
            let map: std::collections::BTreeMap<TyVarId, Type> = free
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, Type::Var(TyVarId(i as u32))))
                .collect();
            ty.subst(&map)
        };
        cache.insert(
            id,
            CanonTy {
                canon,
                nvars: free.len() as u32,
            },
        );
    }
    Ok((ty, pure))
}

/// Checks the preproof on a freshly interned store.
///
/// Equivalent verdict to [`crate::check`], but `(Reduce)` validation runs on
/// the id level with reducts memoized across nodes. Use
/// [`check_interned_with`] to reuse one rewriter (and its memo) across many
/// checks of proofs over the same program.
///
/// # Errors
///
/// Returns the first [`CheckError`] found, exactly as [`crate::check`] would.
pub fn check_interned(
    proof: &Preproof,
    prog: &Program,
    mode: GlobalCheck,
) -> Result<CheckReport, CheckError> {
    // A fresh store per call: independence from the search store is the
    // point. No shared normal-form cache is attached for the same reason.
    let mut rw = MemoRewriter::new(&prog.sig, &prog.trs);
    check_interned_with(proof, prog, mode, &mut rw)
}

/// [`check_interned`] with a caller-supplied rewriter.
///
/// The rewriter must have been built from the *same program* (its signature
/// and rules); reusing it across proofs of one program keeps the reduct memo
/// warm, which is the batch-recheck fast path. It must not share a store (or
/// a shared cache) with the search that produced the proofs.
pub fn check_interned_with(
    proof: &Preproof,
    prog: &Program,
    mode: GlobalCheck,
    rw: &mut MemoRewriter<'_>,
) -> Result<CheckReport, CheckError> {
    let _span = cycleq_trace::span!("check");
    let start = Instant::now();
    let hits_before = rw.memo_hits();
    // Intern every node equation up front. `Preproof::interned` ids (if any)
    // belong to the search store and are deliberately ignored.
    let ids: Vec<(TermId, TermId)> = proof
        .nodes()
        .map(|(_, node)| (rw.intern(node.eq.lhs()), rw.intern(node.eq.rhs())))
        .collect();
    let mut back_edges = 0;
    let mut reducts_checked = 0u64;
    // Ground principal types per interned subterm, shared across nodes —
    // the nodes of a cyclic proof overlap heavily, so inference is mostly
    // cache hits after the first few nodes.
    let mut ty_cache: HashMap<TermId, CanonTy> = HashMap::new();
    for (id, node) in proof.nodes() {
        for p in &node.premises {
            if p.index() >= proof.len() {
                return Err(err(id, CheckErrorKind::DanglingPremise));
            }
            if proof.is_back_edge(id, *p) {
                back_edges += 1;
            }
        }
        // Type check on the id level, memoizing ground subterm types: the
        // nodes of a cyclic proof share most of their subterms, so after
        // the first few nodes inference is mostly cache hits. Should the
        // fast path reject, the node is re-checked with the owned
        // algorithm so the error text matches [`crate::check`] exactly.
        let (cl, cr) = ids[id.index()];
        let fast_ok = {
            let store = rw.store();
            let sig = &prog.sig;
            let vars = proof.vars();
            match ground_ty_of_id(store, sig, vars, &mut ty_cache, cl) {
                FastTy::Ground(lt) => match ground_ty_of_id(store, sig, vars, &mut ty_cache, cr) {
                    FastTy::Ground(rt) => lt == rt,
                    FastTy::Bail => unifier_ty_check(store, sig, vars, &mut ty_cache, cl, cr),
                    FastTy::Fail => false,
                },
                FastTy::Bail => unifier_ty_check(store, sig, vars, &mut ty_cache, cl, cr),
                FastTy::Fail => false,
            }
        };
        if !fast_ok {
            let mut uni = TyUnifier::new(10_000);
            let lt = node
                .eq
                .lhs()
                .infer_type(&prog.sig, proof.vars(), &mut uni)
                .map_err(|e| err(id, CheckErrorKind::IllTyped(e.to_string())))?;
            let rt = node
                .eq
                .rhs()
                .infer_type(&prog.sig, proof.vars(), &mut uni)
                .map_err(|e| err(id, CheckErrorKind::IllTyped(e.to_string())))?;
            uni.unify(&lt, &rt)
                .map_err(|e| err(id, CheckErrorKind::IllTyped(e.to_string())))?;
        }
        let premise_ids = |i: usize| ids[node.premises[i].index()];
        match &node.rule {
            RuleApp::Open => return Err(err(id, CheckErrorKind::OpenNode)),
            RuleApp::Refl => {
                if !node.premises.is_empty() {
                    return Err(err(
                        id,
                        CheckErrorKind::PremiseCount {
                            expected: 0,
                            got: node.premises.len(),
                        },
                    ));
                }
                if cl != cr {
                    return Err(err(id, CheckErrorKind::NotReflexive));
                }
            }
            RuleApp::Reduce => {
                if node.premises.len() != 1 {
                    return Err(err(
                        id,
                        CheckErrorKind::PremiseCount {
                            expected: 1,
                            got: node.premises.len(),
                        },
                    ));
                }
                let (pl, pr) = premise_ids(0);
                let cl_nf = rw.normalize_id(cl).id;
                let cr_nf = rw.normalize_id(cr).id;
                let pl_nf = rw.normalize_id(pl).id;
                let pr_nf = rw.normalize_id(pr).id;
                reducts_checked += 4;
                let straight = cl_nf == pl_nf && cr_nf == pr_nf;
                let flipped = cl_nf == pr_nf && cr_nf == pl_nf;
                if !straight && !flipped {
                    return Err(err(id, CheckErrorKind::NotAReduct));
                }
            }
            RuleApp::Cong => {
                let store = rw.store();
                let Some((k1, args1)) = store.as_constructor(cl, &prog.sig) else {
                    return Err(err(id, CheckErrorKind::NotACongruence));
                };
                let Some((k2, args2)) = store.as_constructor(cr, &prog.sig) else {
                    return Err(err(id, CheckErrorKind::NotACongruence));
                };
                if k1 != k2 || args1.len() != args2.len() {
                    return Err(err(id, CheckErrorKind::NotACongruence));
                }
                if node.premises.len() != args1.len() {
                    return Err(err(
                        id,
                        CheckErrorKind::PremiseCount {
                            expected: args1.len(),
                            got: node.premises.len(),
                        },
                    ));
                }
                for (i, (&a, &b)) in args1.iter().zip(args2).enumerate() {
                    if !pair_eq_modulo_flip((a, b), premise_ids(i)) {
                        return Err(err(id, CheckErrorKind::NotACongruence));
                    }
                }
            }
            RuleApp::FunExt { fresh } => {
                if node.premises.len() != 1 {
                    return Err(err(
                        id,
                        CheckErrorKind::PremiseCount {
                            expected: 1,
                            got: node.premises.len(),
                        },
                    ));
                }
                let store = rw.store_mut();
                if store.contains_var(cl, *fresh) || store.contains_var(cr, *fresh) {
                    return Err(err(id, CheckErrorKind::BadExtensionality));
                }
                let v = store.var(*fresh);
                let want = (store.apply_args(cl, &[v]), store.apply_args(cr, &[v]));
                if !pair_eq_modulo_flip(want, premise_ids(0)) {
                    return Err(err(id, CheckErrorKind::BadExtensionality));
                }
            }
            RuleApp::Case { var, branches } => {
                let var_ty = proof.vars().ty(*var).clone();
                let Some((data, ty_args)) = var_ty.as_data() else {
                    return Err(err(
                        id,
                        CheckErrorKind::BadCaseSplit(
                            "case variable is not of datatype type".into(),
                        ),
                    ));
                };
                let cons = prog.sig.constructors_of(data);
                if branches.len() != cons.len() || node.premises.len() != cons.len() {
                    return Err(err(
                        id,
                        CheckErrorKind::BadCaseSplit(format!(
                            "expected {} branches, got {}",
                            cons.len(),
                            branches.len()
                        )),
                    ));
                }
                for (i, (&k, branch)) in cons.iter().zip(branches).enumerate() {
                    if branch.con != k {
                        return Err(err(
                            id,
                            CheckErrorKind::BadCaseSplit(
                                "branch constructor order mismatch".into(),
                            ),
                        ));
                    }
                    if branch.fresh.len() != prog.sig.constructor_arity(k) {
                        return Err(err(
                            id,
                            CheckErrorKind::BadCaseSplit("fresh variable count mismatch".into()),
                        ));
                    }
                    let inst = prog
                        .sig
                        .sym(k)
                        .scheme()
                        .instantiate_with(ty_args)
                        .map_err(|e| err(id, CheckErrorKind::IllTyped(e.to_string())))?;
                    let (arg_tys, _) = inst.uncurry();
                    let store = rw.store_mut();
                    for (v, want_ty) in branch.fresh.iter().zip(arg_tys) {
                        if store.contains_var(cl, *v) || store.contains_var(cr, *v) {
                            return Err(err(
                                id,
                                CheckErrorKind::BadCaseSplit("case variable not fresh".into()),
                            ));
                        }
                        if proof.vars().ty(*v) != want_ty {
                            return Err(err(
                                id,
                                CheckErrorKind::BadCaseSplit("fresh variable type mismatch".into()),
                            ));
                        }
                    }
                    let fresh_ids: Vec<TermId> =
                        branch.fresh.iter().map(|v| store.var(*v)).collect();
                    let pattern = store.node(Head::Sym(k), fresh_ids);
                    let theta = IdSubst::singleton(*var, pattern);
                    let want = (store.subst(cl, &theta), store.subst(cr, &theta));
                    if !pair_eq_modulo_flip(want, premise_ids(i)) {
                        return Err(err(
                            id,
                            CheckErrorKind::BadCaseSplit(format!("branch {i} equation mismatch")),
                        ));
                    }
                }
            }
            RuleApp::Subst(app) => {
                if node.premises.len() != 2 {
                    return Err(err(
                        id,
                        CheckErrorKind::PremiseCount {
                            expected: 2,
                            got: node.premises.len(),
                        },
                    ));
                }
                let store = rw.store_mut();
                let (ll, lr) = premise_ids(0);
                let (from, to) = if app.lemma_flipped {
                    (lr, ll)
                } else {
                    (ll, lr)
                };
                let mut theta = IdSubst::new();
                for (v, t) in app.theta.iter() {
                    let bound = store.intern(t);
                    theta.insert(v, bound);
                }
                let side_id = match app.side {
                    Side::Lhs => cl,
                    Side::Rhs => cr,
                };
                let Some(occurrence) = store.at(side_id, &app.pos) else {
                    return Err(err(id, CheckErrorKind::BadSubst("position invalid".into())));
                };
                if occurrence != store.subst(from, &theta) {
                    return Err(err(
                        id,
                        CheckErrorKind::BadSubst("occurrence is not the lemma instance".into()),
                    ));
                }
                let to_inst = store.subst(to, &theta);
                let rewritten = store
                    .replace_at(side_id, &app.pos, to_inst)
                    .expect("position validated above");
                let untouched = match app.side {
                    Side::Lhs => cr,
                    Side::Rhs => cl,
                };
                let want = match app.side {
                    Side::Lhs => (rewritten, untouched),
                    Side::Rhs => (untouched, rewritten),
                };
                if !pair_eq_modulo_flip(want, premise_ids(1)) {
                    return Err(err(
                        id,
                        CheckErrorKind::BadSubst("continuation equation mismatch".into()),
                    ));
                }
            }
        }
    }
    let global_verified = match mode {
        GlobalCheck::VariableTraces => {
            // The SCC-restricted check is verdict-equivalent to the owned
            // checker's `check_global` (self-loops only form within an
            // SCC) but skips the acyclic bulk of the proof.
            if check_global_scc(proof) == Soundness::Unsound {
                return Err(CheckError {
                    node: None,
                    kind: CheckErrorKind::GloballyUnsound,
                });
            }
            true
        }
        GlobalCheck::TrustConstruction => false,
    };
    Ok(CheckReport {
        nodes: proof.len(),
        back_edges,
        global_verified,
        reducts_checked,
        memo_hits: rw.memo_hits() - hits_before,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::node::{CaseBranch, SubstApp};
    use cycleq_rewrite::fixtures::nat_list_program;
    use cycleq_term::{Equation, Position, Subst, Term};

    #[test]
    fn matches_owned_checker_on_reduce_proof() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let conc = proof.push_open(Equation::new(
            Term::apps(p.f.add, vec![p.f.num(1), p.f.num(1)]),
            p.f.num(2),
        ));
        let prem = proof.push_open(Equation::new(p.f.num(2), p.f.num(2)));
        proof.justify(prem, RuleApp::Refl, vec![]);
        proof.justify(conc, RuleApp::Reduce, vec![prem]);
        let owned = check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
        let interned = check_interned(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
        assert_eq!(owned.nodes, interned.nodes);
        assert_eq!(owned.back_edges, interned.back_edges);
        assert_eq!(owned.reducts_checked, interned.reducts_checked);
        assert_eq!(interned.reducts_checked, 4);
    }

    #[test]
    fn reuse_across_proofs_hits_the_memo() {
        let p = nat_list_program();
        let build = |n: usize| {
            let mut proof = Preproof::new();
            let conc = proof.push_open(Equation::new(
                Term::apps(p.f.add, vec![p.f.num(n), p.f.num(n)]),
                p.f.num(2 * n),
            ));
            let prem = proof.push_open(Equation::new(p.f.num(2 * n), p.f.num(2 * n)));
            proof.justify(prem, RuleApp::Refl, vec![]);
            proof.justify(conc, RuleApp::Reduce, vec![prem]);
            proof
        };
        let mut rw = MemoRewriter::new(&p.prog.sig, &p.prog.trs);
        let a = build(3);
        let b = build(3);
        let cold = check_interned_with(&a, &p.prog, GlobalCheck::VariableTraces, &mut rw).unwrap();
        let warm = check_interned_with(&b, &p.prog, GlobalCheck::VariableTraces, &mut rw).unwrap();
        assert_eq!(cold.reducts_checked, 4);
        // Every normal form of the second, identical proof is answered from
        // the memo populated by the first.
        assert!(warm.memo_hits >= warm.reducts_checked);
    }

    #[test]
    fn rejects_example_3_2_globally() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let x = proof.vars_mut().fresh("x", p.f.nat_ty());
        let xs = proof.vars_mut().fresh("xs", p.f.list_ty(p.f.nat_ty()));
        let lhs = p.f.cons_t(Term::var(x), Term::var(xs));
        let root = proof.push_open(Equation::new(lhs, Term::sym(p.f.nil)));
        let refl = proof.push_open(Equation::new(Term::sym(p.f.nil), Term::sym(p.f.nil)));
        proof.justify(refl, RuleApp::Refl, vec![]);
        let mut theta = Subst::new();
        theta.insert(x, Term::var(x));
        theta.insert(xs, Term::var(xs));
        proof.justify(
            root,
            RuleApp::Subst(SubstApp {
                side: Side::Lhs,
                pos: Position::root(),
                theta,
                lemma_flipped: false,
            }),
            vec![root, refl],
        );
        assert!(check_interned(&proof, &p.prog, GlobalCheck::TrustConstruction).is_ok());
        let e = check_interned(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap_err();
        assert_eq!(e.kind, CheckErrorKind::GloballyUnsound);
    }

    #[test]
    fn case_split_checks_at_id_level() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let x = proof.vars_mut().fresh("x", p.f.nat_ty());
        let eq = Equation::new(Term::var(x), Term::var(x));
        let root = proof.push_open(eq);
        let zb = proof.push_open(Equation::new(Term::sym(p.f.zero), Term::sym(p.f.zero)));
        let xp = proof.vars_mut().fresh_from(x, p.f.nat_ty());
        let sb = proof.push_open(Equation::new(p.f.s(Term::var(xp)), p.f.s(Term::var(xp))));
        proof.justify(zb, RuleApp::Refl, vec![]);
        proof.justify(sb, RuleApp::Refl, vec![]);
        proof.justify(
            root,
            RuleApp::Case {
                var: x,
                branches: vec![
                    CaseBranch {
                        con: p.f.zero,
                        fresh: vec![],
                    },
                    CaseBranch {
                        con: p.f.succ,
                        fresh: vec![xp],
                    },
                ],
            },
            vec![zb, sb],
        );
        let report = check_interned(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
        assert_eq!(report.nodes, 3);
    }
}
