//! Rendering preproofs as text trees (with labelled back edges, matching the
//! paper's presentation, Remark 3.2) and as Graphviz DOT.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use cycleq_term::Signature;

use crate::node::{NodeId, RuleApp};
use crate::preproof::Preproof;

/// Renders the proof as an indented tree rooted at `root`.
///
/// Nodes referenced by back edges are labelled with their index; a back-edge
/// premise is shown as `(n)` without expansion, mirroring the paper's
/// figures.
pub fn render_text(proof: &Preproof, sig: &Signature, root: NodeId) -> String {
    // Collect back-edge targets so we can label them.
    let mut labelled: BTreeSet<NodeId> = BTreeSet::new();
    for (v, n) in proof.nodes() {
        for p in &n.premises {
            if proof.is_back_edge(v, *p) {
                labelled.insert(*p);
            }
        }
    }
    let mut out = String::new();
    let mut visited: BTreeSet<NodeId> = BTreeSet::new();
    render_node(proof, sig, root, 0, &labelled, &mut visited, &mut out);
    out
}

fn render_node(
    proof: &Preproof,
    sig: &Signature,
    id: NodeId,
    depth: usize,
    labelled: &BTreeSet<NodeId>,
    visited: &mut BTreeSet<NodeId>,
    out: &mut String,
) {
    let node = proof.node(id);
    let indent = "  ".repeat(depth);
    let label = if labelled.contains(&id) {
        format!("{}: ", id.index())
    } else {
        String::new()
    };
    let rule = match &node.rule {
        RuleApp::Case { var, .. } => {
            format!("Case {}", proof.vars().name(*var))
        }
        other => other.name().to_string(),
    };
    let _ = writeln!(
        out,
        "{indent}{label}{}   [{rule}]",
        node.eq.display(sig, proof.vars())
    );
    if !visited.insert(id) {
        return;
    }
    for p in &node.premises {
        if proof.is_back_edge(id, *p) || visited.contains(p) {
            let _ = writeln!(out, "{}  ({})", "  ".repeat(depth + 1), p.index());
        } else {
            render_node(proof, sig, *p, depth + 1, labelled, visited, out);
        }
    }
}

/// Renders the proof graph in Graphviz DOT format: solid edges for tree
/// premises, dashed for back edges (cycles).
pub fn render_dot(proof: &Preproof, sig: &Signature) -> String {
    let mut out = String::from("digraph cycleq {\n  node [shape=box, fontname=\"monospace\"];\n");
    for (id, node) in proof.nodes() {
        let eq = node.eq.display(sig, proof.vars()).to_string();
        let eq = eq.replace('"', "\\\"");
        let _ = writeln!(
            out,
            "  n{} [label=\"{}: {}\\n[{}]\"];",
            id.index(),
            id.index(),
            eq,
            node.rule.name()
        );
    }
    for (v, p) in proof.edges() {
        if proof.is_back_edge(v, p) {
            let _ = writeln!(
                out,
                "  n{} -> n{} [style=dashed, color=blue];",
                v.index(),
                p.index()
            );
        } else {
            let _ = writeln!(out, "  n{} -> n{};", v.index(), p.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_rewrite::fixtures::nat_list_program;
    use cycleq_term::{Equation, Term};

    fn small_proof() -> (cycleq_rewrite::fixtures::ProgramFixture, Preproof, NodeId) {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let conc = proof.push_open(Equation::new(
            Term::apps(p.f.add, vec![p.f.num(1), p.f.num(1)]),
            p.f.num(2),
        ));
        let prem = proof.push_open(Equation::new(p.f.num(2), p.f.num(2)));
        proof.justify(prem, RuleApp::Refl, vec![]);
        proof.justify(conc, RuleApp::Reduce, vec![prem]);
        (p, proof, conc)
    }

    #[test]
    fn text_rendering_contains_rules_and_equations() {
        let (p, proof, root) = small_proof();
        let text = render_text(&proof, &p.prog.sig, root);
        assert!(text.contains("[Reduce]"));
        assert!(text.contains("[Refl]"));
        assert!(text.contains("≈"));
    }

    #[test]
    fn back_edges_are_labelled_not_expanded() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let a = proof.push_open(Equation::new(Term::sym(p.f.zero), Term::sym(p.f.zero)));
        let b = proof.push_open(Equation::new(Term::sym(p.f.zero), Term::sym(p.f.zero)));
        proof.justify(a, RuleApp::Reduce, vec![b]);
        proof.justify(b, RuleApp::Reduce, vec![a]);
        let text = render_text(&proof, &p.prog.sig, a);
        assert!(text.contains("0: "), "cycle target is labelled: {text}");
        assert!(text.contains("(0)"), "back edge shown as reference: {text}");
    }

    #[test]
    fn dot_rendering_is_well_formed() {
        let (p, proof, _) = small_proof();
        let dot = render_dot(&proof, &p.prog.sig);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.ends_with("}\n"));
    }
}
