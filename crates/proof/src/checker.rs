//! An independent proof checker.
//!
//! The checker validates that every node of a [`Preproof`] is a well-formed
//! instance of its rule (local soundness, Definition 3.1) and that the
//! global condition holds (Theorem 5.2). It is deliberately a separate code
//! path from the search: a search bug cannot certify its own output.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use cycleq_rewrite::{Program, Rewriter};
use cycleq_sizechange::Soundness;
use cycleq_term::{Equation, Term, TyUnifier};

use crate::edges::check_global;
use crate::node::{NodeId, RuleApp};
use crate::preproof::Preproof;

/// How the global condition should be established.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum GlobalCheck {
    /// Verify variable-based traces via size-change closure (decidable,
    /// §5.2). This is the mode used for everything the search produces.
    #[default]
    VariableTraces,
    /// Skip the trace check. Used for proofs whose global correctness is
    /// guaranteed by construction for an order beyond variable traces —
    /// e.g. translations of rewriting-induction derivations, which progress
    /// by the *reduction order* (Theorem 4.3) and may decrease in ways
    /// variable traces cannot see. Local well-formedness is still fully
    /// checked.
    TrustConstruction,
}

/// Why a proof was rejected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckErrorKind {
    /// The node is unjustified.
    OpenNode,
    /// A premise id is out of range.
    DanglingPremise,
    /// Wrong number of premises for the rule.
    PremiseCount { expected: usize, got: usize },
    /// `(Refl)` on an equation whose sides differ.
    NotReflexive,
    /// `(Reduce)` premise is not a reduct of the conclusion.
    NotAReduct,
    /// Congruence on non-constructor or mismatched heads.
    NotACongruence,
    /// Extensionality premise malformed.
    BadExtensionality,
    /// `(Case)` branches don't cover the datatype, or a branch is
    /// malformed.
    BadCaseSplit(String),
    /// `(Subst)` instance malformed (occurrence or continuation mismatch).
    BadSubst(String),
    /// A node equation is ill-typed.
    IllTyped(String),
    /// The global condition failed (Theorem 5.2).
    GloballyUnsound,
}

/// A checking failure at a specific node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckError {
    /// The offending node (`None` for global failures).
    pub node: Option<NodeId>,
    /// The failure.
    pub kind: CheckErrorKind,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "node {}: {:?}", n.index(), self.kind),
            None => write!(f, "{:?}", self.kind),
        }
    }
}

impl Error for CheckError {}

/// Statistics from a successful check.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CheckReport {
    /// Number of nodes checked.
    pub nodes: usize,
    /// Number of back edges (cycle-forming premises).
    pub back_edges: usize,
    /// Whether the global condition was verified (vs. trusted).
    pub global_verified: bool,
    /// Number of reducts derived while validating `(Reduce)` nodes (four
    /// normal forms per node: both conclusion and both premise sides).
    pub reducts_checked: u64,
    /// Normal forms answered from the checker's memo table. Always zero
    /// for the owned-term [`check`]; the interned checker
    /// ([`crate::check_interned`]) shares reducts across the nodes of one
    /// proof and reports its hits here.
    pub memo_hits: u64,
    /// Wall-clock time of the whole check.
    pub elapsed: Duration,
}

fn err(node: NodeId, kind: CheckErrorKind) -> CheckError {
    CheckError {
        node: Some(node),
        kind,
    }
}

fn eq_modulo_flip(a: &Equation, b: &Equation) -> bool {
    (a.lhs() == b.lhs() && a.rhs() == b.rhs()) || (a.lhs() == b.rhs() && a.rhs() == b.lhs())
}

/// Checks the preproof against the program.
///
/// # Errors
///
/// Returns the first [`CheckError`] found: an ill-formed rule instance, an
/// ill-typed equation, or a global-condition failure.
pub fn check(
    proof: &Preproof,
    prog: &Program,
    mode: GlobalCheck,
) -> Result<CheckReport, CheckError> {
    let start = Instant::now();
    let rw = Rewriter::new(&prog.sig, &prog.trs);
    let mut back_edges = 0;
    let mut reducts_checked = 0u64;
    for (id, node) in proof.nodes() {
        for p in &node.premises {
            if p.index() >= proof.len() {
                return Err(err(id, CheckErrorKind::DanglingPremise));
            }
            if proof.is_back_edge(id, *p) {
                back_edges += 1;
            }
        }
        // Type check: the two sides must have unifiable types.
        {
            let mut uni = TyUnifier::new(10_000);
            let lt = node
                .eq
                .lhs()
                .infer_type(&prog.sig, proof.vars(), &mut uni)
                .map_err(|e| err(id, CheckErrorKind::IllTyped(e.to_string())))?;
            let rt = node
                .eq
                .rhs()
                .infer_type(&prog.sig, proof.vars(), &mut uni)
                .map_err(|e| err(id, CheckErrorKind::IllTyped(e.to_string())))?;
            uni.unify(&lt, &rt)
                .map_err(|e| err(id, CheckErrorKind::IllTyped(e.to_string())))?;
        }
        let premise_eq = |i: usize| &proof.node(node.premises[i]).eq;
        match &node.rule {
            RuleApp::Open => return Err(err(id, CheckErrorKind::OpenNode)),
            RuleApp::Refl => {
                if !node.premises.is_empty() {
                    return Err(err(
                        id,
                        CheckErrorKind::PremiseCount {
                            expected: 0,
                            got: node.premises.len(),
                        },
                    ));
                }
                if !node.eq.is_trivial() {
                    return Err(err(id, CheckErrorKind::NotReflexive));
                }
            }
            RuleApp::Reduce => {
                if node.premises.len() != 1 {
                    return Err(err(
                        id,
                        CheckErrorKind::PremiseCount {
                            expected: 1,
                            got: node.premises.len(),
                        },
                    ));
                }
                // Premise sides must be convertible to the conclusion sides.
                // For a confluent, weakly normalising system (Remark 2.1)
                // this is checked by comparing normal forms, which accepts
                // any `→R*` reduct regardless of the strategy that produced
                // it.
                let p = premise_eq(0);
                let nf = |t: &Term| rw.normalize(t).term;
                let (cl, cr) = (nf(node.eq.lhs()), nf(node.eq.rhs()));
                let (pl, pr) = (nf(p.lhs()), nf(p.rhs()));
                reducts_checked += 4;
                let straight = cl == pl && cr == pr;
                let flipped = cl == pr && cr == pl;
                if !straight && !flipped {
                    return Err(err(id, CheckErrorKind::NotAReduct));
                }
            }
            RuleApp::Cong => {
                let (k1, args1) = node
                    .eq
                    .lhs()
                    .as_constructor(&prog.sig)
                    .ok_or_else(|| err(id, CheckErrorKind::NotACongruence))?;
                let (k2, args2) = node
                    .eq
                    .rhs()
                    .as_constructor(&prog.sig)
                    .ok_or_else(|| err(id, CheckErrorKind::NotACongruence))?;
                if k1 != k2 || args1.len() != args2.len() {
                    return Err(err(id, CheckErrorKind::NotACongruence));
                }
                if node.premises.len() != args1.len() {
                    return Err(err(
                        id,
                        CheckErrorKind::PremiseCount {
                            expected: args1.len(),
                            got: node.premises.len(),
                        },
                    ));
                }
                for (i, (a, b)) in args1.iter().zip(args2).enumerate() {
                    let want = Equation::new(a.clone(), b.clone());
                    if !eq_modulo_flip(&want, premise_eq(i)) {
                        return Err(err(id, CheckErrorKind::NotACongruence));
                    }
                }
            }
            RuleApp::FunExt { fresh } => {
                if node.premises.len() != 1 {
                    return Err(err(
                        id,
                        CheckErrorKind::PremiseCount {
                            expected: 1,
                            got: node.premises.len(),
                        },
                    ));
                }
                if node.eq.lhs().contains_var(*fresh) || node.eq.rhs().contains_var(*fresh) {
                    return Err(err(id, CheckErrorKind::BadExtensionality));
                }
                let want = Equation::new(
                    Term::app(node.eq.lhs().clone(), Term::var(*fresh)),
                    Term::app(node.eq.rhs().clone(), Term::var(*fresh)),
                );
                if !eq_modulo_flip(&want, premise_eq(0)) {
                    return Err(err(id, CheckErrorKind::BadExtensionality));
                }
            }
            RuleApp::Case { var, branches } => {
                let var_ty = proof.vars().ty(*var).clone();
                let Some((data, ty_args)) = var_ty.as_data() else {
                    return Err(err(
                        id,
                        CheckErrorKind::BadCaseSplit(
                            "case variable is not of datatype type".into(),
                        ),
                    ));
                };
                let cons = prog.sig.constructors_of(data);
                if branches.len() != cons.len() || node.premises.len() != cons.len() {
                    return Err(err(
                        id,
                        CheckErrorKind::BadCaseSplit(format!(
                            "expected {} branches, got {}",
                            cons.len(),
                            branches.len()
                        )),
                    ));
                }
                for (i, (&k, branch)) in cons.iter().zip(branches).enumerate() {
                    if branch.con != k {
                        return Err(err(
                            id,
                            CheckErrorKind::BadCaseSplit(
                                "branch constructor order mismatch".into(),
                            ),
                        ));
                    }
                    if branch.fresh.len() != prog.sig.constructor_arity(k) {
                        return Err(err(
                            id,
                            CheckErrorKind::BadCaseSplit("fresh variable count mismatch".into()),
                        ));
                    }
                    // Fresh variables must not occur in the conclusion and
                    // must have the constructor's instantiated argument
                    // types.
                    let inst = prog
                        .sig
                        .sym(k)
                        .scheme()
                        .instantiate_with(ty_args)
                        .map_err(|e| err(id, CheckErrorKind::IllTyped(e.to_string())))?;
                    let (arg_tys, _) = inst.uncurry();
                    for (v, want_ty) in branch.fresh.iter().zip(arg_tys) {
                        if node.eq.lhs().contains_var(*v) || node.eq.rhs().contains_var(*v) {
                            return Err(err(
                                id,
                                CheckErrorKind::BadCaseSplit("case variable not fresh".into()),
                            ));
                        }
                        if proof.vars().ty(*v) != want_ty {
                            return Err(err(
                                id,
                                CheckErrorKind::BadCaseSplit("fresh variable type mismatch".into()),
                            ));
                        }
                    }
                    let pattern =
                        Term::apps(k, branch.fresh.iter().map(|v| Term::var(*v)).collect());
                    let theta = cycleq_term::Subst::singleton(*var, pattern);
                    let want = node.eq.subst(&theta);
                    if !eq_modulo_flip(&want, premise_eq(i)) {
                        return Err(err(
                            id,
                            CheckErrorKind::BadCaseSplit(format!("branch {i} equation mismatch")),
                        ));
                    }
                }
            }
            RuleApp::Subst(app) => {
                if node.premises.len() != 2 {
                    return Err(err(
                        id,
                        CheckErrorKind::PremiseCount {
                            expected: 2,
                            got: node.premises.len(),
                        },
                    ));
                }
                let lemma = premise_eq(0);
                let (from, to) = if app.lemma_flipped {
                    (lemma.rhs(), lemma.lhs())
                } else {
                    (lemma.lhs(), lemma.rhs())
                };
                let side_term = app.side.of(&node.eq);
                let Some(occurrence) = side_term.at(&app.pos) else {
                    return Err(err(id, CheckErrorKind::BadSubst("position invalid".into())));
                };
                if occurrence != &app.theta.apply(from) {
                    return Err(err(
                        id,
                        CheckErrorKind::BadSubst("occurrence is not the lemma instance".into()),
                    ));
                }
                let rewritten = side_term
                    .replace_at(&app.pos, app.theta.apply(to))
                    .expect("position validated above");
                let untouched = app.side.flip().of(&node.eq).clone();
                let want = match app.side {
                    crate::node::Side::Lhs => Equation::new(rewritten, untouched),
                    crate::node::Side::Rhs => Equation::new(untouched, rewritten),
                };
                if !eq_modulo_flip(&want, premise_eq(1)) {
                    return Err(err(
                        id,
                        CheckErrorKind::BadSubst("continuation equation mismatch".into()),
                    ));
                }
            }
        }
    }
    let global_verified = match mode {
        GlobalCheck::VariableTraces => {
            if check_global(proof) == Soundness::Unsound {
                return Err(CheckError {
                    node: None,
                    kind: CheckErrorKind::GloballyUnsound,
                });
            }
            true
        }
        GlobalCheck::TrustConstruction => false,
    };
    Ok(CheckReport {
        nodes: proof.len(),
        back_edges,
        global_verified,
        reducts_checked,
        memo_hits: 0,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CaseBranch, Side, SubstApp};
    use cycleq_rewrite::fixtures::nat_list_program;
    use cycleq_term::{Position, Subst};

    #[test]
    fn refl_node_checks() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let id = proof.push_open(Equation::new(Term::sym(p.f.zero), Term::sym(p.f.zero)));
        proof.justify(id, RuleApp::Refl, vec![]);
        let report = check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
        assert_eq!(report.nodes, 1);
        assert_eq!(report.back_edges, 0);
        assert!(report.global_verified);
    }

    #[test]
    fn refl_on_unequal_sides_fails() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let id = proof.push_open(Equation::new(Term::sym(p.f.zero), p.f.num(1)));
        proof.justify(id, RuleApp::Refl, vec![]);
        let e = check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap_err();
        assert_eq!(e.kind, CheckErrorKind::NotReflexive);
    }

    #[test]
    fn open_nodes_are_rejected() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        proof.push_open(Equation::new(Term::sym(p.f.zero), Term::sym(p.f.zero)));
        let e = check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap_err();
        assert_eq!(e.kind, CheckErrorKind::OpenNode);
    }

    #[test]
    fn reduce_node_checks() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let conc = proof.push_open(Equation::new(
            Term::apps(p.f.add, vec![p.f.num(1), p.f.num(1)]),
            p.f.num(2),
        ));
        let prem = proof.push_open(Equation::new(p.f.num(2), p.f.num(2)));
        proof.justify(prem, RuleApp::Refl, vec![]);
        proof.justify(conc, RuleApp::Reduce, vec![prem]);
        assert!(check(&proof, &p.prog, GlobalCheck::VariableTraces).is_ok());
    }

    #[test]
    fn reduce_to_non_reduct_fails() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let conc = proof.push_open(Equation::new(
            Term::apps(p.f.add, vec![p.f.num(1), p.f.num(1)]),
            p.f.num(2),
        ));
        let prem = proof.push_open(Equation::new(p.f.num(3), p.f.num(2)));
        proof.justify(prem, RuleApp::Refl, vec![]); // also bogus, but reached later
        proof.justify(conc, RuleApp::Reduce, vec![prem]);
        let e = check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap_err();
        assert_eq!(e.kind, CheckErrorKind::NotAReduct);
    }

    #[test]
    fn ill_typed_equations_are_rejected() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let id = proof.push_open(Equation::new(Term::sym(p.f.zero), Term::sym(p.f.nil)));
        proof.justify(id, RuleApp::Refl, vec![]);
        let e = check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap_err();
        assert!(matches!(e.kind, CheckErrorKind::IllTyped(_)));
    }

    #[test]
    fn example_3_2_rejected_globally_but_locally_fine() {
        // The self-justifying preproof from Example 3.2: locally well-formed
        // but globally unsound.
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let x = proof.vars_mut().fresh("x", p.f.nat_ty());
        let xs = proof.vars_mut().fresh("xs", p.f.list_ty(p.f.nat_ty()));
        let lhs = p.f.cons_t(Term::var(x), Term::var(xs));
        let root = proof.push_open(Equation::new(lhs, Term::sym(p.f.nil)));
        let refl = proof.push_open(Equation::new(Term::sym(p.f.nil), Term::sym(p.f.nil)));
        proof.justify(refl, RuleApp::Refl, vec![]);
        let mut theta = Subst::new();
        theta.insert(x, Term::var(x));
        theta.insert(xs, Term::var(xs));
        proof.justify(
            root,
            RuleApp::Subst(SubstApp {
                side: Side::Lhs,
                pos: Position::root(),
                theta,
                lemma_flipped: false,
            }),
            vec![root, refl],
        );
        // Locally fine:
        assert!(check(&proof, &p.prog, GlobalCheck::TrustConstruction).is_ok());
        // Globally rejected:
        let e = check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap_err();
        assert_eq!(e.kind, CheckErrorKind::GloballyUnsound);
    }

    #[test]
    fn case_split_with_wrong_branch_count_fails() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let x = proof.vars_mut().fresh("x", p.f.nat_ty());
        let eq = Equation::new(Term::var(x), Term::var(x));
        let root = proof.push_open(eq.clone());
        let only = proof.push_open(Equation::new(Term::sym(p.f.zero), Term::sym(p.f.zero)));
        proof.justify(only, RuleApp::Refl, vec![]);
        proof.justify(
            root,
            RuleApp::Case {
                var: x,
                branches: vec![CaseBranch {
                    con: p.f.zero,
                    fresh: vec![],
                }],
            },
            vec![only],
        );
        let e = check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap_err();
        assert!(matches!(e.kind, CheckErrorKind::BadCaseSplit(_)));
    }

    #[test]
    fn valid_case_split_checks() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let x = proof.vars_mut().fresh("x", p.f.nat_ty());
        let eq = Equation::new(Term::var(x), Term::var(x));
        let root = proof.push_open(eq.clone());
        let zb = proof.push_open(Equation::new(Term::sym(p.f.zero), Term::sym(p.f.zero)));
        let xp = proof.vars_mut().fresh_from(x, p.f.nat_ty());
        let sb = proof.push_open(Equation::new(p.f.s(Term::var(xp)), p.f.s(Term::var(xp))));
        proof.justify(zb, RuleApp::Refl, vec![]);
        proof.justify(sb, RuleApp::Refl, vec![]);
        proof.justify(
            root,
            RuleApp::Case {
                var: x,
                branches: vec![
                    CaseBranch {
                        con: p.f.zero,
                        fresh: vec![],
                    },
                    CaseBranch {
                        con: p.f.succ,
                        fresh: vec![xp],
                    },
                ],
            },
            vec![zb, sb],
        );
        let report = check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
        assert_eq!(report.nodes, 3);
    }

    #[test]
    fn cong_decomposition_checks() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let x = proof.vars_mut().fresh("x", p.f.nat_ty());
        let conc = proof.push_open(Equation::new(p.f.s(Term::var(x)), p.f.s(Term::var(x))));
        let prem = proof.push_open(Equation::new(Term::var(x), Term::var(x)));
        proof.justify(prem, RuleApp::Refl, vec![]);
        proof.justify(conc, RuleApp::Cong, vec![prem]);
        assert!(check(&proof, &p.prog, GlobalCheck::VariableTraces).is_ok());
    }

    #[test]
    fn cong_on_defined_heads_fails() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let x = proof.vars_mut().fresh("x", p.f.nat_ty());
        let t = Term::apps(p.f.add, vec![Term::var(x), Term::var(x)]);
        let conc = proof.push_open(Equation::new(t.clone(), t.clone()));
        let prem = proof.push_open(Equation::new(Term::var(x), Term::var(x)));
        proof.justify(prem, RuleApp::Refl, vec![]);
        proof.justify(conc, RuleApp::Cong, vec![prem, prem]);
        let e = check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap_err();
        assert_eq!(e.kind, CheckErrorKind::NotACongruence);
    }
}
