//! The canonical size-change graph of each proof edge (Definition 5.3) and
//! the global-correctness check (Theorem 5.2).

use cycleq_sizechange::{
    Closure, GraphId, GraphStore, IncrementalClosure, Label, ScGraph, Soundness,
};
use cycleq_term::VarId;

use crate::node::{NodeId, RuleApp};
use crate::preproof::Preproof;

/// The labelled edges of the size-change graph annotating the edge from
/// `v` to its `premise_idx`-th premise (Definition 5.3), shared by
/// [`edge_graph`] and [`edge_graph_id`].
fn edge_triples(proof: &Preproof, v: NodeId, premise_idx: usize) -> Vec<(VarId, VarId, Label)> {
    let node = proof.node(v);
    let premise = node.premises[premise_idx];
    let premise_eq = &proof.node(premise).eq;
    let mut out = Vec::new();
    match &node.rule {
        RuleApp::Open => panic!("edge_graph on an open node"),
        RuleApp::Subst(app) if premise_idx == 0 => {
            // Lemma edge: x ≃ y for θ(y) = x.
            for y in premise_eq.vars() {
                match app.theta.get(y) {
                    Some(t) => {
                        if let Some(x) = t.as_var() {
                            out.push((x, y, Label::NonStrict));
                        }
                    }
                    // Unbound lemma variables are untouched by θ.
                    None => out.push((y, y, Label::NonStrict)),
                }
            }
        }
        RuleApp::Case { var, branches } => {
            for z in node.eq.vars() {
                if z != *var {
                    out.push((z, z, Label::NonStrict));
                }
            }
            for y in &branches[premise_idx].fresh {
                out.push((*var, *y, Label::Strict));
            }
        }
        _ => {
            // Continuation of (Subst), (Reduce), (Cong), (FunExt), (Refl):
            // identity on shared variables.
            let conc = node.eq.vars();
            let prem = premise_eq.vars();
            out.extend(conc.intersection(&prem).map(|&z| (z, z, Label::NonStrict)));
        }
    }
    out
}

/// The size-change graph annotating the edge from `v` to its
/// `premise_idx`-th premise (Definition 5.3).
///
/// - `(Subst)` lemma edge: a non-strict edge `x ≃ y` whenever `θ(y)` is the
///   variable `x` — variable traces survive instantiation only when the
///   instance is itself a variable.
/// - `(Case)` edge: a strict edge `x ≲ y` from the analysed variable to each
///   fresh constructor argument, and identity on all other variables.
/// - every other edge: identity on the variables common to conclusion and
///   premise.
///
/// # Panics
///
/// Panics if `premise_idx` is out of range for the node or the node is
/// `Open`.
pub fn edge_graph(proof: &Preproof, v: NodeId, premise_idx: usize) -> ScGraph<VarId> {
    edge_triples(proof, v, premise_idx).into_iter().collect()
}

/// [`edge_graph`], built directly into a [`GraphStore`] with no owned
/// intermediate: the triples are interned in one pass and the store's
/// dedup table makes the recurring graph shapes (identity graphs on the
/// same variable sets, the per-constructor `(Case)` graphs) a hash lookup
/// after their first construction. This is the path the prover uses.
///
/// # Panics
///
/// Panics if `premise_idx` is out of range for the node or the node is
/// `Open`.
pub fn edge_graph_id(
    proof: &Preproof,
    v: NodeId,
    premise_idx: usize,
    store: &mut GraphStore<VarId>,
) -> GraphId {
    store.intern_edges(edge_triples(proof, v, premise_idx))
}

/// All annotated edges of the preproof, ready for closure computation.
pub fn global_edges(proof: &Preproof) -> Vec<(NodeId, NodeId, ScGraph<VarId>)> {
    let mut out = Vec::new();
    for (id, node) in proof.nodes() {
        for i in 0..node.premises.len() {
            out.push((id, node.premises[i], edge_graph(proof, id, i)));
        }
    }
    out
}

/// Batch global-correctness check (Theorem 5.2): computes the closure of all
/// edge graphs and requires every idempotent self-loop to carry a strict
/// self-edge.
pub fn check_global(proof: &Preproof) -> Soundness {
    Closure::from_edges(global_edges(proof)).check()
}

/// SCC-restricted global-correctness check: same verdict as
/// [`check_global`], usually much cheaper.
///
/// The closure condition of Theorem 5.2 only inspects *self-loops*
/// `g ∈ closure(v, v)`, and every composition path from `v` back to `v`
/// stays, by definition, inside `v`'s strongly connected component. Edges
/// that cross between components can therefore never contribute to a
/// self-loop, so the closure may be computed per-SCC over each component's
/// internal edges only. On typical proofs the cyclic core is a small
/// fraction of the node count — the tree-shaped remainder (where the
/// closure's composition blow-up would otherwise spend its time) is
/// skipped entirely.
pub fn check_global_scc(proof: &Preproof) -> Soundness {
    let sccs = tarjan_sccs(proof);
    // Component id per node, to recognise internal edges.
    let mut comp = vec![usize::MAX; proof.len()];
    for (c, members) in sccs.iter().enumerate() {
        for &v in members {
            comp[v.index()] = c;
        }
    }
    // One closure per SCC (not one shared closure): the incremental
    // engine's saturation scans its retained pairs for composition
    // partners, so keeping each component's closure private keeps that
    // scan proportional to the component, not the proof. Saturation is
    // incremental with subsumption pruning — inside a cyclic core the same
    // composite graphs recur constantly, and dropping dominated graphs
    // keeps the per-pair sets small.
    for (c, members) in sccs.iter().enumerate() {
        // A single node with no self-edge has no self-loops to check.
        if members.len() == 1 {
            let v = members[0];
            if !proof.node(v).premises.contains(&v) {
                continue;
            }
        }
        let mut closure = IncrementalClosure::new();
        for &v in members {
            for (i, &p) in proof.node(v).premises.iter().enumerate() {
                if comp[p.index()] == c {
                    let g = edge_graph_id(proof, v, i, closure.store_mut());
                    if closure.add_edge_id(v, p, g) == Soundness::Unsound {
                        return Soundness::Unsound;
                    }
                }
            }
        }
    }
    Soundness::Sound
}

/// Iterative Tarjan over the premise graph. Returns the strongly connected
/// components (each a list of node ids); order is irrelevant to the caller.
fn tarjan_sccs(proof: &Preproof) -> Vec<Vec<NodeId>> {
    const UNSEEN: u32 = u32::MAX;
    let n = proof.len();
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next = 0u32;
    let mut sccs = Vec::new();
    // Explicit DFS frames: (node, next-premise-to-visit).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        frames.push((root as u32, 0));
        while let Some(&mut (v, ref mut i)) = frames.last_mut() {
            let vu = v as usize;
            if *i == 0 {
                index[vu] = next;
                low[vu] = next;
                next += 1;
                stack.push(v);
                on_stack[vu] = true;
            }
            let premises = &proof.node(NodeId::from_index(vu)).premises;
            if let Some(&p) = premises.get(*i) {
                *i += 1;
                let pu = p.index();
                if index[pu] == UNSEEN {
                    frames.push((pu as u32, 0));
                } else if on_stack[pu] {
                    low[vu] = low[vu].min(index[pu]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    let pu = parent as usize;
                    low[pu] = low[pu].min(low[vu]);
                }
                if low[vu] == index[vu] {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        members.push(NodeId::from_index(w as usize));
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(members);
                }
            }
        }
    }
    sccs
}

/// Replays the proof's edges through an [`IncrementalClosure`], returning
/// the verdict. Exists so that tests and benches can compare the
/// incremental engine against [`check_global`] on identical inputs.
pub fn check_global_incremental(proof: &Preproof) -> Soundness {
    let mut inc = IncrementalClosure::new();
    let mut verdict = Soundness::Sound;
    for (a, b, g) in global_edges(proof) {
        verdict = inc.add_edge(a, b, g);
        if verdict == Soundness::Unsound {
            return verdict;
        }
    }
    verdict
}

/// Extracts, for every back edge, one witness trace of variables around the
/// shortest cycle through it — a human-readable certificate accompanying
/// the soundness verdict. Returns `(from, to, graph)` triples for the
/// composed cycles found at back edges.
pub fn cycle_witnesses(proof: &Preproof) -> Vec<(NodeId, ScGraph<VarId>)> {
    let closure = Closure::from_edges(global_edges(proof));
    let mut out = Vec::new();
    for (v, node) in proof.nodes() {
        for p in &node.premises {
            if proof.is_back_edge(v, *p) {
                // Check the cached strict-self flag first: idempotence is
                // only computed (uncached on this read-only path) for the
                // graphs that can actually be witnesses.
                if let Some(g) = closure
                    .between_ids(*p, *p)
                    .find(|&g| {
                        closure.store().has_strict_self_edge(g) && closure.store().is_idempotent(g)
                    })
                    .map(|g| closure.store().resolve(g))
                {
                    out.push((*p, g));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CaseBranch, Side, SubstApp};
    use cycleq_rewrite::fixtures::nat_list_program;
    use cycleq_term::{Equation, Position, Subst, Term};

    /// Builds the two-node preproof of Example 3.2: `Cons x xs ≈ Nil`
    /// justified by rewriting with itself — a locally well-formed preproof
    /// that the global condition must reject.
    fn example_3_2() -> Preproof {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let x = proof.vars_mut().fresh("x", p.f.nat_ty());
        let xs = proof.vars_mut().fresh("xs", p.f.list_ty(p.f.nat_ty()));
        let lhs = p.f.cons_t(Term::var(x), Term::var(xs));
        let root = proof.push_open(Equation::new(lhs.clone(), Term::sym(p.f.nil)));
        let refl = proof.push_open(Equation::new(Term::sym(p.f.nil), Term::sym(p.f.nil)));
        proof.justify(refl, RuleApp::Refl, vec![]);
        // Rewrite the occurrence of `Cons x xs` (the whole lhs) using the
        // root itself as lemma, leaving `Nil ≈ Nil`.
        let mut theta = Subst::new();
        theta.insert(x, Term::var(x));
        theta.insert(xs, Term::var(xs));
        proof.justify(
            root,
            RuleApp::Subst(SubstApp {
                side: Side::Lhs,
                pos: Position::root(),
                theta,
                lemma_flipped: false,
            }),
            vec![root, refl],
        );
        proof
    }

    #[test]
    fn example_3_2_is_globally_unsound() {
        let proof = example_3_2();
        assert_eq!(check_global(&proof), Soundness::Unsound);
        assert_eq!(check_global_incremental(&proof), Soundness::Unsound);
    }

    #[test]
    fn subst_lemma_edge_keeps_variable_bindings_only() {
        let proof = example_3_2();
        // Edge 0 of the root is the lemma self-edge with identity θ.
        let g = edge_graph(&proof, NodeId::from_index(0), 0);
        // Both x and xs are bound to themselves: two non-strict edges.
        assert_eq!(g.len(), 2);
        assert!(!g.has_strict_self_edge());
    }

    #[test]
    fn case_edges_are_strict_into_fresh_vars() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let x = proof.vars_mut().fresh("x", p.f.nat_ty());
        let y = proof.vars_mut().fresh("y", p.f.nat_ty());
        let eq = Equation::new(
            Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
            Term::var(y),
        );
        let root = proof.push_open(eq.clone());
        // Case on x: Z branch and S branch.
        let z_eq = Equation::new(
            Term::apps(p.f.add, vec![Term::sym(p.f.zero), Term::var(y)]),
            Term::var(y),
        );
        let xp = proof.vars_mut().fresh_from(x, p.f.nat_ty());
        let s_eq = Equation::new(
            Term::apps(p.f.add, vec![p.f.s(Term::var(xp)), Term::var(y)]),
            Term::var(y),
        );
        let zb = proof.push_open(z_eq);
        let sb = proof.push_open(s_eq);
        proof.justify(
            root,
            RuleApp::Case {
                var: x,
                branches: vec![
                    CaseBranch {
                        con: p.f.zero,
                        fresh: vec![],
                    },
                    CaseBranch {
                        con: p.f.succ,
                        fresh: vec![xp],
                    },
                ],
            },
            vec![zb, sb],
        );
        let g0 = edge_graph(&proof, root, 0);
        assert_eq!(g0.label(y, y), Some(Label::NonStrict));
        assert_eq!(g0.label(x, x), None, "analysed variable is consumed");
        let g1 = edge_graph(&proof, root, 1);
        assert_eq!(g1.label(x, xp), Some(Label::Strict));
        assert_eq!(g1.label(y, y), Some(Label::NonStrict));
    }

    #[test]
    fn scc_check_matches_batch_check_on_unsound_proof() {
        let proof = example_3_2();
        assert_eq!(check_global_scc(&proof), Soundness::Unsound);
    }

    #[test]
    fn scc_check_accepts_acyclic_proofs_without_closure_work() {
        // A pure tree (no back edges) has only trivial SCCs: sound by
        // construction, and the per-SCC loop must skip every component.
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let leaf_eq = Equation::new(Term::sym(p.f.nil), Term::sym(p.f.nil));
        let leaf = proof.push_open(leaf_eq.clone());
        proof.justify(leaf, RuleApp::Refl, vec![]);
        let root = proof.push_open(leaf_eq);
        proof.justify(
            root,
            RuleApp::Subst(SubstApp {
                side: Side::Lhs,
                pos: Position::root(),
                theta: Subst::new(),
                lemma_flipped: false,
            }),
            vec![leaf, leaf],
        );
        assert_eq!(check_global(&proof), check_global_scc(&proof));
        assert_eq!(check_global_scc(&proof), Soundness::Sound);
    }

    #[test]
    fn tarjan_groups_the_cycle_and_isolates_the_leaf() {
        let proof = example_3_2();
        let mut sccs = tarjan_sccs(&proof);
        for s in &mut sccs {
            s.sort_by_key(|v| v.index());
        }
        sccs.sort_by_key(|s| s[0].index());
        // Node 0 (root, self-premise) is its own SCC with a self-edge;
        // node 1 (refl) is a trivial SCC.
        assert_eq!(
            sccs,
            vec![vec![NodeId::from_index(0)], vec![NodeId::from_index(1)]]
        );
    }

    #[test]
    fn global_edges_counts_all_premises() {
        let proof = example_3_2();
        // Root has two premises; refl has none.
        assert_eq!(global_edges(&proof).len(), 2);
    }
}
