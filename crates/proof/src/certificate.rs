//! Self-contained proof certificates.
//!
//! A certificate packages everything needed to re-validate a proof offline:
//! a versioned header with a fingerprint of the program source, the program
//! source itself, the proof's variables (names and types), every node
//! (equation, rule instance, premises), and the size-change edge graphs
//! justifying the global condition (Definition 5.3). `cycleq check` parses
//! certificate files and re-runs the independent interned checker
//! ([`crate::check_interned`]) against a program re-elaborated from the
//! embedded source — nothing from the proving session is trusted.
//!
//! The format is line-oriented text, versioned by the first line. Terms are
//! serialized as self-delimiting prefix tokens (`v<idx>/<argc>` for a
//! variable head, `s<idx>/<argc>` for a symbol head, followed by exactly
//! `argc` subterm encodings), so no lengths or brackets are needed. Types
//! reuse [`cycleq_term::Type::encode`]'s flat `u32` words. The embedded
//! program and goal name are escaped onto one line each (`\\`, `\n`, and in
//! space-delimited positions `\s`).
//!
//! Tampering is caught at distinct layers with distinct errors: a bumped
//! version is [`CertificateError::UnsupportedVersion`], missing trailing
//! lines are [`CertificateError::Truncated`], an edited program no longer
//! matches the header fingerprint ([`CertificateError::FingerprintMismatch`]),
//! an edited edge graph disagrees with the one recomputed from the proof
//! ([`CertificateError::EdgeGraphMismatch`]), and a damaged proof fails the
//! checker itself ([`CertificateError::Check`]).

use std::error::Error;
use std::fmt;

use cycleq_rewrite::Program;
use cycleq_sizechange::Label;
use cycleq_term::{
    DataId, Equation, Head, Position, Subst, SymId, Term, TyVarId, Type, VarId, VarStore,
};

use crate::checker::{CheckError, CheckReport, GlobalCheck};
use crate::edges::edge_graph;
use crate::interned::check_interned;
use crate::node::{CaseBranch, NodeId, RuleApp, Side, SubstApp};
use crate::preproof::Preproof;

/// The only format version this build reads and writes.
const VERSION_LINE: &str = "cycleq-certificate v1";

/// Why a certificate was rejected before (or during) checking.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CertificateError {
    /// The version line names a format this build does not understand.
    UnsupportedVersion(String),
    /// The input ended before the terminal `end` line.
    Truncated,
    /// The embedded program does not hash to the header fingerprint.
    FingerprintMismatch { expected: u64, got: u64 },
    /// A structural parse failure (bad token, index out of range, …).
    Malformed(String),
    /// A serialized size-change edge graph disagrees with the one recomputed
    /// from the proof (Definition 5.3).
    EdgeGraphMismatch { node: usize, premise: usize },
    /// The proof itself failed the independent checker.
    Check(CheckError),
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::UnsupportedVersion(v) => {
                write!(f, "unsupported certificate version: {v:?}")
            }
            CertificateError::Truncated => write!(f, "certificate is truncated"),
            CertificateError::FingerprintMismatch { expected, got } => write!(
                f,
                "program fingerprint mismatch: header says {expected:016x}, source hashes to {got:016x}"
            ),
            CertificateError::Malformed(why) => write!(f, "malformed certificate: {why}"),
            CertificateError::EdgeGraphMismatch { node, premise } => write!(
                f,
                "size-change edge graph for node {node} premise {premise} does not match the proof"
            ),
            CertificateError::Check(e) => write!(f, "proof check failed: {e}"),
        }
    }
}

impl Error for CertificateError {}

/// FNV-1a (64-bit) over the program source bytes. Stable across platforms
/// and builds, cheap, and good enough to catch certificate/program skew —
/// this is a change detector, not a cryptographic commitment.
pub fn program_fingerprint(src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn escape_token(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            ' ' => out.push_str("\\s"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, CertificateError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('s') => out.push(' '),
            other => {
                return Err(CertificateError::Malformed(format!(
                    "bad escape: \\{}",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

fn write_term(t: &Term, out: &mut String) {
    match t.head() {
        Head::Var(v) => out.push_str(&format!(" v{}/{}", v.index(), t.args().len())),
        Head::Sym(s) => out.push_str(&format!(" s{}/{}", s.index(), t.args().len())),
    }
    for a in t.args() {
        write_term(a, out);
    }
}

fn write_type(ty: &Type, out: &mut String) {
    let mut words = Vec::new();
    ty.encode(&mut words);
    out.push_str(&format!(" {}", words.len()));
    for w in words {
        out.push_str(&format!(" {w}"));
    }
}

fn write_rule(rule: &RuleApp, out: &mut String) {
    match rule {
        RuleApp::Open => out.push_str(" open"),
        RuleApp::Refl => out.push_str(" refl"),
        RuleApp::Reduce => out.push_str(" reduce"),
        RuleApp::Cong => out.push_str(" cong"),
        RuleApp::FunExt { fresh } => out.push_str(&format!(" funext {}", fresh.index())),
        RuleApp::Case { var, branches } => {
            out.push_str(&format!(" case {} {}", var.index(), branches.len()));
            for b in branches {
                out.push_str(&format!(" {} {}", b.con.index(), b.fresh.len()));
                for v in &b.fresh {
                    out.push_str(&format!(" {}", v.index()));
                }
            }
        }
        RuleApp::Subst(app) => {
            let side = match app.side {
                Side::Lhs => "L",
                Side::Rhs => "R",
            };
            out.push_str(&format!(" subst {side} {}", app.pos.indices().len()));
            for i in app.pos.indices() {
                out.push_str(&format!(" {i}"));
            }
            out.push_str(&format!(
                " {} {}",
                if app.lemma_flipped { 1 } else { 0 },
                app.theta.len()
            ));
            for (v, t) in app.theta.iter() {
                out.push_str(&format!(" {}", v.index()));
                write_term(t, out);
            }
        }
    }
}

/// Serializes a proof of `goal` over `program_src` into certificate text.
///
/// The proof should be closed; open nodes are serialized as-is and will be
/// rejected by the checker on the validating side.
pub fn export_certificate(goal: &str, program_src: &str, proof: &Preproof) -> String {
    let mut out = String::new();
    out.push_str(VERSION_LINE);
    out.push('\n');
    out.push_str(&format!(
        "fingerprint {:016x}\n",
        program_fingerprint(program_src)
    ));
    out.push_str(&format!("goal {}\n", escape_line(goal)));
    out.push_str(&format!("program {}\n", escape_line(program_src)));
    out.push_str(&format!("vars {}\n", proof.vars().len()));
    for (_, name, ty) in proof.vars().iter() {
        let mut line = format!("var {}", escape_token(name));
        write_type(ty, &mut line);
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!("nodes {}\n", proof.len()));
    for (_, node) in proof.nodes() {
        let mut line = String::from("node");
        write_term(node.eq.lhs(), &mut line);
        write_term(node.eq.rhs(), &mut line);
        line.push_str(&format!(" prem {}", node.premises.len()));
        for p in &node.premises {
            line.push_str(&format!(" {}", p.index()));
        }
        line.push_str(" rule");
        write_rule(&node.rule, &mut line);
        out.push_str(&line);
        out.push('\n');
    }
    let mut edge_lines = Vec::new();
    for (v, node) in proof.nodes() {
        if matches!(node.rule, RuleApp::Open) {
            continue;
        }
        for i in 0..node.premises.len() {
            let g = edge_graph(proof, v, i);
            let mut line = format!("edge {} {} {}", v.index(), i, g.len());
            for (x, y, label) in g.edges() {
                let l = match label {
                    Label::Strict => "s",
                    Label::NonStrict => "n",
                };
                line.push_str(&format!(" {} {} {}", x.index(), y.index(), l));
            }
            edge_lines.push(line);
        }
    }
    out.push_str(&format!("edges {}\n", edge_lines.len()));
    for line in edge_lines {
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// One declared size-change edge: `(node, premise index, sorted edge
/// triples)`.
type CertEdge = (NodeId, usize, Vec<(VarId, VarId, Label)>);

/// A parsed certificate, ready to be [`verified`](Certificate::verify).
#[derive(Clone, Debug)]
pub struct Certificate {
    goal: String,
    program_src: String,
    proof: Preproof,
    /// Declared edges in node order.
    edges: Vec<CertEdge>,
}

/// A token cursor over one certificate line.
struct Cursor<'a> {
    toks: std::str::SplitAsciiWhitespace<'a>,
    line_no: usize,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a str, line_no: usize) -> Cursor<'a> {
        Cursor {
            toks: line.split_ascii_whitespace(),
            line_no,
        }
    }

    fn bad(&self, why: &str) -> CertificateError {
        CertificateError::Malformed(format!("line {}: {}", self.line_no, why))
    }

    fn next(&mut self) -> Result<&'a str, CertificateError> {
        self.toks.next().ok_or_else(|| self.bad("missing token"))
    }

    fn usize(&mut self) -> Result<usize, CertificateError> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| self.bad(&format!("expected a number, got {t:?}")))
    }

    fn expect(&mut self, word: &str) -> Result<(), CertificateError> {
        let t = self.next()?;
        if t == word {
            Ok(())
        } else {
            Err(self.bad(&format!("expected {word:?}, got {t:?}")))
        }
    }

    fn finish(mut self) -> Result<(), CertificateError> {
        match self.toks.next() {
            None => Ok(()),
            Some(t) => Err(self.bad(&format!("trailing token {t:?}"))),
        }
    }

    /// One self-delimiting term encoding.
    fn term(&mut self, num_vars: usize) -> Result<Term, CertificateError> {
        let t = self.next()?;
        let (head, rest) = t
            .split_at_checked(1)
            .ok_or_else(|| self.bad("empty term token"))?;
        let (idx, argc) = rest
            .split_once('/')
            .ok_or_else(|| self.bad(&format!("bad term token {t:?}")))?;
        let idx: usize = idx
            .parse()
            .map_err(|_| self.bad(&format!("bad term token {t:?}")))?;
        let argc: usize = argc
            .parse()
            .map_err(|_| self.bad(&format!("bad term token {t:?}")))?;
        let head = match head {
            "v" => {
                if idx >= num_vars {
                    return Err(self.bad(&format!("variable index {idx} out of range")));
                }
                Head::Var(VarId::from_index(idx))
            }
            // Symbol indices are validated against the signature in
            // `verify`, once the embedded program has been elaborated.
            "s" => Head::Sym(SymId::from_index(idx)),
            _ => return Err(self.bad(&format!("bad term token {t:?}"))),
        };
        let mut args = Vec::with_capacity(argc);
        for _ in 0..argc {
            args.push(self.term(num_vars)?);
        }
        Ok(Term::from_parts(head, args))
    }

    fn var_id(&mut self, num_vars: usize) -> Result<VarId, CertificateError> {
        let idx = self.usize()?;
        if idx >= num_vars {
            return Err(self.bad(&format!("variable index {idx} out of range")));
        }
        Ok(VarId::from_index(idx))
    }
}

/// Decodes one [`Type::encode`] word sequence.
fn decode_type(words: &mut std::slice::Iter<'_, u32>) -> Option<Type> {
    match *words.next()? {
        0 => Some(Type::Var(TyVarId(*words.next()?))),
        1 => {
            let d = DataId::from_index(*words.next()? as usize);
            let argc = *words.next()? as usize;
            let mut args = Vec::with_capacity(argc);
            for _ in 0..argc {
                args.push(decode_type(words)?);
            }
            Some(Type::Data(d, args))
        }
        2 => {
            let a = decode_type(words)?;
            let b = decode_type(words)?;
            Some(Type::arrow(a, b))
        }
        _ => None,
    }
}

impl Certificate {
    /// Parses certificate text, validating structure and the program
    /// fingerprint. Symbol/datatype indices are validated later, in
    /// [`verify`](Certificate::verify), against the elaborated program.
    ///
    /// # Errors
    ///
    /// [`CertificateError::UnsupportedVersion`], [`CertificateError::Truncated`],
    /// [`CertificateError::FingerprintMismatch`], or
    /// [`CertificateError::Malformed`].
    pub fn parse(text: &str) -> Result<Certificate, CertificateError> {
        let mut lines = text.lines().enumerate();
        let mut next_line = move || lines.next().ok_or(CertificateError::Truncated);

        let (_, version) = next_line()?;
        if version != VERSION_LINE {
            return Err(CertificateError::UnsupportedVersion(version.to_string()));
        }

        let (n, line) = next_line()?;
        let mut c = Cursor::new(line, n + 1);
        c.expect("fingerprint")?;
        let fp_tok = c.next()?;
        let expected = u64::from_str_radix(fp_tok, 16)
            .map_err(|_| c.bad(&format!("bad fingerprint {fp_tok:?}")))?;
        c.finish()?;

        let (n, line) = next_line()?;
        let goal = unescape(line.strip_prefix("goal ").ok_or_else(|| {
            CertificateError::Malformed(format!("line {}: expected goal", n + 1))
        })?)?;

        let (n, line) = next_line()?;
        let program_src = unescape(line.strip_prefix("program ").ok_or_else(|| {
            CertificateError::Malformed(format!("line {}: expected program", n + 1))
        })?)?;

        let got = program_fingerprint(&program_src);
        if got != expected {
            return Err(CertificateError::FingerprintMismatch { expected, got });
        }

        let (n, line) = next_line()?;
        let mut c = Cursor::new(line, n + 1);
        c.expect("vars")?;
        let num_vars = c.usize()?;
        c.finish()?;
        let mut vars = VarStore::new();
        for _ in 0..num_vars {
            let (n, line) = next_line()?;
            // The name is the second whitespace-delimited token (spaces in
            // names are `\s`-escaped), followed by the encoded type.
            let mut c = Cursor::new(line, n + 1);
            c.expect("var")?;
            let name = unescape(c.next()?)?;
            let nwords = c.usize()?;
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(c.usize()? as u32);
            }
            c.finish()?;
            let ty = decode_type(&mut words.iter())
                .ok_or_else(|| CertificateError::Malformed(format!("line {}: bad type", n + 1)))?;
            vars.fresh(&name, ty);
        }

        let (n, line) = next_line()?;
        let mut c = Cursor::new(line, n + 1);
        c.expect("nodes")?;
        let num_nodes = c.usize()?;
        c.finish()?;
        let mut proof = Preproof::with_vars(vars);
        let mut rules = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let (n, line) = next_line()?;
            let mut c = Cursor::new(line, n + 1);
            c.expect("node")?;
            let lhs = c.term(num_vars)?;
            let rhs = c.term(num_vars)?;
            c.expect("prem")?;
            let nprem = c.usize()?;
            let mut premises = Vec::with_capacity(nprem);
            for _ in 0..nprem {
                let p = c.usize()?;
                if p >= num_nodes {
                    return Err(c.bad(&format!("premise {p} out of range")));
                }
                premises.push(NodeId::from_index(p));
            }
            c.expect("rule")?;
            let rule = match c.next()? {
                "open" => RuleApp::Open,
                "refl" => RuleApp::Refl,
                "reduce" => RuleApp::Reduce,
                "cong" => RuleApp::Cong,
                "funext" => RuleApp::FunExt {
                    fresh: c.var_id(num_vars)?,
                },
                "case" => {
                    let var = c.var_id(num_vars)?;
                    let nbranches = c.usize()?;
                    let mut branches = Vec::with_capacity(nbranches);
                    for _ in 0..nbranches {
                        let con = SymId::from_index(c.usize()?);
                        let nfresh = c.usize()?;
                        let mut fresh = Vec::with_capacity(nfresh);
                        for _ in 0..nfresh {
                            fresh.push(c.var_id(num_vars)?);
                        }
                        branches.push(CaseBranch { con, fresh });
                    }
                    RuleApp::Case { var, branches }
                }
                "subst" => {
                    let side = match c.next()? {
                        "L" => Side::Lhs,
                        "R" => Side::Rhs,
                        t => return Err(c.bad(&format!("bad side {t:?}"))),
                    };
                    let npos = c.usize()?;
                    let mut indices = Vec::with_capacity(npos);
                    for _ in 0..npos {
                        indices.push(c.usize()? as u32);
                    }
                    let lemma_flipped = match c.usize()? {
                        0 => false,
                        1 => true,
                        f => return Err(c.bad(&format!("bad flip flag {f}"))),
                    };
                    let nbind = c.usize()?;
                    let mut theta = Subst::new();
                    for _ in 0..nbind {
                        let v = c.var_id(num_vars)?;
                        let t = c.term(num_vars)?;
                        theta.insert(v, t);
                    }
                    RuleApp::Subst(SubstApp {
                        side,
                        pos: Position::from_indices(indices),
                        theta,
                        lemma_flipped,
                    })
                }
                t => return Err(c.bad(&format!("unknown rule {t:?}"))),
            };
            c.finish()?;
            proof.push_open(Equation::new(lhs, rhs));
            rules.push((rule, premises));
        }
        for (i, (rule, premises)) in rules.into_iter().enumerate() {
            if !matches!(rule, RuleApp::Open) {
                proof.justify(NodeId::from_index(i), rule, premises);
            }
        }

        let (n, line) = next_line()?;
        let mut c = Cursor::new(line, n + 1);
        c.expect("edges")?;
        let num_edges = c.usize()?;
        c.finish()?;
        let mut edges = Vec::with_capacity(num_edges);
        for _ in 0..num_edges {
            let (n, line) = next_line()?;
            let mut c = Cursor::new(line, n + 1);
            c.expect("edge")?;
            let v = c.usize()?;
            if v >= num_nodes {
                return Err(c.bad(&format!("edge node {v} out of range")));
            }
            let premise = c.usize()?;
            let ntriples = c.usize()?;
            let mut triples = Vec::with_capacity(ntriples);
            for _ in 0..ntriples {
                let x = c.var_id(num_vars)?;
                let y = c.var_id(num_vars)?;
                let label = match c.next()? {
                    "s" => Label::Strict,
                    "n" => Label::NonStrict,
                    t => return Err(c.bad(&format!("bad label {t:?}"))),
                };
                triples.push((x, y, label));
            }
            c.finish()?;
            triples.sort();
            edges.push((NodeId::from_index(v), premise, triples));
        }

        let (_, line) = next_line()?;
        if line != "end" {
            return Err(CertificateError::Malformed(format!(
                "expected end, got {line:?}"
            )));
        }

        Ok(Certificate {
            goal,
            program_src,
            proof,
            edges,
        })
    }

    /// The goal name the certificate claims to prove.
    pub fn goal(&self) -> &str {
        &self.goal
    }

    /// The embedded program source (already fingerprint-checked).
    pub fn program_src(&self) -> &str {
        &self.program_src
    }

    /// The deserialized preproof.
    pub fn proof(&self) -> &Preproof {
        &self.proof
    }

    /// Re-validates the certificate against an elaborated program: symbol
    /// and datatype indices are bounds-checked, the serialized size-change
    /// edge graphs are recomputed from the proof and compared, and finally
    /// the proof is run through the independent interned checker with the
    /// full global condition.
    ///
    /// # Errors
    ///
    /// [`CertificateError::Malformed`] for out-of-range indices,
    /// [`CertificateError::EdgeGraphMismatch`] for tampered edge graphs, and
    /// [`CertificateError::Check`] when the proof itself does not check.
    pub fn verify(&self, prog: &Program) -> Result<CheckReport, CertificateError> {
        let num_syms = prog.sig.num_syms();
        let bad_sym = |s: SymId| {
            CertificateError::Malformed(format!("symbol index {} out of range", s.index()))
        };
        let check_term = |t: &Term| -> Result<(), CertificateError> {
            let mut stack = vec![t];
            while let Some(t) = stack.pop() {
                if let Head::Sym(s) = t.head() {
                    if s.index() >= num_syms {
                        return Err(bad_sym(s));
                    }
                }
                stack.extend(t.args());
            }
            Ok(())
        };
        for (_, node) in self.proof.nodes() {
            check_term(node.eq.lhs())?;
            check_term(node.eq.rhs())?;
            match &node.rule {
                RuleApp::Case { branches, .. } => {
                    for b in branches {
                        if b.con.index() >= num_syms {
                            return Err(bad_sym(b.con));
                        }
                    }
                }
                RuleApp::Subst(app) => {
                    for (_, t) in app.theta.iter() {
                        check_term(t)?;
                    }
                }
                _ => {}
            }
        }
        let num_datas = prog.sig.num_datas();
        for (_, _, ty) in self.proof.vars().iter() {
            let mut stack = vec![ty];
            while let Some(ty) = stack.pop() {
                match ty {
                    Type::Var(_) => {}
                    Type::Data(d, args) => {
                        if d.index() >= num_datas {
                            return Err(CertificateError::Malformed(format!(
                                "datatype index {} out of range",
                                d.index()
                            )));
                        }
                        stack.extend(args);
                    }
                    Type::Arrow(a, b) => {
                        stack.push(a);
                        stack.push(b);
                    }
                }
            }
        }

        // The serialized edge graphs must enumerate exactly the proof's
        // (node, premise) edges in canonical order, with exactly the triples
        // Definition 5.3 assigns them.
        let mut want = Vec::new();
        for (v, node) in self.proof.nodes() {
            if matches!(node.rule, RuleApp::Open) {
                continue;
            }
            for i in 0..node.premises.len() {
                want.push((v, i));
            }
        }
        if self.edges.len() != want.len() {
            return Err(CertificateError::Malformed(format!(
                "expected {} edge graphs, got {}",
                want.len(),
                self.edges.len()
            )));
        }
        for ((v, i), (cv, ci, triples)) in want.into_iter().zip(&self.edges) {
            if v != *cv || i != *ci {
                return Err(CertificateError::Malformed(
                    "edge graph list out of order".into(),
                ));
            }
            let mut computed: Vec<(VarId, VarId, Label)> =
                edge_graph(&self.proof, v, i).edges().collect();
            computed.sort();
            if computed != *triples {
                return Err(CertificateError::EdgeGraphMismatch {
                    node: v.index(),
                    premise: i,
                });
            }
        }

        check_interned(&self.proof, prog, GlobalCheck::VariableTraces)
            .map_err(CertificateError::Check)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_rewrite::fixtures::nat_list_program;

    fn tiny_proof() -> (cycleq_rewrite::fixtures::ProgramFixture, Preproof) {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let conc = proof.push_open(Equation::new(
            Term::apps(p.f.add, vec![p.f.num(1), p.f.num(1)]),
            p.f.num(2),
        ));
        let prem = proof.push_open(Equation::new(p.f.num(2), p.f.num(2)));
        proof.justify(prem, RuleApp::Refl, vec![]);
        proof.justify(conc, RuleApp::Reduce, vec![prem]);
        (p, proof)
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        assert_eq!(program_fingerprint(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(program_fingerprint("a"), program_fingerprint("b"));
    }

    #[test]
    fn round_trip_preserves_proof_and_verifies() {
        let (p, proof) = tiny_proof();
        let text = export_certificate("demo", "-- not the real source", &proof);
        let cert = Certificate::parse(&text).unwrap();
        assert_eq!(cert.goal(), "demo");
        assert_eq!(cert.program_src(), "-- not the real source");
        assert_eq!(cert.proof().len(), proof.len());
        let report = cert.verify(&p.prog).unwrap();
        assert_eq!(report.nodes, 2);
    }

    #[test]
    fn escaping_round_trips_newlines_and_spaces() {
        let src = "data Nat = Z | S Nat\nadd Z y = y";
        assert_eq!(unescape(&escape_line(src)).unwrap(), src);
        assert_eq!(unescape(&escape_token("a b\\c")).unwrap(), "a b\\c");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (_, proof) = tiny_proof();
        let text = export_certificate("g", "p", &proof).replace("v1", "v9");
        assert!(matches!(
            Certificate::parse(&text),
            Err(CertificateError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_is_rejected() {
        let (_, proof) = tiny_proof();
        let text = export_certificate("g", "p", &proof);
        let cut = &text[..text.len() - 5];
        assert!(matches!(
            Certificate::parse(cut),
            Err(CertificateError::Truncated) | Err(CertificateError::Malformed(_))
        ));
        // Cutting whole trailing lines is always Truncated.
        let lines: Vec<&str> = text.lines().collect();
        let partial = lines[..lines.len() - 2].join("\n");
        assert_eq!(
            Certificate::parse(&partial).unwrap_err(),
            CertificateError::Truncated
        );
    }

    #[test]
    fn tampered_program_is_a_fingerprint_mismatch() {
        let (_, proof) = tiny_proof();
        let text = export_certificate("g", "original program", &proof);
        let tampered = text.replace("original program", "patched program");
        assert!(matches!(
            Certificate::parse(&tampered),
            Err(CertificateError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn tampered_edge_graph_is_detected() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let x = proof.vars_mut().fresh("x", p.f.nat_ty());
        let conc = proof.push_open(Equation::new(p.f.s(Term::var(x)), p.f.s(Term::var(x))));
        let prem = proof.push_open(Equation::new(Term::var(x), Term::var(x)));
        proof.justify(prem, RuleApp::Refl, vec![]);
        proof.justify(conc, RuleApp::Cong, vec![prem]);
        let text = export_certificate("g", "p", &proof);
        // The Cong edge carries the identity graph on x: `0 0 n`. Claim a
        // strict decrease instead.
        assert!(text.contains(" 0 0 n"));
        let tampered = text.replace(" 0 0 n", " 0 0 s");
        let cert = Certificate::parse(&tampered).unwrap();
        assert!(matches!(
            cert.verify(&p.prog),
            Err(CertificateError::EdgeGraphMismatch {
                node: 0,
                premise: 0
            })
        ));
    }

    #[test]
    fn corrupt_proof_fails_the_checker() {
        let (p, proof) = tiny_proof();
        // Rewrite the Reduce justification into Refl: the premise count no
        // longer matches, so the checker must reject the proof.
        let text = export_certificate("g", "p", &proof).replacen(" rule reduce", " rule refl", 1);
        let cert = Certificate::parse(&text).unwrap();
        assert!(matches!(
            cert.verify(&p.prog),
            Err(CertificateError::Check(_))
        ));
    }

    #[test]
    fn out_of_range_symbol_is_malformed() {
        let (p, proof) = tiny_proof();
        let text = export_certificate("g", "p", &proof);
        // Inflate the first symbol index (the conclusion's head, `add`) far
        // past the signature, keeping the token well-formed.
        let tampered = text.replacen("node s", "node s99", 1);
        let cert = Certificate::parse(&tampered).unwrap();
        assert!(matches!(
            cert.verify(&p.prog),
            Err(CertificateError::Malformed(_))
        ));
    }
}
