//! The proof transformations of Fig. 6 (§5.1).
//!
//! The paper justifies restricting `(Subst)` lemmas to `(Case)`-justified
//! nodes by exhibiting rewrites that eliminate the other choices from any
//! proof:
//!
//! 1. **Unreduced lemmas** (Fig. 6, top): a lemma justified by `(Reduce)`
//!    can be replaced by its reduced premise; by confluence the new
//!    continuation normalises to the same equation as the old one.
//! 2. **Nested substitution** (Fig. 6, bottom): a lemma justified by
//!    `(Subst)` can be replaced by *its* lemma, because contexts and
//!    substitutions compose; the application re-associates into the
//!    continuation.
//!
//! [`eliminate_redundant_lemmas`] applies both rewrites to a fixpoint,
//! returning the transformed proof and the number of rewrites performed.
//! Proofs produced by the search under the default
//! `LemmaPolicy::CaseOnly` contain no redundancies by construction —
//! which the tests pin down.

use cycleq_term::Equation;

use crate::node::{NodeId, RuleApp, SubstApp};
use crate::preproof::Preproof;

/// Statistics from [`eliminate_redundant_lemmas`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct RedundancyReport {
    /// Applications of the unreduced-lemma rewrite (Fig. 6 top).
    pub unreduced_lemmas: usize,
    /// Applications of the nested-substitution rewrite (Fig. 6 bottom).
    pub nested_substs: usize,
}

impl RedundancyReport {
    /// Total rewrites performed.
    pub fn total(&self) -> usize {
        self.unreduced_lemmas + self.nested_substs
    }
}

/// Counts the `(Subst)` nodes whose lemma is justified by something other
/// than `(Case)` — the redundancy the §5.1 restriction rules out.
pub fn count_redundant_lemmas(proof: &Preproof) -> usize {
    proof
        .nodes()
        .filter(|(_, n)| {
            if !matches!(n.rule, RuleApp::Subst(_)) {
                return false;
            }
            let lemma = n.premises[0];
            !matches!(proof.node(lemma).rule, RuleApp::Case { .. })
        })
        .count()
}

/// Applies the Fig. 6 rewrites until no `(Subst)` node uses a lemma
/// justified by `(Reduce)` or `(Subst)`, mutating the proof in place.
///
/// Lemmas justified by other rules are left alone: `(Refl)`-justified
/// lemmas induce no-op substitutions (harmless), and `(Cong)`/`(FunExt)`
/// lemmas are never produced by the search's lemma policies. The top
/// rewrite requires the lemma's matched side to be preserved by its
/// `(Reduce)` premise — exactly the paper's precondition that goals (and
/// hence the matched `M`) are kept in normal form.
pub fn eliminate_redundant_lemmas(proof: &mut Preproof) -> RedundancyReport {
    let mut report = RedundancyReport::default();
    // Fixpoint loop; each pass scans all nodes. Rewrites only add nodes and
    // re-target premises, so node ids remain stable.
    loop {
        let mut changed = false;
        for idx in 0..proof.len() {
            let v = NodeId::from_index(idx);
            let RuleApp::Subst(app) = proof.node(v).rule.clone() else {
                continue;
            };
            let lemma_id = proof.node(v).premises[0];
            let cont_id = proof.node(v).premises[1];
            match proof.node(lemma_id).rule.clone() {
                RuleApp::Reduce => {
                    // Fig. 6 (top): use the reduced premise directly.
                    let reduced = proof.node(lemma_id).premises[0];
                    // The occurrence in the conclusion is an instance of the
                    // *unreduced* side; that side must be unchanged by the
                    // reduction for the rewrite to preserve the occurrence.
                    let old_from = pick_side(&proof.node(lemma_id).eq, app.lemma_flipped);
                    let new_lemma_eq = proof.node(reduced).eq.clone();
                    let (new_from_matches, flipped) = orient_against(&new_lemma_eq, &old_from);
                    if !new_from_matches {
                        continue;
                    }
                    let new_to = pick_side(&new_lemma_eq, !flipped);
                    // New continuation: C[N'θ] ≈ P. It is conversion-equal
                    // to the old continuation (confluence), so justify it by
                    // (Reduce) with the old continuation as premise.
                    let side_term = app.side.of(&proof.node(v).eq).clone();
                    let Some(rewritten) = side_term.replace_at(&app.pos, app.theta.apply(&new_to))
                    else {
                        continue;
                    };
                    let untouched = app.side.flip().of(&proof.node(v).eq).clone();
                    let cont_eq = match app.side {
                        crate::node::Side::Lhs => Equation::new(rewritten, untouched),
                        crate::node::Side::Rhs => Equation::new(untouched, rewritten),
                    };
                    let new_cont = proof.push_open(cont_eq);
                    proof.justify(new_cont, RuleApp::Reduce, vec![cont_id]);
                    proof.justify(
                        v,
                        RuleApp::Subst(SubstApp {
                            side: app.side,
                            pos: app.pos.clone(),
                            theta: app.theta.clone(),
                            lemma_flipped: flipped,
                        }),
                        vec![reduced, new_cont],
                    );
                    report.unreduced_lemmas += 1;
                    changed = true;
                }
                RuleApp::Subst(inner) => {
                    // Fig. 6 (bottom): re-associate, using the inner lemma
                    // directly. Requires the outer occurrence to have
                    // matched the side of the lemma that contains the inner
                    // rewrite (otherwise the composite position is not
                    // defined).
                    let inner_side_is_from = matches!(
                        (app.lemma_flipped, inner.side),
                        (false, crate::node::Side::Lhs) | (true, crate::node::Side::Rhs)
                    );
                    if !inner_side_is_from {
                        continue;
                    }
                    let inner_lemma = proof.node(lemma_id).premises[0];
                    let inner_cont = proof.node(lemma_id).premises[1];
                    if inner_lemma == v || inner_lemma == lemma_id {
                        continue; // degenerate self-reference; leave alone
                    }
                    // Composite: position pos_v · pos_L, substitution
                    // θ_inner then σ_outer.
                    let comp_pos = app.pos.join(&inner.pos);
                    let comp_theta = inner.theta.then(&app.theta);
                    // New mid continuation: C[(D[Nθ])σ] ≈ P.
                    let inner_to = pick_side(&proof.node(inner_lemma).eq, !inner.lemma_flipped);
                    let side_term = app.side.of(&proof.node(v).eq).clone();
                    let Some(rewritten) =
                        side_term.replace_at(&comp_pos, comp_theta.apply(&inner_to))
                    else {
                        continue;
                    };
                    let untouched = app.side.flip().of(&proof.node(v).eq).clone();
                    let mid_eq = match app.side {
                        crate::node::Side::Lhs => Equation::new(rewritten, untouched),
                        crate::node::Side::Rhs => Equation::new(untouched, rewritten),
                    };
                    let mid = proof.push_open(mid_eq);
                    // Mid node: Subst with the *inner continuation* as
                    // lemma, rewriting (D[Nθ])σ to P'σ at pos_v.
                    proof.justify(
                        mid,
                        RuleApp::Subst(SubstApp {
                            side: app.side,
                            pos: app.pos.clone(),
                            theta: app.theta.clone(),
                            lemma_flipped: false,
                        }),
                        vec![inner_cont, cont_id],
                    );
                    // Top node: Subst with the inner lemma at the composite
                    // position.
                    proof.justify(
                        v,
                        RuleApp::Subst(SubstApp {
                            side: app.side,
                            pos: comp_pos,
                            theta: comp_theta,
                            lemma_flipped: inner.lemma_flipped,
                        }),
                        vec![inner_lemma, mid],
                    );
                    report.nested_substs += 1;
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return report;
        }
    }
}

/// The side of `eq` selected by the orientation flag (`false` = lhs).
fn pick_side(eq: &Equation, flipped: bool) -> cycleq_term::Term {
    if flipped {
        eq.rhs().clone()
    } else {
        eq.lhs().clone()
    }
}

/// Whether `target` occurs as a side of `eq`; returns `(found, flipped)`.
fn orient_against(eq: &Equation, target: &cycleq_term::Term) -> (bool, bool) {
    if eq.lhs() == target {
        (true, false)
    } else if eq.rhs() == target {
        (true, true)
    } else {
        (false, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, GlobalCheck};
    use crate::node::{Side, SubstApp};
    use cycleq_rewrite::fixtures::nat_list_program;
    use cycleq_term::{Position, Subst, Term, VarStore};

    /// Builds a proof whose lemma is a chain of Reduce-justified nodes —
    /// the Fig. 6 (top) shape: the lemma's `M` side is in normal form and
    /// only its `N` side reduces. The rewrite must chase the chain to a
    /// fixpoint.
    #[test]
    fn unreduced_lemma_chain_is_eliminated() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let one = p.f.num(1);
        let add0 = |t: Term| Term::apps(p.f.add, vec![p.f.num(0), t]);
        // refl:  S Z ≈ S Z                         [Refl]
        // mid:   S Z ≈ add Z (S Z)                 [Reduce → refl]
        // outer: S Z ≈ add Z (add Z (S Z))         [Reduce → mid]
        let refl = proof.push_open(Equation::new(one.clone(), one.clone()));
        proof.justify(refl, RuleApp::Refl, vec![]);
        let mid = proof.push_open(Equation::new(one.clone(), add0(one.clone())));
        proof.justify(mid, RuleApp::Reduce, vec![refl]);
        let outer = proof.push_open(Equation::new(one.clone(), add0(add0(one.clone()))));
        proof.justify(outer, RuleApp::Reduce, vec![mid]);
        // Goal: len (Cons Z Nil) ≈ S Z, rewriting the rhs occurrence of
        // `S Z` with the *outer* (unreduced) lemma.
        let lhs = Term::apps(p.f.len, vec![p.f.list_t(vec![p.f.num(0)])]);
        let goal = proof.push_open(Equation::new(lhs.clone(), one.clone()));
        let cont = proof.push_open(Equation::new(lhs.clone(), add0(add0(one.clone()))));
        let cont_refl = proof.push_open(Equation::new(one.clone(), one.clone()));
        proof.justify(cont_refl, RuleApp::Refl, vec![]);
        proof.justify(cont, RuleApp::Reduce, vec![cont_refl]);
        proof.justify(
            goal,
            RuleApp::Subst(SubstApp {
                side: Side::Rhs,
                pos: Position::root(),
                theta: Subst::new(),
                lemma_flipped: false,
            }),
            vec![outer, cont],
        );
        check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
        assert_eq!(count_redundant_lemmas(&proof), 1);

        let report = eliminate_redundant_lemmas(&mut proof);
        // Two rewrites: outer → mid, then mid → refl.
        assert_eq!(report.unreduced_lemmas, 2);
        assert_eq!(report.nested_substs, 0);
        // The transformed proof still checks; the goal's lemma premise has
        // been chased down to the fully reduced node.
        check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
        let lemma_now = proof.node(goal).premises[0];
        assert_eq!(lemma_now, refl);
    }

    /// An already-clean proof is untouched.
    #[test]
    fn clean_proofs_are_fixpoints() {
        let p = nat_list_program();
        let mut proof = Preproof::new();
        let id = proof.push_open(Equation::new(Term::sym(p.f.zero), Term::sym(p.f.zero)));
        proof.justify(id, RuleApp::Refl, vec![]);
        assert_eq!(count_redundant_lemmas(&proof), 0);
        let report = eliminate_redundant_lemmas(&mut proof);
        assert_eq!(report.total(), 0);
        check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
        let _ = VarStore::new();
    }
}
