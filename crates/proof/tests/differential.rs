//! Differential tests: the interned checker must agree with the owned
//! checker *verdict for verdict* — same acceptance, same error node and
//! kind on rejection — across prover-produced proofs, hand-built proofs,
//! and randomized corruptions of valid proofs. The owned checker stays the
//! reference implementation; these tests are the contract that lets the
//! fast interned path replace it everywhere else.

use cycleq_proof::{check, check_interned, GlobalCheck, NodeId, Preproof, RuleApp};
use cycleq_rewrite::fixtures::{nat_list_program, ProgramFixture};
use cycleq_rewrite::Program;
use cycleq_search::Prover;
use cycleq_term::{Equation, Term, VarStore};
use proptest::prelude::*;
use proptest::test_runner::Config;

/// Both checkers, both global modes: identical verdicts, identical error
/// coordinates, identical work counters.
fn assert_same_verdict(proof: &Preproof, prog: &Program) {
    for mode in [GlobalCheck::VariableTraces, GlobalCheck::TrustConstruction] {
        let owned = check(proof, prog, mode);
        let interned = check_interned(proof, prog, mode);
        match (owned, interned) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.nodes, b.nodes, "node counts diverge ({mode:?})");
                assert_eq!(a.back_edges, b.back_edges, "back edges diverge ({mode:?})");
                assert_eq!(
                    a.global_verified, b.global_verified,
                    "global verification diverges ({mode:?})"
                );
                assert_eq!(
                    a.reducts_checked, b.reducts_checked,
                    "reduct counters diverge ({mode:?})"
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.node, b.node, "error nodes diverge ({mode:?})");
                assert_eq!(a.kind, b.kind, "error kinds diverge ({mode:?})");
            }
            (a, b) => panic!("verdicts diverge ({mode:?}): owned {a:?} vs interned {b:?}"),
        }
    }
}

/// Rebuilds a preproof from a (possibly tweaked) flat node list. The tweak
/// sees `(equation, rule, premises)` triples and may corrupt any of them.
fn rebuilt<F>(proof: &Preproof, tweak: F) -> Preproof
where
    F: FnOnce(&mut Vec<(Equation, RuleApp, Vec<NodeId>)>),
{
    let mut nodes: Vec<_> = proof
        .nodes()
        .map(|(_, n)| (n.eq.clone(), n.rule.clone(), n.premises.clone()))
        .collect();
    tweak(&mut nodes);
    let mut out = Preproof::with_vars(proof.vars().clone());
    for (eq, _, _) in &nodes {
        out.push_open(eq.clone());
    }
    for (i, (_, rule, premises)) in nodes.into_iter().enumerate() {
        if !matches!(rule, RuleApp::Open) {
            out.justify(NodeId::from_index(i), rule, premises);
        }
    }
    out
}

/// Applies one of a fixed palette of corruptions, selected by `kind`, to
/// the node picked by `sel`. Some corruptions leave the proof valid (e.g.
/// flipping an equation — equations are unordered); the assertion is always
/// *agreement*, not rejection.
fn corrupt(nodes: &mut [(Equation, RuleApp, Vec<NodeId>)], kind: usize, sel: usize) {
    if nodes.is_empty() {
        return;
    }
    let i = sel % nodes.len();
    match kind {
        // Drop the last premise: premise-count mismatch.
        0 => {
            nodes[i].2.pop();
        }
        // Duplicate the first premise: premise-count mismatch the other way.
        1 => {
            if let Some(&p) = nodes[i].2.first() {
                nodes[i].2.push(p);
            }
        }
        // Claim (Refl) while keeping the premises: usually NotReflexive or
        // a premise-count error.
        2 => {
            nodes[i].1 = RuleApp::Refl;
        }
        // Claim (Reduce): the premise equation is rarely a joint reduct.
        3 => {
            nodes[i].1 = RuleApp::Reduce;
            nodes[i].2.truncate(1);
            if nodes[i].2.is_empty() {
                let next = NodeId::from_index((i + 1) % nodes.len());
                nodes[i].2.push(next);
            }
        }
        // Steal another node's equation: breaks whatever rule justified it.
        4 => {
            let j = (i + 1) % nodes.len();
            nodes[i].0 = nodes[j].0.clone();
        }
        // Reopen the node: unjustified nodes are never checkable.
        5 => {
            nodes[i].1 = RuleApp::Open;
            nodes[i].2.clear();
        }
        // Flip the equation: legal (equations are unordered) for (Refl) and
        // (Reduce); exercises the modulo-flip paths.
        6 => {
            let eq = &nodes[i].0;
            nodes[i].0 = Equation::new(eq.rhs().clone(), eq.lhs().clone());
        }
        // Redirect every premise at the root: corrupts rule instances and
        // can manufacture bogus cycles for the global check to reject.
        _ => {
            for p in &mut nodes[i].2 {
                *p = NodeId::from_index(0);
            }
        }
    }
}

/// A proved one-variable goal: `add x (S^k Z) ≈ S^k x` forces a case
/// split, a cycle, and (Subst)/(Cong) traffic — the richest rule mix the
/// nat fixture offers.
fn one_var_proof(p: &ProgramFixture, k: usize) -> Preproof {
    let mut vars = VarStore::new();
    let x = vars.fresh("x", p.f.nat_ty());
    let mut rhs = Term::var(x);
    for _ in 0..k {
        rhs = p.f.s(rhs);
    }
    let goal = Equation::new(Term::apps(p.f.add, vec![Term::var(x), p.f.num(k)]), rhs);
    let res = Prover::new(&p.prog).prove(goal, vars);
    assert!(res.outcome.is_proved(), "k={k}: {:?}", res.outcome);
    res.proof
}

fn ground_nat(p: &ProgramFixture) -> impl Strategy<Value = Term> {
    let zero = p.f.zero;
    let succ = p.f.succ;
    let add = p.f.add;
    let leaf = Just(Term::sym(zero));
    leaf.prop_recursive(3, 16, 2, move |inner| {
        prop_oneof![
            inner.clone().prop_map(move |t| Term::apps(succ, vec![t])),
            (inner.clone(), inner).prop_map(move |(a, b)| Term::apps(add, vec![a, b])),
        ]
    })
}

#[test]
fn checkers_agree_on_prover_ground_proofs() {
    let p = nat_list_program();
    proptest!(
        Config { cases: 32, ..Config::default() },
        |(a in ground_nat(&p), b in ground_nat(&p))| {
            let res = Prover::new(&p.prog).prove(Equation::new(a, b), VarStore::new());
            if res.outcome.is_proved() {
                assert_same_verdict(&res.proof, &p.prog);
            }
        }
    );
}

#[test]
fn checkers_agree_on_cyclic_one_variable_proofs() {
    let p = nat_list_program();
    for k in 0..4 {
        let proof = one_var_proof(&p, k);
        assert_same_verdict(&proof, &p.prog);
        // Sanity: these really are accepted, so agreement above is on the
        // accepting path, not vacuous double rejection.
        check(&proof, &p.prog, GlobalCheck::VariableTraces).expect("owned checker accepts");
    }
}

#[test]
fn checkers_agree_on_corrupted_proofs() {
    let p = nat_list_program();
    let base = one_var_proof(&p, 2);
    proptest!(
        Config { cases: 128, ..Config::default() },
        |(kind in 0usize..8, sel in 0usize..64)| {
            let mutant = rebuilt(&base, |nodes| corrupt(nodes, kind, sel));
            assert_same_verdict(&mutant, &p.prog);
        }
    );
}

#[test]
fn both_checkers_reject_specific_corruptions_identically() {
    let p = nat_list_program();
    let base = one_var_proof(&p, 1);

    // Reopening the root must be rejected by both as an open node.
    let reopened = rebuilt(&base, |nodes| {
        nodes[0].1 = RuleApp::Open;
        nodes[0].2.clear();
    });
    let owned = check(&reopened, &p.prog, GlobalCheck::VariableTraces);
    let interned = check_interned(&reopened, &p.prog, GlobalCheck::VariableTraces);
    assert!(owned.is_err(), "owned checker must reject an open node");
    assert_eq!(owned, interned);

    // A (Refl) claim on the root (whose sides differ) must be NotReflexive
    // from both.
    let not_refl = rebuilt(&base, |nodes| {
        nodes[0].1 = RuleApp::Refl;
        nodes[0].2.clear();
    });
    let owned = check(&not_refl, &p.prog, GlobalCheck::VariableTraces);
    let interned = check_interned(&not_refl, &p.prog, GlobalCheck::VariableTraces);
    assert!(owned.is_err(), "owned checker must reject the bogus (Refl)");
    assert_eq!(owned, interned);
}
