//! Adversarial tests for the independent checker: hand-built *wrong* proofs
//! must be rejected with the right error, at both the local and the global
//! level. The checker is the trust anchor of the whole system — a search
//! bug must not be able to sneak an unsound proof past it.

use cycleq_proof::{
    check, CaseBranch, CheckErrorKind, GlobalCheck, Preproof, RuleApp, Side, SubstApp,
};
use cycleq_rewrite::fixtures::nat_list_program;
use cycleq_term::{Equation, Position, Subst, Term, VarStore};

type Fixture = cycleq_rewrite::fixtures::ProgramFixture;

fn fixture() -> Fixture {
    nat_list_program()
}

#[test]
fn subst_with_wrong_substitution_is_rejected() {
    let p = fixture();
    let mut proof = Preproof::new();
    let x = proof.vars_mut().fresh("x", p.f.nat_ty());
    // Lemma: add x Z ≈ x (pretend-justified by Refl — itself wrong, but the
    // checker visits nodes in order and we make the lemma node 1).
    let goal = proof.push_open(Equation::new(
        Term::apps(p.f.add, vec![p.f.num(1), Term::sym(p.f.zero)]),
        p.f.num(1),
    ));
    let lemma = proof.push_open(Equation::new(
        Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]),
        Term::var(x),
    ));
    let refl = proof.push_open(Equation::new(p.f.num(1), p.f.num(1)));
    proof.justify(refl, RuleApp::Refl, vec![]);
    proof.justify(lemma, RuleApp::Refl, vec![]); // bogus, caught later
                                                 // θ binds x to the WRONG term (2 instead of 1).
    proof.justify(
        goal,
        RuleApp::Subst(SubstApp {
            side: Side::Lhs,
            pos: Position::root(),
            theta: Subst::singleton(x, p.f.num(2)),
            lemma_flipped: false,
        }),
        vec![lemma, refl],
    );
    let e = check(&proof, &p.prog, GlobalCheck::TrustConstruction).unwrap_err();
    assert!(matches!(e.kind, CheckErrorKind::BadSubst(_)), "{e:?}");
}

#[test]
fn subst_with_wrong_continuation_is_rejected() {
    let p = fixture();
    let mut proof = Preproof::new();
    let x = proof.vars_mut().fresh("x", p.f.nat_ty());
    let goal = proof.push_open(Equation::new(
        Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]),
        Term::var(x),
    ));
    let zb = proof.push_open(Equation::new(
        Term::apps(p.f.add, vec![Term::sym(p.f.zero), Term::sym(p.f.zero)]),
        Term::sym(p.f.zero),
    ));
    let xp = proof.vars_mut().fresh("x'", p.f.nat_ty());
    let sb = proof.push_open(Equation::new(
        Term::apps(p.f.add, vec![p.f.s(Term::var(xp)), Term::sym(p.f.zero)]),
        p.f.s(Term::var(xp)),
    ));
    proof.justify(
        goal,
        RuleApp::Case {
            var: x,
            branches: vec![
                CaseBranch {
                    con: p.f.zero,
                    fresh: vec![],
                },
                CaseBranch {
                    con: p.f.succ,
                    fresh: vec![xp],
                },
            ],
        },
        vec![zb, sb],
    );
    let zr = proof.push_open(Equation::new(Term::sym(p.f.zero), Term::sym(p.f.zero)));
    proof.justify(zr, RuleApp::Refl, vec![]);
    proof.justify(zb, RuleApp::Reduce, vec![zr]);
    // S branch: claim a Subst with the goal as lemma but a continuation
    // that does not match the rewrite.
    let bogus_cont = proof.push_open(Equation::new(p.f.num(3), p.f.num(3)));
    proof.justify(bogus_cont, RuleApp::Refl, vec![]);
    proof.justify(
        sb,
        RuleApp::Subst(SubstApp {
            side: Side::Lhs,
            pos: Position::root(),
            theta: Subst::singleton(x, p.f.s(Term::var(xp))),
            lemma_flipped: false,
        }),
        vec![goal, bogus_cont],
    );
    let e = check(&proof, &p.prog, GlobalCheck::TrustConstruction).unwrap_err();
    assert!(matches!(e.kind, CheckErrorKind::BadSubst(_)), "{e:?}");
}

#[test]
fn case_with_stale_variable_is_rejected() {
    // Fresh variables that are not fresh (they occur in the conclusion).
    let p = fixture();
    let mut proof = Preproof::new();
    let x = proof.vars_mut().fresh("x", p.f.nat_ty());
    let y = proof.vars_mut().fresh("y", p.f.nat_ty());
    let goal = proof.push_open(Equation::new(
        Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
        Term::var(y),
    ));
    let zb = proof.push_open(Equation::new(
        Term::apps(p.f.add, vec![Term::sym(p.f.zero), Term::var(y)]),
        Term::var(y),
    ));
    // Reuse y as the "fresh" S-argument.
    let sb = proof.push_open(Equation::new(
        Term::apps(p.f.add, vec![p.f.s(Term::var(y)), Term::var(y)]),
        Term::var(y),
    ));
    let dummy = proof.push_open(Equation::new(Term::sym(p.f.zero), Term::sym(p.f.zero)));
    proof.justify(dummy, RuleApp::Refl, vec![]);
    proof.justify(zb, RuleApp::Reduce, vec![dummy]);
    proof.justify(sb, RuleApp::Reduce, vec![dummy]);
    proof.justify(
        goal,
        RuleApp::Case {
            var: x,
            branches: vec![
                CaseBranch {
                    con: p.f.zero,
                    fresh: vec![],
                },
                CaseBranch {
                    con: p.f.succ,
                    fresh: vec![y],
                },
            ],
        },
        vec![zb, sb],
    );
    let e = check(&proof, &p.prog, GlobalCheck::TrustConstruction).unwrap_err();
    assert!(
        matches!(
            e.kind,
            CheckErrorKind::BadCaseSplit(_) | CheckErrorKind::NotAReduct
        ),
        "{e:?}"
    );
}

#[test]
fn funext_with_captured_variable_is_rejected() {
    let p = fixture();
    let mut proof = Preproof::new();
    let x = proof.vars_mut().fresh("x", p.f.nat_ty());
    // Goal mentions x; using x as the "fresh" extensionality variable is
    // capture.
    let goal = proof.push_open(Equation::new(
        Term::apps(p.f.add, vec![Term::var(x)]),
        Term::apps(p.f.add, vec![Term::var(x)]),
    ));
    let prem = proof.push_open(Equation::new(
        Term::apps(p.f.add, vec![Term::var(x), Term::var(x)]),
        Term::apps(p.f.add, vec![Term::var(x), Term::var(x)]),
    ));
    proof.justify(prem, RuleApp::Refl, vec![]);
    proof.justify(goal, RuleApp::FunExt { fresh: x }, vec![prem]);
    let e = check(&proof, &p.prog, GlobalCheck::TrustConstruction).unwrap_err();
    assert_eq!(e.kind, CheckErrorKind::BadExtensionality);
}

#[test]
fn dangling_premises_are_rejected() {
    let p = fixture();
    let mut proof = Preproof::new();
    let goal = proof.push_open(Equation::new(Term::sym(p.f.zero), Term::sym(p.f.zero)));
    proof.justify(
        goal,
        RuleApp::Reduce,
        vec![cycleq_proof::NodeId::from_index(7)],
    );
    let e = check(&proof, &p.prog, GlobalCheck::TrustConstruction).unwrap_err();
    assert_eq!(e.kind, CheckErrorKind::DanglingPremise);
}

#[test]
fn globally_unsound_mutual_recursion_is_rejected() {
    // Two nodes proving each other by Subst with identity-like θ: locally
    // fine, globally circular with no decrease.
    let p = fixture();
    let mut proof = Preproof::new();
    let x = proof.vars_mut().fresh("x", p.f.nat_ty());
    let a_eq = Equation::new(
        Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]),
        Term::var(x),
    );
    let a = proof.push_open(a_eq.clone());
    let refl = proof.push_open(Equation::new(Term::var(x), Term::var(x)));
    proof.justify(refl, RuleApp::Refl, vec![]);
    // a rewrites its own lhs occurrence using itself as lemma.
    proof.justify(
        a,
        RuleApp::Subst(SubstApp {
            side: Side::Lhs,
            pos: Position::root(),
            theta: Subst::singleton(x, Term::var(x)),
            lemma_flipped: false,
        }),
        vec![a, refl],
    );
    assert!(check(&proof, &p.prog, GlobalCheck::TrustConstruction).is_ok());
    let e = check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap_err();
    assert_eq!(e.kind, CheckErrorKind::GloballyUnsound);
}

#[test]
fn valid_search_proof_passes_all_modes() {
    // Sanity: a genuine proof passes both global modes.
    let p = fixture();
    let mut vars = VarStore::new();
    let x = vars.fresh("x", p.f.nat_ty());
    let goal = Equation::new(
        Term::apps(p.f.add, vec![Term::var(x), Term::sym(p.f.zero)]),
        Term::var(x),
    );
    let res = cycleq_search::Prover::new(&p.prog).prove(goal, vars);
    assert!(res.outcome.is_proved());
    check(&res.proof, &p.prog, GlobalCheck::TrustConstruction).unwrap();
    check(&res.proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
}

#[test]
fn search_proofs_have_no_redundant_lemmas() {
    // §5.1 in reverse: under the default CaseOnly policy the search never
    // produces a (Subst) whose lemma is justified by (Refl)/(Reduce)/
    // (Subst), so the Fig. 6 rewrites find nothing to do.
    let p = fixture();
    let mut vars = VarStore::new();
    let x = vars.fresh("x", p.f.nat_ty());
    let y = vars.fresh("y", p.f.nat_ty());
    let goal = Equation::new(
        Term::apps(p.f.add, vec![Term::var(x), Term::var(y)]),
        Term::apps(p.f.add, vec![Term::var(y), Term::var(x)]),
    );
    let res = cycleq_search::Prover::new(&p.prog).prove(goal, vars);
    assert!(res.outcome.is_proved());
    let mut proof = res.proof;
    assert_eq!(cycleq_proof::count_redundant_lemmas(&proof), 0);
    let report = cycleq_proof::eliminate_redundant_lemmas(&mut proof);
    assert_eq!(report.total(), 0, "nothing to rewrite");
    check(&proof, &p.prog, GlobalCheck::VariableTraces).unwrap();
}
