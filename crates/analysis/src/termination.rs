//! `CQ004`: the size-change termination pre-screen.
//!
//! Remark 2.1 assumes weak normalisation. A definition like
//! `loop x = loop x` silently burns the whole search budget before the
//! deadline machinery gives up; running the Lee–Jones–Ben-Amram check over
//! the program's call graph reports it *before* search instead. The graphs
//! come from [`cycleq_rewrite::program_call_graphs`] and are interned into
//! the hash-consed [`cycleq_sizechange::GraphStore`] by
//! [`Closure::from_edges`], so composition is memoized and subsumed graphs
//! are pruned — the same engine that checks the proofs themselves.
//!
//! The analysis is sound but incomplete: a finding means "termination not
//! established", not "diverges", which is why `CQ004` is a warning.

use cycleq_lang::Module;
use cycleq_rewrite::{non_terminating_suspects, program_call_graphs};
use cycleq_sizechange::{Closure, Soundness};

use crate::diagnostic::{Code, Diagnostic};
use crate::first_rule_line;

pub(crate) fn check(module: &Module) -> Vec<Diagnostic> {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    let edges = program_call_graphs(sig, trs);
    if edges.is_empty() {
        return Vec::new();
    }
    let closure = Closure::from_edges(edges);
    if closure.check() == Soundness::Sound {
        return Vec::new();
    }
    let stats = format!(
        "size-change closure: {} graphs, {} compositions ({} memoized)",
        closure.num_graphs(),
        closure.store().compositions(),
        closure.store().memo_hits(),
    );
    non_terminating_suspects(sig, trs)
        .into_iter()
        .map(|sym| {
            let name = sig.sym(sym).name();
            let line = first_rule_line(module, sym).or_else(|| module.decl_line(name));
            Diagnostic::new(
                Code::SizeChange,
                line,
                format!("termination of `{name}` is not established by size-change analysis"),
            )
            .with_note(
                "no argument of the recursive call decreases along every cycle; \
                 search on goals involving this function may spin until the budget \
                 or deadline runs out",
            )
            .with_note(
                "the analysis is sound but incomplete: a genuinely terminating \
                 definition may need a measure beyond structural descent",
            )
            .with_note(stats.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_lang::parse_module;

    #[test]
    fn structurally_recursive_programs_are_clean() {
        let m = parse_module(
            "data Nat = Z | S Nat\nadd :: Nat -> Nat -> Nat\nadd Z y = y\nadd (S x) y = S (add x y)\n",
        )
        .unwrap();
        assert!(check(&m).is_empty());
    }

    #[test]
    fn loop_is_flagged_before_search() {
        let m =
            parse_module("data Nat = Z | S Nat\nloop :: Nat -> Nat\nloop x = loop x\n").unwrap();
        let ds = check(&m);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::SizeChange);
        assert_eq!(ds[0].line, Some(3));
        assert!(ds[0].message.contains("`loop`"), "{}", ds[0].message);
    }

    #[test]
    fn argument_swap_is_flagged() {
        let m = parse_module("data Nat = Z | S Nat\nswp :: Nat -> Nat -> Nat\nswp x y = swp y x\n")
            .unwrap();
        let ds = check(&m);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::SizeChange);
    }

    #[test]
    fn mutual_recursion_through_subterms_is_clean() {
        let m = parse_module(
            "data Nat = Z | S Nat\ndata Bool = True | False\neven :: Nat -> Bool\neven Z = True\neven (S x) = odd x\nodd :: Nat -> Bool\nodd Z = False\nodd (S x) = even x\n",
        )
        .unwrap();
        assert!(check(&m).is_empty());
    }
}
