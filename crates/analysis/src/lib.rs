//! Static analysis of CycleQ inputs.
//!
//! CycleQ's soundness (Remark 2.1) rests on preconditions of the input
//! program — a terminating, orthogonal (left-linear, non-overlapping),
//! complete constructor rewrite system — that the prover itself never
//! checks. Mirroring how E-Cyclist validates the *outputs* of cyclic
//! reasoning, this crate validates the *inputs*: [`analyze`] runs every
//! check over a lowered [`Module`] and returns structured [`Diagnostic`]s
//! with stable codes, severities and source lines.
//!
//! | code    | severity | finding |
//! |---------|----------|---------|
//! | `CQ001` | warning  | non-exhaustive patterns (partial function)     |
//! | `CQ002` | error    | overlapping clause left-hand sides             |
//! | `CQ003` | error    | non-left-linear clause left-hand side          |
//! | `CQ004` | warning  | termination not established by size-change     |
//! | `CQ005` | warning  | equations unreachable from any goal            |
//! | `CQ006` | warning  | declared symbol or constructor never used      |
//! | `CQ007` | warning  | pattern variable shadows a defined function    |
//! | `CQ008` | error    | frontend failure surfaced through the linter   |
//! | `CQ009` | error    | non-joinable critical pair (order-sensitive)   |
//!
//! Overlaps are classified by joinability of their critical pairs:
//! `CQ002` instances whose critical pairs all converge are downgraded to
//! warnings (the system is weakly orthogonal), while diverging pairs are
//! promoted to the hard error `CQ009`. Several diagnostics carry a
//! machine-applicable [`Fix`]; [`analyze_with_fixes`] applies them to a
//! fixed point.
//!
//! The individual analyses reuse the engines the prover already trusts:
//! the pattern-matrix usefulness algorithm and the unification-based
//! orthogonality check from `cycleq_rewrite`, and the hash-consed,
//! memoized size-change closure from `cycleq_sizechange` — so a program
//! that lints clean is exactly one the paper's metatheory covers.

mod coverage;
mod critical_pairs;
mod deadcode;
mod diagnostic;
mod fix;
mod overlap;
mod termination;

pub use diagnostic::{Code, Diagnostic, Edit, EditKind, Fix, Severity};
pub use fix::{
    analyze_source, analyze_with_fixes, apply_fixes, attach_fixes, unified_diff, FixOutcome,
};

use cycleq_lang::{LangError, LangErrorKind, Module};
use cycleq_term::SymId;

/// Runs every analysis over a lowered module.
///
/// Diagnostics are sorted by source line (findings without a line sort
/// last), then by code, so output is deterministic across runs.
pub fn analyze(module: &Module) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(coverage::check(module));
    out.extend(overlap::check(module));
    out.extend(critical_pairs::check(module));
    out.extend(termination::check(module));
    out.extend(deadcode::check(module));
    out.sort_by(|a, b| {
        (a.line.unwrap_or(u32::MAX), a.code, &a.message).cmp(&(
            b.line.unwrap_or(u32::MAX),
            b.code,
            &b.message,
        ))
    });
    out
}

/// Maps a frontend failure to a diagnostic so `cycleq lint` reports files
/// that do not even lower in the same structured format.
///
/// Non-linear patterns get `CQ003` — the frontend rejects them before the
/// rule-level left-linearity analysis can see them, but they are the same
/// finding. Everything else is the catch-all `CQ008`.
pub fn lang_error_diagnostic(err: &LangError) -> Diagnostic {
    let code = match &err.kind {
        LangErrorKind::NonLinearPattern(_) => Code::NonLeftLinear,
        _ => Code::Frontend,
    };
    Diagnostic::new(code, Some(err.line), err.kind.to_string())
}

/// The source line of `sym`'s first clause, when the module kept one.
pub(crate) fn first_rule_line(module: &Module, sym: SymId) -> Option<u32> {
    module
        .program
        .trs
        .rules_for(sym)
        .first()
        .and_then(|id| module.rule_line(*id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_lang::{parse, parse_module};

    #[test]
    fn clean_program_has_no_diagnostics() {
        let m = parse_module(
            "data Nat = Z | S Nat\nadd :: Nat -> Nat -> Nat\nadd Z y = y\nadd (S x) y = S (add x y)\ngoal zr: add x Z === x\n",
        )
        .unwrap();
        assert!(analyze(&m).is_empty());
    }

    #[test]
    fn diagnostics_are_sorted_by_line() {
        // Unused constructor (line 2) and a partial, non-terminating
        // function (line 4 clause).
        let src = "data Nat = Z | S Nat\ndata Color = Red | Green\nspin :: Nat -> Nat\nspin (S x) = spin (S x)\n";
        let m = parse_module(src).unwrap();
        let ds = analyze(&m);
        assert!(!ds.is_empty());
        let lines: Vec<u32> = ds.iter().map(|d| d.line.unwrap_or(u32::MAX)).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn nonlinear_frontend_error_maps_to_cq003() {
        let err = cycleq_lang::lower(
            &parse("data Nat = Z | S Nat\nf :: Nat -> Nat -> Nat\nf x x = x\n").unwrap(),
        )
        .unwrap_err();
        let d = lang_error_diagnostic(&err);
        assert_eq!(d.code, Code::NonLeftLinear);
        assert_eq!(d.line, Some(3));
        assert!(d.is_error());
    }

    #[test]
    fn parse_failure_maps_to_cq008() {
        let err = parse("data Nat = Z |\n").unwrap_err();
        let d = lang_error_diagnostic(&err);
        assert_eq!(d.code, Code::Frontend);
        assert!(d.is_error());
    }
}
