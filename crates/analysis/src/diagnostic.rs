//! Structured diagnostics with stable codes.
//!
//! Codes are append-only: a code, once published, keeps its meaning so
//! that scripts matching on `CQ00x` (and the pinned CLI tests) never
//! silently change behaviour.

use std::fmt;

/// How serious a diagnostic is.
///
/// Errors break a soundness precondition of the paper (Remark 2.1) that
/// the analyzer can establish definitively; warnings flag conditions that
/// are suspicious or that a sound-but-incomplete analysis could not rule
/// out.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Suspicious but not definitively wrong.
    Warning,
    /// A definite violation of the standing assumptions.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The stable diagnostic codes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Code {
    /// `CQ001`: a defined function's clauses do not cover every
    /// constructor combination (partial function).
    NonExhaustive,
    /// `CQ002`: two clauses of the same function have overlapping
    /// left-hand sides (non-orthogonal, hence possibly non-confluent).
    Overlap,
    /// `CQ003`: a clause left-hand side repeats a variable.
    NonLeftLinear,
    /// `CQ004`: termination was not established by size-change analysis.
    SizeChange,
    /// `CQ005`: equations unreachable from any goal.
    Unreachable,
    /// `CQ006`: a declared symbol or constructor is never used.
    Unused,
    /// `CQ007`: a pattern variable shadows a defined function.
    Shadowed,
    /// `CQ008`: a frontend (parse, resolution or type) failure reported
    /// through the lint pipeline.
    Frontend,
    /// `CQ009`: two clauses overlap with a critical pair whose reducts do
    /// not rewrite to a common normal form (definitely non-confluent).
    NonJoinable,
}

impl Code {
    /// The stable wire form, `CQ001`..`CQ009`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::NonExhaustive => "CQ001",
            Code::Overlap => "CQ002",
            Code::NonLeftLinear => "CQ003",
            Code::SizeChange => "CQ004",
            Code::Unreachable => "CQ005",
            Code::Unused => "CQ006",
            Code::Shadowed => "CQ007",
            Code::Frontend => "CQ008",
            Code::NonJoinable => "CQ009",
        }
    }

    /// The severity this code is reported at.
    ///
    /// Orthogonality violations (`CQ002`, `CQ003`) and frontend failures
    /// are errors: the program definitively breaks Remark 2.1 (or cannot
    /// be lowered at all). Non-exhaustiveness and the termination
    /// pre-screen are warnings — the first because partial functions are
    /// meaningful (if hazardous) inputs, the second because size-change
    /// analysis is sound but incomplete and must not reject terminating
    /// programs outright.
    pub fn severity(self) -> Severity {
        match self {
            Code::Overlap | Code::NonLeftLinear | Code::Frontend | Code::NonJoinable => {
                Severity::Error
            }
            Code::NonExhaustive
            | Code::SizeChange
            | Code::Unreachable
            | Code::Unused
            | Code::Shadowed => Severity::Warning,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a single [`Edit`] does to its target line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EditKind {
    /// Insert the edit's text as new lines *before* the target line (a
    /// target one past the last line appends at the end of the file).
    Insert,
    /// Replace the target line with the edit's text (which may span
    /// several lines).
    Replace,
    /// Delete the target line; the text is unused and empty.
    Delete,
}

impl EditKind {
    /// The stable wire form used in NDJSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            EditKind::Insert => "insert",
            EditKind::Replace => "replace",
            EditKind::Delete => "delete",
        }
    }
}

/// One line-based source edit.
///
/// Lines are 1-based and always refer to the *original* source the fix was
/// computed against; appliers must process edits bottom-up (or otherwise
/// account for line shifts) when applying several at once.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Edit {
    /// The 1-based line in the original source this edit targets.
    pub line: u32,
    /// Insert, replace or delete.
    pub kind: EditKind,
    /// The new text (without a trailing newline); empty for deletions.
    pub text: String,
}

/// A machine-applicable repair attached to a [`Diagnostic`].
///
/// The edits are ordered by ascending line and target pairwise-distinct
/// lines, so a fix is internally conflict-free by construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fix {
    /// A short human-readable description of the repair.
    pub title: String,
    /// The line edits making up the repair.
    pub edits: Vec<Edit>,
}

/// One analysis finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// The 1-based source line, when the module kept one (modules built
    /// programmatically have no source map).
    pub line: Option<u32>,
    /// The main message.
    pub message: String,
    /// Supplementary notes (context, consequences, suggested fixes).
    pub notes: Vec<String>,
    /// A machine-applicable repair, when the analyzer can synthesize one.
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// Creates a diagnostic at the code's default severity.
    pub fn new(code: Code, line: Option<u32>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            line,
            message: message.into(),
            notes: Vec::new(),
            fix: None,
        }
    }

    /// Appends a note, builder-style.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Overrides the code's default severity, builder-style. Used to
    /// downgrade joinable overlaps (`CQ002`) to warnings: the code keeps
    /// its meaning but the instance is known benign.
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }

    /// Attaches a machine-applicable fix, builder-style.
    #[must_use]
    pub fn with_fix(mut self, fix: Fix) -> Diagnostic {
        self.fix = Some(fix);
        self
    }

    /// Whether this diagnostic is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    /// Renders `severity[CODE]: message` without location — callers
    /// prepend `file:line:` from [`Diagnostic::line`] and their own file
    /// name.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(Code::NonExhaustive.as_str(), "CQ001");
        assert_eq!(Code::Overlap.as_str(), "CQ002");
        assert_eq!(Code::NonLeftLinear.as_str(), "CQ003");
        assert_eq!(Code::SizeChange.as_str(), "CQ004");
        assert_eq!(Code::Unreachable.as_str(), "CQ005");
        assert_eq!(Code::Unused.as_str(), "CQ006");
        assert_eq!(Code::Shadowed.as_str(), "CQ007");
        assert_eq!(Code::Frontend.as_str(), "CQ008");
        assert_eq!(Code::NonJoinable.as_str(), "CQ009");
    }

    #[test]
    fn severities_follow_remark_2_1() {
        assert_eq!(Code::Overlap.severity(), Severity::Error);
        assert_eq!(Code::NonLeftLinear.severity(), Severity::Error);
        assert_eq!(Code::NonJoinable.severity(), Severity::Error);
        assert_eq!(Code::NonExhaustive.severity(), Severity::Warning);
        assert_eq!(Code::SizeChange.severity(), Severity::Warning);
    }

    #[test]
    fn with_severity_downgrades_an_instance() {
        let d = Diagnostic::new(Code::Overlap, Some(3), "joinable overlap")
            .with_severity(Severity::Warning);
        assert_eq!(d.to_string(), "warning[CQ002]: joinable overlap");
        assert!(!d.is_error());
    }

    #[test]
    fn with_fix_attaches_the_repair() {
        let fix = Fix {
            title: "delete the clause".into(),
            edits: vec![Edit {
                line: 4,
                kind: EditKind::Delete,
                text: String::new(),
            }],
        };
        let d = Diagnostic::new(Code::Unreachable, Some(4), "dead").with_fix(fix);
        assert_eq!(d.fix.as_ref().map(|f| f.edits.len()), Some(1));
        assert_eq!(EditKind::Insert.as_str(), "insert");
        assert_eq!(EditKind::Replace.as_str(), "replace");
        assert_eq!(EditKind::Delete.as_str(), "delete");
    }

    #[test]
    fn display_renders_code_and_severity() {
        let d = Diagnostic::new(Code::Overlap, Some(3), "clauses overlap");
        assert_eq!(d.to_string(), "error[CQ002]: clauses overlap");
        assert!(d.is_error());
    }
}
