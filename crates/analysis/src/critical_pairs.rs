//! `CQ002`/`CQ009`: critical-pair classification of overlapping clauses.
//!
//! PR 7's overlap check could only report *that* two clauses match the same
//! terms. This pass decides whether an overlap matters: it enumerates the
//! system's critical pairs ([`cycleq_rewrite::critical_pairs`]) and
//! normalizes both reducts of each with the memoized rewriter.
//!
//! - Every critical pair of a clause pair **joinable** (both reducts reach
//!   the same normal form): the overlap is benign for results — the system
//!   is weakly orthogonal, like the paper's fig. 2 `sub` — and is reported
//!   as `CQ002` downgraded to a *warning*, with the converging normal form
//!   in the note.
//! - Some critical pair **non-joinable** (the reducts normalize to
//!   different terms, or fail to normalize within fuel): the system is
//!   definitively order-sensitive and gets the `CQ009` *error*, with the
//!   two diverging reducts in the note.

use std::collections::BTreeMap;

use cycleq_lang::Module;
use cycleq_rewrite::{critical_pairs, CriticalPair, MemoRewriter, RuleId};
use cycleq_term::VarStore;

use crate::diagnostic::{Code, Diagnostic, Severity};

/// Fuel for normalizing critical-pair reducts. Reducts are instantiated
/// clause right-hand sides — tiny terms — so this is generous; a reduct
/// that exhausts it is treated as non-joinable (conservative).
const JOIN_FUEL: usize = 10_000;

/// The joinability verdict for one pair of overlapping clauses, shared by
/// the diagnostic pass below and fix synthesis.
pub(crate) struct OverlapVerdict {
    /// The earlier rule of the pair (by id).
    pub a: RuleId,
    /// The later rule of the pair.
    pub b: RuleId,
    /// Whether every critical pair of the two clauses is joinable.
    pub joinable: bool,
    /// The rendered peak of the first critical pair.
    pub peak: String,
    /// The rendered normal form of the inner-step reduct.
    pub left_nf: String,
    /// The rendered normal form of the outer-step reduct (equals
    /// `left_nf` when `joinable`).
    pub right_nf: String,
    /// Whether both reducts actually reached normal forms within fuel.
    pub normalized: bool,
}

/// Computes the per-clause-pair joinability verdicts for the module.
pub(crate) fn overlap_verdicts(module: &Module) -> Vec<OverlapVerdict> {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    let cps = critical_pairs(trs);
    if cps.pairs.is_empty() {
        return Vec::new();
    }
    let mut by_pair: BTreeMap<(RuleId, RuleId), Vec<&CriticalPair>> = BTreeMap::new();
    for cp in &cps.pairs {
        let key = (cp.inner.min(cp.outer), cp.inner.max(cp.outer));
        by_pair.entry(key).or_default().push(cp);
    }
    let mut rewriter = MemoRewriter::new(sig, trs).with_fuel(JOIN_FUEL);
    let mut out = Vec::new();
    for ((a, b), pair_cps) in by_pair {
        let mut verdict: Option<OverlapVerdict> = None;
        for cp in pair_cps {
            let l = rewriter.normalize(&cp.left);
            let r = rewriter.normalize(&cp.right);
            let normalized = l.in_normal_form && r.in_normal_form;
            let joinable = normalized && l.term == r.term;
            let render = |t: &cycleq_term::Term| display(t, sig, &cps.vars);
            let v = OverlapVerdict {
                a,
                b,
                joinable,
                peak: render(&cp.peak),
                left_nf: render(&l.term),
                right_nf: render(&r.term),
                normalized,
            };
            // Keep the first non-joinable critical pair as the pair's
            // verdict (it is the one worth showing); otherwise the first.
            match &verdict {
                Some(cur) if cur.joinable && !v.joinable => verdict = Some(v),
                None => verdict = Some(v),
                _ => {}
            }
        }
        out.extend(verdict);
    }
    out
}

fn display(t: &cycleq_term::Term, sig: &cycleq_term::Signature, vars: &VarStore) -> String {
    t.display(sig, vars).to_string()
}

pub(crate) fn check(module: &Module) -> Vec<Diagnostic> {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    let mut out = Vec::new();
    for v in overlap_verdicts(module) {
        let name = sig.sym(trs.rule(v.a).head()).name();
        let la = module.rule_line(v.a);
        let lb = module.rule_line(v.b);
        let position = match (la, lb) {
            (Some(la), Some(lb)) => format!("the clauses at lines {la} and {lb}"),
            _ => format!("clauses #{} and #{}", v.a.index(), v.b.index()),
        };
        if v.joinable {
            out.push(
                Diagnostic::new(
                    Code::Overlap,
                    la.or(lb),
                    format!("clauses for `{name}` overlap: {position} match the same terms"),
                )
                .with_severity(Severity::Warning)
                .with_note(format!(
                    "both clauses rewrite `{}`; the critical pair is joinable — \
                     both reducts normalize to `{}` — so results do not depend \
                     on clause order",
                    v.peak, v.left_nf
                ))
                .with_note(
                    "the system is weakly orthogonal, not orthogonal (Remark 2.1); \
                     `cycleq lint --fix` can split the more general clause into \
                     non-overlapping cases",
                ),
            );
        } else {
            let diverge = if v.normalized {
                format!(
                    "the reducts normalize to `{}` and `{}`, which never meet",
                    v.left_nf, v.right_nf
                )
            } else {
                format!(
                    "the reducts `{}` and `{}` did not reach normal forms within \
                     the fuel bound",
                    v.left_nf, v.right_nf
                )
            };
            out.push(
                Diagnostic::new(
                    Code::NonJoinable,
                    la.or(lb),
                    format!(
                        "clauses for `{name}` have a non-joinable critical pair: \
                         {position} disagree on `{}`",
                        v.peak
                    ),
                )
                .with_note(diverge)
                .with_note(
                    "a non-joinable critical pair breaks confluence outright: goal \
                     verdicts depend on clause order (Remark 2.1 is violated); \
                     rewrite the clauses so the overlapping case agrees",
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_lang::parse_module;

    #[test]
    fn orthogonal_programs_are_clean() {
        let m = parse_module(
            "data Nat = Z | S Nat\nsub :: Nat -> Nat -> Nat\nsub Z y = Z\nsub (S x) Z = S x\nsub (S x) (S y) = sub x y\n",
        )
        .unwrap();
        assert!(check(&m).is_empty());
    }

    #[test]
    fn joinable_weak_overlap_is_a_warning_with_converging_normal_form() {
        // The paper's fig. 2 `sub`: `sub Z y` and `sub x Z` both match
        // `sub Z Z`, where both return `Z` — a joinable weak overlap.
        let m = parse_module(
            "data Nat = Z | S Nat\nsub :: Nat -> Nat -> Nat\nsub Z y = Z\nsub x Z = x\nsub (S x) (S y) = sub x y\n",
        )
        .unwrap();
        let ds = check(&m);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Overlap);
        assert_eq!(ds[0].severity, Severity::Warning);
        assert_eq!(ds[0].line, Some(3));
        assert!(ds[0].message.contains("lines 3 and 4"), "{}", ds[0].message);
        assert!(
            ds[0]
                .notes
                .iter()
                .any(|n| n.contains("sub Z Z") && n.contains("normalize to `Z`")),
            "joinable note missing: {:?}",
            ds[0].notes
        );
    }

    #[test]
    fn non_joinable_overlap_is_cq009_with_both_reducts() {
        // `f x = Z` and `f Z = S Z` both match `f Z` but disagree there.
        let m =
            parse_module("data Nat = Z | S Nat\nf :: Nat -> Nat\nf x = Z\nf Z = S Z\n").unwrap();
        let ds = check(&m);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::NonJoinable);
        assert_eq!(ds[0].severity, Severity::Error);
        assert_eq!(ds[0].line, Some(3));
        assert!(ds[0].message.contains("`f Z`"), "{}", ds[0].message);
        assert!(
            ds[0]
                .notes
                .iter()
                .any(|n| n.contains("`Z`") && n.contains("`S Z`")),
            "diverging reducts missing: {:?}",
            ds[0].notes
        );
    }

    #[test]
    fn critical_instance_uses_original_variable_names() {
        // Non-ground peak: `g x y` vs `g (S m) n` overlap on `g (S m) n`
        // — the note must show the clauses' own variable names, not
        // freshened scratch names.
        let m = parse_module(
            "data Nat = Z | S Nat\ng :: Nat -> Nat -> Nat\ng x y = x\ng (S m) n = S m\n",
        )
        .unwrap();
        let ds = check(&m);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Overlap, "{:?}", ds[0]);
        let note = &ds[0].notes[0];
        // The peak is an instance under the mgu, so it may mix variables
        // from both clauses (here `m` from the second, `y` from the
        // first) — but every name must come from the source.
        assert!(
            note.contains("g (S m)"),
            "peak does not use source names: {note}"
        );
        // Whichever rule ends up freshened, no internal scratch names
        // (v0, v1, …) may leak, and no gratuitous primes appear when the
        // clauses' names do not collide.
        assert!(!note.contains("v0") && !note.contains("v1"), "{note}");
        assert!(!note.contains('\''), "gratuitous primes: {note}");
    }
}
