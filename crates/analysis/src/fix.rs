//! Machine-applicable fixes: synthesis, application, and the fixed-point
//! re-lint driver behind `cycleq lint --fix`.
//!
//! Three diagnostics currently carry fixes:
//!
//! - **`CQ002` (joinable overlap)** — completion into an orthogonal
//!   system: the more general clause is split over the constructors of the
//!   overlapping variable's datatype, and split cases already subsumed by
//!   the other clause (same matching, convergent right-hand sides) are
//!   dropped. This is semantics-preserving exactly because the critical
//!   pairs converge: on the overlap the two clauses already agreed, and
//!   everywhere else the split clauses behave like the original. The
//!   paper's fig. 2 `sub x Z = x` becomes `sub (S x) Z = S x` (the
//!   `sub Z Z = Z` case is subsumed by `sub Z y = Z`).
//! - **`CQ001` (partial function)** — a missing clause is inserted for the
//!   coverage witness when a right-hand side is derivable (all existing
//!   clauses return the same ground constructor term); otherwise a
//!   commented stub marks the spot for the author.
//! - **`CQ005` (unreachable equations)** — the declaration and all its
//!   clauses are deleted. Verdict-preserving by construction: reachability
//!   is transitive from the goals, so a deleted rule can never fire in any
//!   goal's proof search.
//!
//! [`apply_fixes`] applies a batch of fixes in one bottom-up pass over the
//! original line numbering, skipping fixes that touch a line an earlier
//! fix already claimed; [`analyze_with_fixes`] iterates
//! analyze → apply until no applicable fix remains (a fixed point, pinned
//! by the idempotence tests and the CI autofix step).

use std::collections::BTreeSet;

use cycleq_lang::{parse_module, print_clause, Module};
use cycleq_rewrite::{check_program, MemoRewriter, Rule, RuleId, Trs, WitnessPat};
use cycleq_term::{match_term, unify, Signature, Subst, SymKind, Term, VarId};

use crate::critical_pairs::overlap_verdicts;
use crate::deadcode::reachable_defined;
use crate::diagnostic::{Code, Diagnostic, Edit, EditKind, Fix};
use crate::{analyze, first_rule_line, lang_error_diagnostic};

/// Fuel for the small normalizations fix synthesis performs (subsumption
/// checks on instantiated right-hand sides).
const FIX_FUEL: usize = 10_000;

/// How many analyze → apply rounds [`analyze_with_fixes`] runs before
/// giving up. Each round must apply at least one fix, so this only bounds
/// pathological repair chains, not honest convergence.
const MAX_ROUNDS: usize = 10;

/// Runs the frontend and the analyzer on raw source, attaching fixes.
///
/// Frontend failures come back as a single `CQ003`/`CQ008` diagnostic, so
/// callers get the same structured output for files that do not lower.
pub fn analyze_source(source: &str) -> Vec<Diagnostic> {
    match parse_module(source) {
        Ok(module) => {
            let mut diags = analyze(&module);
            attach_fixes(&module, source, &mut diags);
            diags
        }
        Err(err) => vec![lang_error_diagnostic(&err)],
    }
}

/// The result of [`analyze_with_fixes`].
#[derive(Clone, Debug)]
pub struct FixOutcome {
    /// The repaired source (equal to the input when nothing applied).
    pub source: String,
    /// How many fixes were applied across all rounds.
    pub applied: usize,
    /// How many analyze → apply rounds ran.
    pub iterations: usize,
    /// The diagnostics remaining against the repaired source.
    pub diagnostics: Vec<Diagnostic>,
}

/// Repeatedly analyzes `source` and applies every attached fix until no
/// applicable fix remains (or [`MAX_ROUNDS`] is hit). Returns the repaired
/// source together with the diagnostics that survive it.
pub fn analyze_with_fixes(source: &str) -> FixOutcome {
    let mut src = source.to_string();
    let mut applied = 0;
    let mut iterations = 0;
    loop {
        let diags = analyze_source(&src);
        let fixes: Vec<Fix> = diags.iter().filter_map(|d| d.fix.clone()).collect();
        if fixes.is_empty() || iterations >= MAX_ROUNDS {
            return FixOutcome {
                source: src,
                applied,
                iterations,
                diagnostics: diags,
            };
        }
        let (next, n) = apply_fixes(&src, &fixes);
        if n == 0 {
            return FixOutcome {
                source: src,
                applied,
                iterations,
                diagnostics: diags,
            };
        }
        src = next;
        applied += n;
        iterations += 1;
    }
}

/// Applies a batch of fixes to `source` in one pass, returning the new
/// source and how many fixes were applied.
///
/// All edits refer to the *original* line numbering; they are applied
/// bottom-up so earlier edits never shift later targets. A fix whose edits
/// touch a line already claimed by an earlier fix in the batch (or fall
/// outside the file) is skipped whole — it gets another chance on the next
/// [`analyze_with_fixes`] round, against fresh line numbers.
pub fn apply_fixes(source: &str, fixes: &[Fix]) -> (String, usize) {
    let mut lines: Vec<String> = source.lines().map(String::from).collect();
    let total = lines.len() as u32;
    let mut claimed: BTreeSet<u32> = BTreeSet::new();
    let mut edits: Vec<&Edit> = Vec::new();
    let mut applied = 0;
    for fix in fixes {
        let mut fix_lines: BTreeSet<u32> = BTreeSet::new();
        let ok = fix.edits.iter().all(|e| {
            let in_range = match e.kind {
                EditKind::Insert => e.line >= 1 && e.line <= total + 1,
                EditKind::Replace | EditKind::Delete => e.line >= 1 && e.line <= total,
            };
            in_range && !claimed.contains(&e.line) && fix_lines.insert(e.line)
        });
        if !ok {
            continue;
        }
        claimed.extend(fix_lines);
        edits.extend(fix.edits.iter());
        applied += 1;
    }
    edits.sort_by_key(|e| std::cmp::Reverse(e.line));
    for e in edits {
        let i = (e.line - 1) as usize;
        match e.kind {
            EditKind::Delete => {
                lines.remove(i);
            }
            EditKind::Replace => {
                lines.splice(i..=i, e.text.lines().map(String::from));
            }
            EditKind::Insert => {
                lines.splice(i..i, e.text.lines().map(String::from));
            }
        }
    }
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    (out, applied)
}

/// Synthesizes fixes for the module and attaches them to the matching
/// diagnostics in `diags`. `source` must be the text the module was
/// parsed from — fixes carry line edits against it.
pub fn attach_fixes(module: &Module, source: &str, diags: &mut [Diagnostic]) {
    overlap_fixes(module, diags);
    coverage_fixes(module, source, diags);
    deadcode_fixes(module, diags);
}

/// Attaches `fix` to the first fix-less diagnostic matching code, line and
/// message substring.
fn attach(diags: &mut [Diagnostic], code: Code, line: Option<u32>, needle: &str, fix: Fix) {
    if let Some(d) = diags
        .iter_mut()
        .find(|d| d.code == code && d.line == line && d.fix.is_none() && d.message.contains(needle))
    {
        d.fix = Some(fix);
    }
}

// ---------------------------------------------------------------------------
// CQ002: complete joinable overlaps into orthogonal systems.
// ---------------------------------------------------------------------------

fn overlap_fixes(module: &Module, diags: &mut [Diagnostic]) {
    for v in overlap_verdicts(module) {
        if !v.joinable {
            continue;
        }
        let (Some(la), Some(lb)) = (module.rule_line(v.a), module.rule_line(v.b)) else {
            continue;
        };
        // Prefer splitting the later clause (it usually is the catch-all,
        // as in fig. 2's `sub x Z = x`); fall back to the earlier one.
        let fix = if let Some(var) = first_bound_var(module, v.b, v.a) {
            split_fix(module, v.b, v.a, var, lb)
        } else if let Some(var) = first_bound_var(module, v.a, v.b) {
            split_fix(module, v.a, v.b, var, la)
        } else {
            // Neither side is more specific anywhere: the left-hand sides
            // are variants, and joinability says the results agree — the
            // later clause is redundant.
            Some(Fix {
                title: format!("delete the duplicate clause at line {lb}"),
                edits: vec![Edit {
                    line: lb,
                    kind: EditKind::Delete,
                    text: String::new(),
                }],
            })
        };
        let Some(fix) = fix else { continue };
        let needle = format!("lines {la} and {lb}");
        attach(diags, Code::Overlap, Some(la.min(lb)), &needle, fix);
    }
}

/// The first variable of `general`'s left-hand side that the mgu with
/// `other` binds to a constructor-headed term — i.e. a position where
/// `other` is strictly more specific, so splitting `general` there makes
/// progress towards orthogonality.
fn first_bound_var(module: &Module, general: RuleId, other: RuleId) -> Option<VarId> {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    if trs.rule(general).head() != trs.rule(other).head() {
        return None; // only root overlaps are completed
    }
    let mut scratch = trs.vars().clone();
    let (po, _) = trs.freshen_rule(other, &mut scratch);
    let lhs_g = trs.rule(general).lhs_term();
    let lhs_o = Term::apps(trs.rule(other).head(), po);
    let theta = unify(&lhs_g, &lhs_o).ok()?;
    trs.rule(general)
        .lhs_vars()
        .iter()
        .find(|v| theta.get(**v).is_some_and(|t| t.is_constructor_headed(sig)))
        .copied()
}

/// Splits `general`'s clause over the constructors of `split_var`'s
/// datatype, dropping split cases subsumed by `other` (matching left-hand
/// side and convergent right-hand sides).
fn split_fix(
    module: &Module,
    general: RuleId,
    other: RuleId,
    split_var: VarId,
    line_general: u32,
) -> Option<Fix> {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    let g = trs.rule(general);
    let name = sig.sym(g.head()).name();
    let (data, ty_args) = {
        let (d, a) = trs.vars().ty(split_var).as_data()?;
        (d, a.to_vec())
    };
    let base = trs.vars().name(split_var).to_string();
    let taken: BTreeSet<String> = g
        .lhs_vars()
        .iter()
        .filter(|v| **v != split_var)
        .map(|v| trs.vars().name(*v).to_string())
        .collect();
    let mut vars = trs.vars().clone();
    let mut rewriter = MemoRewriter::new(sig, trs).with_fuel(FIX_FUEL);
    let mut kept: Vec<String> = Vec::new();
    for &k in sig.constructors_of(data) {
        let inst = sig.sym(k).scheme().instantiate_with(&ty_args).ok()?;
        let (arg_tys, _) = inst.uncurry();
        let mut used = taken.clone();
        let args: Vec<Term> = arg_tys
            .iter()
            .enumerate()
            .map(|(i, t)| {
                // The split variable itself disappears, so a single
                // constructor argument can reuse its name.
                let mut n = if arg_tys.len() == 1 {
                    base.clone()
                } else {
                    format!("{base}{}", i + 1)
                };
                while used.contains(&n) {
                    n.push('\'');
                }
                used.insert(n.clone());
                Term::var(vars.fresh(&n, (*t).clone()))
            })
            .collect();
        let sigma = Subst::singleton(split_var, Term::apps(k, args));
        let new_params: Vec<Term> = g.params().iter().map(|p| sigma.apply(p)).collect();
        let new_rhs = sigma.apply(g.rhs());
        if subsumed(&mut rewriter, trs.rule(other), &new_params, &new_rhs) {
            continue;
        }
        kept.push(print_clause(sig, &vars, name, &new_params, &new_rhs));
    }
    let edits = if kept.is_empty() {
        vec![Edit {
            line: line_general,
            kind: EditKind::Delete,
            text: String::new(),
        }]
    } else {
        vec![Edit {
            line: line_general,
            kind: EditKind::Replace,
            text: kept.join("\n"),
        }]
    };
    Some(Fix {
        title: format!(
            "split the clause at line {line_general} over the constructors of `{}`",
            sig.data(data).name()
        ),
        edits,
    })
}

/// Whether the split clause `new_params = new_rhs` is already covered by
/// `other`: `other`'s left-hand side matches it and the two right-hand
/// sides normalize to the same term. Justified by joinability — on shared
/// instances the clauses agree, so dropping the duplicate cannot change
/// any result.
fn subsumed(
    rewriter: &mut MemoRewriter<'_>,
    other: &Rule,
    new_params: &[Term],
    new_rhs: &Term,
) -> bool {
    if other.params().len() != new_params.len() {
        return false;
    }
    let subject = Term::apps(other.head(), new_params.to_vec());
    let Some(sigma) = match_term(&other.lhs_term(), &subject) else {
        return false;
    };
    let theirs = rewriter.normalize(&sigma.apply(other.rhs()));
    let ours = rewriter.normalize(new_rhs);
    theirs.in_normal_form && ours.in_normal_form && theirs.term == ours.term
}

// ---------------------------------------------------------------------------
// CQ001: insert missing clauses (or stubs) for coverage witnesses.
// ---------------------------------------------------------------------------

fn coverage_fixes(module: &Module, source: &str, diags: &mut [Diagnostic]) {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    for (sym, witness) in check_program(sig, trs) {
        let name = sig.sym(sym).name();
        let Some(insert_at) = insertion_line(module, sym, name) else {
            continue;
        };
        let mut counter = 0usize;
        let pats: Vec<String> = witness
            .iter()
            .map(|w| render_witness(sig, w, &mut counter))
            .collect();
        let head = format!("{name} {}", pats.join(" "));
        let (title, text) = match common_ground_rhs(sig, trs, sym) {
            Some(rhs) => (
                format!(
                    "insert the missing clause `{head} = {}`",
                    rhs.display(sig, trs.vars())
                ),
                format!("{head} = {}", rhs.display(sig, trs.vars())),
            ),
            None => {
                let stub = format!("-- cycleq: missing case: {head} = ...");
                if source.lines().any(|l| l.trim() == stub) {
                    continue; // already stubbed; do not re-insert forever
                }
                (format!("insert a stub for the missing case `{head}`"), stub)
            }
        };
        let line = first_rule_line(module, sym).or_else(|| module.decl_line(name));
        attach(
            diags,
            Code::NonExhaustive,
            line,
            &format!("`{name}` is partial"),
            Fix {
                title,
                edits: vec![Edit {
                    line: insert_at,
                    kind: EditKind::Insert,
                    text,
                }],
            },
        );
    }
}

/// The line to insert a new clause at: just after the function's last
/// clause, or after its signature if it has none.
fn insertion_line(module: &Module, sym: cycleq_term::SymId, name: &str) -> Option<u32> {
    let trs = &module.program.trs;
    let last_rule = trs
        .rules_for(sym)
        .iter()
        .filter_map(|id| module.rule_line(*id))
        .max();
    last_rule.or_else(|| module.decl_line(name)).map(|l| l + 1)
}

/// When every clause of `sym` returns the same ground constructor term,
/// that term: the one right-hand side a completion can justify (the new
/// clause trivially joins with every existing one).
fn common_ground_rhs(sig: &Signature, trs: &Trs, sym: cycleq_term::SymId) -> Option<Term> {
    let mut rules = trs.rules_for(sym).iter();
    let first = trs.rule(*rules.next()?).rhs().clone();
    if !first.is_ground() || first.contains_defined(sig) {
        return None;
    }
    rules
        .all(|id| *trs.rule(*id).rhs() == first)
        .then_some(first)
}

/// Renders a coverage witness as a parseable pattern, naming wildcard
/// positions `x1`, `x2`, … (fresh per clause, skipping names that would
/// shadow a declared symbol).
fn render_witness(sig: &Signature, w: &WitnessPat, counter: &mut usize) -> String {
    match w {
        WitnessPat::Any => loop {
            *counter += 1;
            let n = format!("x{counter}");
            if sig.sym_by_name(&n).is_none() {
                return n;
            }
        },
        WitnessPat::Con(s, args) => {
            if args.is_empty() {
                sig.sym(*s).name().to_string()
            } else {
                let inner: Vec<String> = args
                    .iter()
                    .map(|a| render_witness(sig, a, counter))
                    .collect();
                format!("({} {})", sig.sym(*s).name(), inner.join(" "))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CQ005: delete unreachable equations.
// ---------------------------------------------------------------------------

fn deadcode_fixes(module: &Module, diags: &mut [Diagnostic]) {
    if module.goals.is_empty() {
        return;
    }
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    let reach = reachable_defined(module);
    for (sym, decl) in sig.syms() {
        if decl.kind() != SymKind::Defined || reach.contains(&sym) {
            continue;
        }
        let rules = trs.rules_for(sym);
        if rules.is_empty() {
            continue;
        }
        let mut lines: BTreeSet<u32> = BTreeSet::new();
        let Some(decl_line) = module.decl_line(decl.name()) else {
            continue;
        };
        lines.insert(decl_line);
        let mut complete = true;
        for id in rules {
            match module.rule_line(*id) {
                Some(l) => {
                    lines.insert(l);
                }
                None => complete = false,
            }
        }
        if !complete {
            continue;
        }
        let edits: Vec<Edit> = lines
            .into_iter()
            .map(|line| Edit {
                line,
                kind: EditKind::Delete,
                text: String::new(),
            })
            .collect();
        attach(
            diags,
            Code::Unreachable,
            first_rule_line(module, sym).or_else(|| module.decl_line(decl.name())),
            &format!("`{}`", decl.name()),
            Fix {
                title: format!(
                    "delete `{}` and its {} unreachable equation{}",
                    decl.name(),
                    rules.len(),
                    if rules.len() == 1 { "" } else { "s" }
                ),
                edits,
            },
        );
    }
}

// ---------------------------------------------------------------------------
// Unified diffs for `--fix --dry-run`.
// ---------------------------------------------------------------------------

/// Renders a unified diff (3 context lines) between two sources, with
/// `a/path` / `b/path` headers. Empty when the sources are equal.
pub fn unified_diff(old: &str, new: &str, path: &str) -> String {
    if old == new {
        return String::new();
    }
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    // Line-level LCS (files are small; quadratic is fine).
    let mut lcs = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for i in (0..a.len()).rev() {
        for j in (0..b.len()).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    // Walk the table into an edit script: (tag, a_index, b_index).
    #[derive(PartialEq)]
    enum Op {
        Keep,
        Del,
        Add,
    }
    let mut script: Vec<(Op, usize, usize)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] == b[j] {
            script.push((Op::Keep, i, j));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            script.push((Op::Del, i, j));
            i += 1;
        } else {
            script.push((Op::Add, i, j));
            j += 1;
        }
    }
    while i < a.len() {
        script.push((Op::Del, i, j));
        i += 1;
    }
    while j < b.len() {
        script.push((Op::Add, i, j));
        j += 1;
    }
    // Group changes into hunks with up to 3 lines of context.
    const CTX: usize = 3;
    let mut out = format!("--- a/{path}\n+++ b/{path}\n");
    let changed: Vec<usize> = script
        .iter()
        .enumerate()
        .filter(|(_, (op, _, _))| *op != Op::Keep)
        .map(|(k, _)| k)
        .collect();
    let mut k = 0;
    while k < changed.len() {
        let start = changed[k].saturating_sub(CTX);
        let mut end = changed[k] + CTX;
        let mut last = k;
        while last + 1 < changed.len() && changed[last + 1] <= end + CTX {
            last += 1;
            end = changed[last] + CTX;
        }
        let end = end.min(script.len() - 1);
        let (a_start, b_start) = (script[start].1, script[start].2);
        let mut body = String::new();
        let mut a_count = 0;
        let mut b_count = 0;
        for (op, ai, bi) in &script[start..=end] {
            match op {
                Op::Keep => {
                    body.push(' ');
                    body.push_str(a[*ai]);
                    a_count += 1;
                    b_count += 1;
                }
                Op::Del => {
                    body.push('-');
                    body.push_str(a[*ai]);
                    a_count += 1;
                }
                Op::Add => {
                    body.push('+');
                    body.push_str(b[*bi]);
                    b_count += 1;
                }
            }
            body.push('\n');
        }
        out.push_str(&format!(
            "@@ -{},{a_count} +{},{b_count} @@\n{body}",
            a_start + 1,
            b_start + 1
        ));
        k = last + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;

    const FIG2: &str = "data Nat = Z | S Nat\n\
sub :: Nat -> Nat -> Nat\n\
sub Z y = Z\n\
sub x Z = x\n\
sub (S x) (S y) = sub x y\n\
goal g1: sub x x === Z\n";

    #[test]
    fn fig2_overlap_is_repaired_into_the_orthogonal_split() {
        let out = analyze_with_fixes(FIG2);
        assert!(out.applied >= 1, "{out:?}");
        assert!(
            out.source.contains("sub (S x) Z = S x"),
            "the catch-all must be narrowed to the S case:\n{}",
            out.source
        );
        assert!(
            !out.source.contains("sub x Z = x"),
            "the overlapping catch-all must be gone:\n{}",
            out.source
        );
        assert!(
            out.diagnostics.is_empty(),
            "the repaired program re-lints clean: {:?}",
            out.diagnostics
        );
    }

    #[test]
    fn fig2_fix_is_attached_to_the_cq002_diagnostic() {
        let diags = analyze_source(FIG2);
        let d = diags
            .iter()
            .find(|d| d.code == Code::Overlap)
            .expect("fig.2 has a joinable overlap");
        assert_eq!(d.severity, Severity::Warning);
        let fix = d.fix.as_ref().expect("joinable overlap carries a fix");
        assert!(fix.title.contains("split"), "{}", fix.title);
        assert_eq!(fix.edits.len(), 1);
        assert_eq!(fix.edits[0].line, 4);
        assert_eq!(fix.edits[0].kind, EditKind::Replace);
        assert_eq!(fix.edits[0].text, "sub (S x) Z = S x");
    }

    #[test]
    fn variant_clauses_delete_the_later_copy() {
        let src = "data Nat = Z | S Nat\nf :: Nat -> Nat\nf x = S x\nf y = S y\n";
        let out = analyze_with_fixes(src);
        assert_eq!(out.applied, 1, "{out:?}");
        assert!(out.source.contains("f x = S x"), "{}", out.source);
        assert!(!out.source.contains("f y = S y"), "{}", out.source);
        assert!(
            out.diagnostics.iter().all(|d| !d.is_error()),
            "{:?}",
            out.diagnostics
        );
    }

    #[test]
    fn non_joinable_overlap_gets_no_fix() {
        let src = "data Nat = Z | S Nat\nf :: Nat -> Nat\nf x = Z\nf Z = S Z\n";
        let diags = analyze_source(src);
        let d = diags
            .iter()
            .find(|d| d.code == Code::NonJoinable)
            .expect("diverging reducts are CQ009");
        assert!(d.fix.is_none(), "no sound completion exists: {d:?}");
    }

    #[test]
    fn partial_function_with_common_ground_rhs_gets_the_missing_clause() {
        let src = "data Nat = Z | S Nat\nisz :: Nat -> Nat\nisz Z = Z\n";
        let out = analyze_with_fixes(src);
        assert!(
            out.source.contains("isz (S x1) = Z"),
            "derivable right-hand side is inserted:\n{}",
            out.source
        );
        assert!(
            out.diagnostics
                .iter()
                .all(|d| d.code != Code::NonExhaustive),
            "{:?}",
            out.diagnostics
        );
    }

    #[test]
    fn partial_function_without_derivable_rhs_gets_a_stub_once() {
        let src = "data Nat = Z | S Nat\npred :: Nat -> Nat\npred (S x) = x\n";
        let out = analyze_with_fixes(src);
        let stub = "-- cycleq: missing case: pred Z = ...";
        assert_eq!(
            out.source.matches(stub).count(),
            1,
            "exactly one stub, never re-inserted:\n{}",
            out.source
        );
        assert!(
            out.diagnostics
                .iter()
                .any(|d| d.code == Code::NonExhaustive),
            "a stub does not silence CQ001: {:?}",
            out.diagnostics
        );
        // A second pass over the repaired source is a no-op.
        let again = analyze_with_fixes(&out.source);
        assert_eq!(again.applied, 0);
        assert_eq!(again.source, out.source);
    }

    #[test]
    fn unreachable_function_is_deleted_with_its_signature() {
        let src = "data Nat = Z | S Nat\n\
add :: Nat -> Nat -> Nat\n\
add Z y = y\n\
add (S x) y = S (add x y)\n\
mul :: Nat -> Nat -> Nat\n\
mul Z y = Z\n\
mul (S x) y = add y (mul x y)\n\
goal zr: add x Z === x\n";
        let out = analyze_with_fixes(src);
        assert!(out.applied >= 1, "{out:?}");
        assert!(!out.source.contains("mul"), "{}", out.source);
        assert!(out.source.contains("goal zr"), "{}", out.source);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn apply_fixes_skips_conflicts_and_applies_bottom_up() {
        let src = "a\nb\nc\n";
        let fixes = vec![
            Fix {
                title: "replace b".into(),
                edits: vec![Edit {
                    line: 2,
                    kind: EditKind::Replace,
                    text: "B1\nB2".into(),
                }],
            },
            Fix {
                title: "conflicting delete of b".into(),
                edits: vec![Edit {
                    line: 2,
                    kind: EditKind::Delete,
                    text: String::new(),
                }],
            },
            Fix {
                title: "insert at top".into(),
                edits: vec![Edit {
                    line: 1,
                    kind: EditKind::Insert,
                    text: "top".into(),
                }],
            },
        ];
        let (out, applied) = apply_fixes(src, &fixes);
        assert_eq!(applied, 2, "the overlapping second fix is skipped");
        assert_eq!(out, "top\na\nB1\nB2\nc\n");
    }

    #[test]
    fn apply_fixes_insert_past_the_end_appends() {
        let (out, applied) = apply_fixes(
            "a\n",
            &[Fix {
                title: "append".into(),
                edits: vec![Edit {
                    line: 2,
                    kind: EditKind::Insert,
                    text: "b".into(),
                }],
            }],
        );
        assert_eq!(applied, 1);
        assert_eq!(out, "a\nb\n");
    }

    #[test]
    fn unified_diff_marks_changed_lines_with_context() {
        let old = "a\nb\nc\n";
        let new = "a\nx\nc\n";
        let d = unified_diff(old, new, "t.hs");
        assert!(d.starts_with("--- a/t.hs\n+++ b/t.hs\n"), "{d}");
        assert!(d.contains("\n-b\n"), "{d}");
        assert!(d.contains("\n+x\n"), "{d}");
        assert!(d.contains("\n a\n"), "{d}");
        assert_eq!(
            unified_diff(old, old, "t.hs"),
            "",
            "equal sources diff empty"
        );
    }
}
