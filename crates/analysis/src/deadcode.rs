//! `CQ005`–`CQ007`: the dead-code sweep.
//!
//! Three cheap hygiene checks over the lowered module: equations that no
//! goal can ever exercise (`CQ005`, only meaningful when the module has
//! goals), symbols and constructors declared but never used (`CQ006`),
//! and pattern variables that shadow defined functions (`CQ007` — inside
//! the clause the name resolves to the variable, which is rarely what the
//! author meant).

use std::collections::BTreeSet;

use cycleq_lang::Module;
use cycleq_term::{SymId, SymKind, Term};

use crate::diagnostic::{Code, Diagnostic};
use crate::first_rule_line;

pub(crate) fn check(module: &Module) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_unreachable(module, &mut out);
    check_unused(module, &mut out);
    check_shadowing(module, &mut out);
    out
}

/// Defined symbols reachable from the goals, transitively through the
/// right-hand sides of their rules. Shared with fix synthesis: deleting a
/// symbol outside this set cannot change any goal's verdict.
pub(crate) fn reachable_defined(module: &Module) -> BTreeSet<SymId> {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    let mut reach: BTreeSet<SymId> = BTreeSet::new();
    let mut work: Vec<SymId> = Vec::new();
    let visit = |t: &Term, reach: &mut BTreeSet<SymId>, work: &mut Vec<SymId>| {
        for sub in t.subterms() {
            if let Some(s) = sub.head_sym() {
                if sig.is_defined(s) && reach.insert(s) {
                    work.push(s);
                }
            }
        }
    };
    for g in &module.goals {
        visit(g.eq.lhs(), &mut reach, &mut work);
        visit(g.eq.rhs(), &mut reach, &mut work);
    }
    while let Some(sym) = work.pop() {
        for id in trs.rules_for(sym) {
            visit(trs.rule(*id).rhs(), &mut reach, &mut work);
        }
    }
    reach
}

fn check_unreachable(module: &Module, out: &mut Vec<Diagnostic>) {
    if module.goals.is_empty() {
        // Without goals there is nothing to be reachable from; stay quiet
        // rather than flag the entire program.
        return;
    }
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    let reach = reachable_defined(module);
    for (sym, decl) in sig.syms() {
        if decl.kind() != SymKind::Defined || reach.contains(&sym) {
            continue;
        }
        let n = trs.rules_for(sym).len();
        if n == 0 {
            continue; // CQ006's department.
        }
        out.push(
            Diagnostic::new(
                Code::Unreachable,
                first_rule_line(module, sym).or_else(|| module.decl_line(decl.name())),
                format!(
                    "`{}` and its {n} equation{} are unreachable from any goal",
                    decl.name(),
                    if n == 1 { "" } else { "s" }
                ),
            )
            .with_note("unreachable equations never participate in proof search"),
        );
    }
}

fn check_unused(module: &Module, out: &mut Vec<Diagnostic>) {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    // Every symbol occurring in a rule (patterns or right-hand side) or a
    // goal. A rule's own head is a definition, not a use.
    let mut used: BTreeSet<SymId> = BTreeSet::new();
    let mark = |t: &Term, used: &mut BTreeSet<SymId>| {
        for sub in t.subterms() {
            if let Some(s) = sub.head_sym() {
                used.insert(s);
            }
        }
    };
    for (_, rule) in trs.rules() {
        for p in rule.params() {
            mark(p, &mut used);
        }
        mark(rule.rhs(), &mut used);
    }
    for g in &module.goals {
        mark(g.eq.lhs(), &mut used);
        mark(g.eq.rhs(), &mut used);
    }
    for (sym, decl) in sig.syms() {
        if used.contains(&sym) {
            continue;
        }
        match decl.kind() {
            SymKind::Constructor(_) => out.push(
                Diagnostic::new(
                    Code::Unused,
                    module.decl_line(decl.name()),
                    format!("constructor `{}` is never used", decl.name()),
                )
                .with_note(
                    "it still counts towards pattern coverage; drop it or add the missing case",
                ),
            ),
            SymKind::Defined => {
                if trs.rules_for(sym).is_empty() {
                    out.push(Diagnostic::new(
                        Code::Unused,
                        module.decl_line(decl.name()),
                        format!(
                            "`{}` is declared but has no equations and is never used",
                            decl.name()
                        ),
                    ));
                }
            }
        }
    }
}

fn check_shadowing(module: &Module, out: &mut Vec<Diagnostic>) {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    for (id, rule) in trs.rules() {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for p in rule.params() {
            for t in p.subterms() {
                let Some(v) = t.as_var() else { continue };
                let vname = trs.vars().name(v);
                if !seen.insert(vname) {
                    continue;
                }
                if sig.sym_by_name(vname).is_some_and(|s| sig.is_defined(s)) {
                    out.push(
                        Diagnostic::new(
                            Code::Shadowed,
                            module.rule_line(id),
                            format!(
                                "pattern variable `{vname}` in the clause for `{}` shadows the function of the same name",
                                sig.sym(rule.head()).name()
                            ),
                        )
                        .with_note(format!(
                            "inside this clause `{vname}` refers to the variable, not the function"
                        )),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_lang::parse_module;

    const NAT: &str = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
";

    #[test]
    fn fully_used_program_with_goal_is_clean() {
        let m = parse_module(&format!("{NAT}goal zr: add x Z === x\n")).unwrap();
        assert!(check(&m).is_empty());
    }

    #[test]
    fn function_unreachable_from_goals_is_flagged() {
        let src = format!(
            "{NAT}mul :: Nat -> Nat -> Nat\nmul Z y = Z\nmul (S x) y = add y (mul x y)\ngoal zr: add x Z === x\n"
        );
        let m = parse_module(&src).unwrap();
        let ds = check(&m);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Unreachable);
        assert_eq!(ds[0].line, Some(6));
        assert!(ds[0].message.contains("`mul`"), "{}", ds[0].message);
    }

    #[test]
    fn no_goals_means_no_reachability_findings() {
        let m = parse_module(NAT).unwrap();
        assert!(check(&m).is_empty());
    }

    #[test]
    fn unused_constructor_is_flagged_at_its_data_line() {
        let src = "data Nat = Z | S Nat\ndata Color = Red | Green\nadd :: Nat -> Nat -> Nat\nadd Z y = y\nadd (S x) y = S (add x y)\n";
        let m = parse_module(src).unwrap();
        let ds = check(&m);
        let unused: Vec<_> = ds.iter().filter(|d| d.code == Code::Unused).collect();
        assert_eq!(unused.len(), 2, "{ds:?}");
        assert!(unused.iter().all(|d| d.line == Some(2)));
    }

    #[test]
    fn declared_but_undefined_function_is_flagged() {
        let src = format!("{NAT}ghost :: Nat -> Nat\n");
        let m = parse_module(&src).unwrap();
        let ds = check(&m);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Unused);
        assert!(ds[0].message.contains("`ghost`"));
    }

    #[test]
    fn shadowing_pattern_variable_is_flagged_once() {
        let src = format!("{NAT}twice :: Nat -> Nat\ntwice add = add\n");
        let m = parse_module(&src).unwrap();
        let ds = check(&m);
        let shadowed: Vec<_> = ds.iter().filter(|d| d.code == Code::Shadowed).collect();
        assert_eq!(shadowed.len(), 1, "{ds:?}");
        assert_eq!(shadowed[0].line, Some(6));
        assert!(shadowed[0].message.contains("`add`"));
    }
}
