//! `CQ002`/`CQ003`: orthogonality.
//!
//! Remark 2.1 assumes the rewrite system is orthogonal — left-linear and
//! non-overlapping — which guarantees the confluence the prover relies on.
//! [`cycleq_rewrite::check_orthogonality`] reports the violating rules;
//! this pass names the repeated variables, computes the critical instance
//! both overlapping clauses match (by unifying their freshened left-hand
//! sides), and points both findings at their clause lines.

use cycleq_lang::Module;
use cycleq_rewrite::check_orthogonality;
use cycleq_term::{unify, Term, VarStore};

use crate::diagnostic::{Code, Diagnostic};

pub(crate) fn check(module: &Module) -> Vec<Diagnostic> {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    let report = check_orthogonality(trs);
    let mut out = Vec::new();
    for id in report.non_left_linear {
        let rule = trs.rule(id);
        let name = sig.sym(rule.head()).name();
        let repeated = repeated_vars(rule.params(), trs.vars());
        let mut d = Diagnostic::new(
            Code::NonLeftLinear,
            module.rule_line(id),
            format!(
                "clause for `{name}` is not left-linear: variable{} {} repeated in the left-hand side",
                if repeated.len() == 1 { "" } else { "s" },
                join_ticked(&repeated),
            ),
        );
        d = d.with_note(
            "a repeated pattern variable demands an equality test the rewrite \
             system cannot perform; orthogonality (Remark 2.1) requires each \
             variable to occur at most once",
        );
        out.push(d);
    }
    for (a, b) in report.overlaps {
        let name = sig.sym(trs.rule(a).head()).name();
        let la = module.rule_line(a);
        let lb = module.rule_line(b);
        let position = match (la, lb) {
            (Some(la), Some(lb)) => format!("the clauses at lines {la} and {lb}"),
            _ => format!("clauses #{} and #{}", a.index(), b.index()),
        };
        let mut d = Diagnostic::new(
            Code::Overlap,
            la.or(lb),
            format!("clauses for `{name}` overlap: {position} match the same terms"),
        );
        // Reconstruct the critical instance the report is about.
        let mut scratch = VarStore::new();
        let (pa, _) = trs.freshen_rule(a, &mut scratch);
        let (pb, _) = trs.freshen_rule(b, &mut scratch);
        let ta = Term::apps(trs.rule(a).head(), pa);
        let tb = Term::apps(trs.rule(b).head(), pb);
        if let Ok(theta) = unify(&ta, &tb) {
            let instance = theta.apply(&ta);
            d = d.with_note(format!(
                "both clauses rewrite `{}`, so results depend on clause order",
                instance.display(sig, &scratch)
            ));
        }
        d = d.with_note(
            "overlapping left-hand sides break the orthogonality assumption \
             (Remark 2.1): the system is no longer obviously confluent",
        );
        out.push(d);
    }
    out
}

/// Names of variables occurring more than once across the parameter
/// patterns, in first-occurrence order.
fn repeated_vars(params: &[Term], vars: &VarStore) -> Vec<String> {
    let mut order = Vec::new();
    let mut counts: std::collections::HashMap<cycleq_term::VarId, usize> =
        std::collections::HashMap::new();
    for p in params {
        for t in p.subterms() {
            if let Some(v) = t.as_var() {
                let c = counts.entry(v).or_insert(0);
                *c += 1;
                if *c == 2 {
                    order.push(v);
                }
            }
        }
    }
    order
        .into_iter()
        .map(|v| vars.name(v).to_string())
        .collect()
}

fn join_ticked(names: &[String]) -> String {
    let ticked: Vec<String> = names.iter().map(|n| format!("`{n}`")).collect();
    ticked.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_lang::parse_module;

    #[test]
    fn orthogonal_programs_are_clean() {
        let m = parse_module(
            "data Nat = Z | S Nat\nsub :: Nat -> Nat -> Nat\nsub Z y = Z\nsub (S x) Z = S x\nsub (S x) (S y) = sub x y\n",
        )
        .unwrap();
        assert!(check(&m).is_empty());
    }

    #[test]
    fn weak_overlap_is_reported_with_both_lines() {
        // The paper's fig. 2 `sub`: `sub Z y` and `sub x Z` both match
        // `sub Z Z` (a weak overlap — both rules return Z there, but the
        // system is still not orthogonal).
        let m = parse_module(
            "data Nat = Z | S Nat\nsub :: Nat -> Nat -> Nat\nsub Z y = Z\nsub x Z = x\nsub (S x) (S y) = sub x y\n",
        )
        .unwrap();
        let ds = check(&m);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Overlap);
        assert_eq!(ds[0].line, Some(3));
        assert!(ds[0].message.contains("lines 3 and 4"), "{}", ds[0].message);
        assert!(
            ds[0].notes.iter().any(|n| n.contains("sub Z Z")),
            "critical instance missing from notes: {:?}",
            ds[0].notes
        );
    }

    #[test]
    fn repeated_variable_is_named() {
        // The frontend rejects non-linear patterns, so build the module
        // through the rewrite layer directly.
        use cycleq_term::{fixtures::NatList, Term, Type, TypeScheme};
        let f = NatList::new();
        let mut sig = f.sig.clone();
        let eq = sig
            .add_defined(
                "eqSame",
                TypeScheme::mono(Type::arrows(vec![f.nat_ty(), f.nat_ty()], f.nat_ty())),
            )
            .unwrap();
        let mut trs = cycleq_rewrite::Trs::new();
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        trs.add_rule(&sig, eq, vec![Term::var(x), Term::var(x)], Term::var(x))
            .unwrap();
        let module = Module {
            program: cycleq_rewrite::Program::new(sig, trs),
            goals: Vec::new(),
            rule_lines: Vec::new(),
            decl_lines: std::collections::HashMap::new(),
        };
        let ds = check(&module);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::NonLeftLinear);
        assert_eq!(ds[0].line, None);
        assert!(ds[0].message.contains("`x`"), "{}", ds[0].message);
    }
}
