//! `CQ003`: left-linearity.
//!
//! Remark 2.1 assumes the rewrite system is orthogonal — left-linear and
//! non-overlapping. [`cycleq_rewrite::check_orthogonality`] reports the
//! violating rules; this pass names the repeated variables and points the
//! finding at its clause line. (The overlap half of orthogonality is
//! handled by the critical-pair classifier in
//! [`crate::critical_pairs`], which distinguishes joinable `CQ002` from
//! non-joinable `CQ009` overlaps.)

use cycleq_lang::Module;
use cycleq_rewrite::check_orthogonality;
use cycleq_term::{Term, VarStore};

use crate::diagnostic::{Code, Diagnostic};

pub(crate) fn check(module: &Module) -> Vec<Diagnostic> {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    let report = check_orthogonality(trs);
    let mut out = Vec::new();
    for id in report.non_left_linear {
        let rule = trs.rule(id);
        let name = sig.sym(rule.head()).name();
        let repeated = repeated_vars(rule.params(), trs.vars());
        let mut d = Diagnostic::new(
            Code::NonLeftLinear,
            module.rule_line(id),
            format!(
                "clause for `{name}` is not left-linear: variable{} {} repeated in the left-hand side",
                if repeated.len() == 1 { "" } else { "s" },
                join_ticked(&repeated),
            ),
        );
        d = d.with_note(
            "a repeated pattern variable demands an equality test the rewrite \
             system cannot perform; orthogonality (Remark 2.1) requires each \
             variable to occur at most once",
        );
        out.push(d);
    }
    out
}

/// Names of variables occurring more than once across the parameter
/// patterns, in first-occurrence order.
fn repeated_vars(params: &[Term], vars: &VarStore) -> Vec<String> {
    let mut order = Vec::new();
    let mut counts: std::collections::HashMap<cycleq_term::VarId, usize> =
        std::collections::HashMap::new();
    for p in params {
        for t in p.subterms() {
            if let Some(v) = t.as_var() {
                let c = counts.entry(v).or_insert(0);
                *c += 1;
                if *c == 2 {
                    order.push(v);
                }
            }
        }
    }
    order
        .into_iter()
        .map(|v| vars.name(v).to_string())
        .collect()
}

fn join_ticked(names: &[String]) -> String {
    let ticked: Vec<String> = names.iter().map(|n| format!("`{n}`")).collect();
    ticked.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_lang::parse_module;

    #[test]
    fn orthogonal_programs_are_clean() {
        let m = parse_module(
            "data Nat = Z | S Nat\nsub :: Nat -> Nat -> Nat\nsub Z y = Z\nsub (S x) Z = S x\nsub (S x) (S y) = sub x y\n",
        )
        .unwrap();
        assert!(check(&m).is_empty());
    }

    #[test]
    fn overlapping_but_left_linear_clauses_are_not_cq003() {
        // Overlaps are the critical-pair pass's business; this pass must
        // stay quiet on them.
        let m = parse_module(
            "data Nat = Z | S Nat\nsub :: Nat -> Nat -> Nat\nsub Z y = Z\nsub x Z = x\nsub (S x) (S y) = sub x y\n",
        )
        .unwrap();
        assert!(check(&m).is_empty());
    }

    #[test]
    fn repeated_variable_is_named() {
        // The frontend rejects non-linear patterns, so build the module
        // through the rewrite layer directly.
        use cycleq_term::{fixtures::NatList, Term, Type, TypeScheme};
        let f = NatList::new();
        let mut sig = f.sig.clone();
        let eq = sig
            .add_defined(
                "eqSame",
                TypeScheme::mono(Type::arrows(vec![f.nat_ty(), f.nat_ty()], f.nat_ty())),
            )
            .unwrap();
        let mut trs = cycleq_rewrite::Trs::new();
        let x = trs.vars_mut().fresh("x", f.nat_ty());
        trs.add_rule(&sig, eq, vec![Term::var(x), Term::var(x)], Term::var(x))
            .unwrap();
        let module = Module {
            program: cycleq_rewrite::Program::new(sig, trs),
            goals: Vec::new(),
            rule_lines: Vec::new(),
            decl_lines: std::collections::HashMap::new(),
        };
        let ds = check(&module);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::NonLeftLinear);
        assert_eq!(ds[0].line, None);
        assert!(ds[0].message.contains("`x`"), "{}", ds[0].message);
    }

    #[test]
    fn repeated_vars_names_same_and_cross_parameter_repetition_deduplicated() {
        // `g (Cons x x) y y x = Z`: `x` repeats *within* the first
        // parameter (and again across parameters), `y` repeats *across*
        // parameters. Both must be named, each exactly once, in
        // first-repetition order.
        use cycleq_term::{fixtures::NatList, Term, Type, TypeScheme};
        let f = NatList::new();
        let mut sig = f.sig.clone();
        let nat = f.nat_ty();
        let g = sig
            .add_defined(
                "g",
                TypeScheme::mono(Type::arrows(vec![nat.clone(); 4], nat.clone())),
            )
            .unwrap();
        let mut trs = cycleq_rewrite::Trs::new();
        let x = trs.vars_mut().fresh("x", nat.clone());
        let y = trs.vars_mut().fresh("y", nat);
        trs.add_rule(
            &sig,
            g,
            vec![
                Term::apps(f.cons, vec![Term::var(x), Term::var(x)]),
                Term::var(y),
                Term::var(y),
                Term::var(x),
            ],
            Term::sym(f.zero),
        )
        .unwrap();
        let module = Module {
            program: cycleq_rewrite::Program::new(sig, trs),
            goals: Vec::new(),
            rule_lines: Vec::new(),
            decl_lines: std::collections::HashMap::new(),
        };
        let ds = check(&module);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::NonLeftLinear);
        assert!(
            ds[0].message.contains("`x`, `y`"),
            "both variables, in first-repetition order: {}",
            ds[0].message
        );
        assert_eq!(
            ds[0].message.matches("`x`").count(),
            1,
            "`x` repeats three times but must be named once: {}",
            ds[0].message
        );
        assert_eq!(ds[0].message.matches("`y`").count(), 1, "{}", ds[0].message);
    }
}
