//! `CQ001`: pattern coverage.
//!
//! Remark 2.1 assumes programs are *complete*: no closed defined-head term
//! is a normal form. A function whose clauses miss a constructor case is
//! partial — goals mentioning it can get stuck on the uncovered values,
//! and equational reasoning about the stuck terms is vacuous. The heavy
//! lifting is the pattern-matrix usefulness algorithm in
//! [`cycleq_rewrite::check_program`]; this pass attaches source locations
//! and renders the uncovered witness.

use cycleq_lang::Module;
use cycleq_rewrite::check_program;

use crate::diagnostic::{Code, Diagnostic};
use crate::first_rule_line;

pub(crate) fn check(module: &Module) -> Vec<Diagnostic> {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    check_program(sig, trs)
        .into_iter()
        .map(|(sym, witness)| {
            let name = sig.sym(sym).name();
            let pats: Vec<String> = witness.iter().map(|w| w.display(sig)).collect();
            let line = first_rule_line(module, sym).or_else(|| module.decl_line(name));
            Diagnostic::new(
                Code::NonExhaustive,
                line,
                format!(
                    "`{name}` is partial: no clause matches `{name} {}`",
                    pats.join(" ")
                ),
            )
            .with_note(
                "partial functions break the completeness assumption (Remark 2.1): \
                 terms built from the uncovered case are stuck normal forms",
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_lang::parse_module;

    #[test]
    fn complete_programs_are_clean() {
        let m = parse_module(
            "data Nat = Z | S Nat\nadd :: Nat -> Nat -> Nat\nadd Z y = y\nadd (S x) y = S (add x y)\n",
        )
        .unwrap();
        assert!(check(&m).is_empty());
    }

    #[test]
    fn missing_case_is_reported_with_witness_and_line() {
        let m = parse_module("data Nat = Z | S Nat\npred :: Nat -> Nat\npred (S x) = x\n").unwrap();
        let ds = check(&m);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::NonExhaustive);
        assert_eq!(ds[0].line, Some(3));
        assert!(ds[0].message.contains("`pred Z`"), "{}", ds[0].message);
    }
}
