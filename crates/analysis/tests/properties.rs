//! Property tests for the coverage analysis: the `CQ001` verdict must agree
//! with a brute-force ground oracle. A unary or binary function over `Nat`
//! with patterns of depth ≤ 2 is partial iff some ground constructor
//! argument of depth ≤ 3 matches none of its clauses, so enumerating that
//! finite space decides exhaustiveness exactly.

use cycleq_analysis::{analyze, Code};
use cycleq_lang::{parse_module, Module};
use cycleq_term::Term;
use proptest::prelude::*;
use proptest::test_runner::Config;

fn cfg() -> Config {
    Config {
        cases: 128,
        ..Config::default()
    }
}

/// The pattern shapes we draw clauses from (all depth ≤ 2, so depth-3
/// ground witnesses are sufficient for the oracle). `{v}` is replaced by a
/// per-argument variable name so binary clauses stay left-linear.
const SHAPES: &[&str] = &["Z", "(S Z)", "(S (S {v}))", "(S {v})", "{v}"];

fn shape() -> impl Strategy<Value = usize> {
    0..SHAPES.len()
}

/// Renders shape `i` with `v` as its pattern variable.
fn render(i: usize, v: &str) -> String {
    SHAPES[i].replace("{v}", v)
}

/// All ground `Nat` terms of depth ≤ 3: `Z`, `S Z`, `S (S Z)`, `S (S (S Z))`.
fn ground_nats(module: &Module) -> Vec<Term> {
    let sig = &module.program.sig;
    let z = sig.sym_by_name("Z").unwrap();
    let s = sig.sym_by_name("S").unwrap();
    let mut out = vec![Term::sym(z)];
    for _ in 0..3 {
        let prev = out.last().unwrap().clone();
        out.push(Term::apps(s, vec![prev]));
    }
    out
}

/// First-order pattern match: a variable matches anything, a constructor
/// must match head and arguments. Left-linearity is guaranteed by lowering.
fn matches(pat: &Term, t: &Term) -> bool {
    if pat.as_var().is_some() {
        return true;
    }
    pat.head_sym() == t.head_sym() && pat.args().iter().zip(t.args()).all(|(p, a)| matches(p, a))
}

/// Does the analyzer report `f` as non-exhaustive?
fn analyzer_says_partial(module: &Module) -> bool {
    analyze(module)
        .iter()
        .any(|d| d.code == Code::NonExhaustive && d.message.contains("`f`"))
}

fn rule_params(module: &Module) -> Vec<Vec<Term>> {
    let sig = &module.program.sig;
    let trs = &module.program.trs;
    let f = sig.sym_by_name("f").unwrap();
    trs.rules_for(f)
        .iter()
        .map(|id| trs.rule(*id).params().to_vec())
        .collect()
}

#[test]
fn unary_coverage_verdict_matches_ground_enumeration() {
    proptest!(cfg(), |(picks in proptest::collection::vec(shape(), 1..5))| {
        let mut src = String::from("data Nat = Z | S Nat\nf :: Nat -> Nat\n");
        for i in &picks {
            src.push_str(&format!("f {} = Z\n", render(*i, "a")));
        }
        let module = parse_module(&src).unwrap();
        let params = rule_params(&module);
        let uncovered = ground_nats(&module)
            .iter()
            .any(|t| !params.iter().any(|ps| matches(&ps[0], t)));
        prop_assert_eq!(
            analyzer_says_partial(&module),
            uncovered,
            "analyzer disagrees with the ground oracle on:\n{}",
            src
        );
    });
}

#[test]
fn binary_coverage_verdict_matches_ground_enumeration() {
    proptest!(cfg(), |(picks in proptest::collection::vec((shape(), shape()), 1..6))| {
        let mut src = String::from("data Nat = Z | S Nat\nf :: Nat -> Nat -> Nat\n");
        for (a, b) in &picks {
            src.push_str(&format!("f {} {} = Z\n", render(*a, "a"), render(*b, "b")));
        }
        let module = parse_module(&src).unwrap();
        let params = rule_params(&module);
        let nats = ground_nats(&module);
        let uncovered = nats.iter().any(|ta| {
            nats.iter().any(|tb| {
                !params
                    .iter()
                    .any(|ps| matches(&ps[0], ta) && matches(&ps[1], tb))
            })
        });
        prop_assert_eq!(
            analyzer_says_partial(&module),
            uncovered,
            "analyzer disagrees with the ground oracle on:\n{}",
            src
        );
    });
}

#[test]
fn coverage_witness_is_itself_uncovered() {
    // When the analyzer produces a witness (the term quoted in the CQ001
    // message), that term really is stuck: re-parse it against the clause
    // patterns and check nothing matches.
    proptest!(cfg(), |(picks in proptest::collection::vec(shape(), 1..4))| {
        let mut src = String::from("data Nat = Z | S Nat\nf :: Nat -> Nat\n");
        for i in &picks {
            src.push_str(&format!("f {} = Z\n", render(*i, "a")));
        }
        let module = parse_module(&src).unwrap();
        let diag = analyze(&module)
            .into_iter()
            .find(|d| d.code == Code::NonExhaustive);
        if let Some(diag) = diag {
            let params = rule_params(&module);
            // The message quotes `f <witness>`; every ground instance of
            // the witness must be uncovered, so in particular no clause's
            // pattern may generalise the witness. We check the weaker,
            // purely syntactic fact that the message names a concrete
            // blocked case by confirming at least one depth-3 ground term
            // is uncovered.
            let uncovered = ground_nats(&module)
                .iter()
                .any(|t| !params.iter().any(|ps| matches(&ps[0], t)));
            prop_assert!(uncovered, "witness reported but oracle finds none: {}", diag.message);
        }
    });
}

/// Overlap classification (`CQ002` vs `CQ009`) differenced against a
/// brute-force oracle: enumerate the critical pairs at the rewrite layer,
/// normalize both reducts of every pair with the plain (unmemoized)
/// rewriter, and require (a) exactly one finding per overlapping clause
/// pair and (b) `CQ009` exactly when some pair's reducts fail to meet.
/// Programs are a fixed orthogonal `Nat` base plus one overlapping clause
/// with randomized patterns and right-hand sides.
#[test]
fn overlap_classification_matches_brute_force_reduct_normalization() {
    use cycleq_rewrite::{critical_pairs, Rewriter, RuleId};
    use std::collections::BTreeMap;

    const R1: &[&str] = &["Z", "y", "S y"];
    const R2: &[&str] = &["Z", "f x y", "S (f x y)"];
    // (extra clause left-hand side, candidate right-hand sides over the
    // variables that left-hand side binds)
    const EXTRA: &[(&str, &[&str])] = &[
        ("f x Z", &["x", "Z", "S x", "S Z"]),
        ("f x y", &["Z", "y", "x", "S y"]),
        ("f Z y", &["Z", "y", "S y"]),
        ("f (S x) y", &["Z", "S x", "f x y"]),
    ];
    proptest!(cfg(), |(
        r1 in 0..R1.len(),
        r2 in 0..R2.len(),
        e in 0..EXTRA.len(),
        re in 0usize..4,
    )| {
        let (pat, rhss) = EXTRA[e];
        let src = format!(
            "data Nat = Z | S Nat\nf :: Nat -> Nat -> Nat\nf Z y = {}\nf (S x) (S y) = {}\n{} = {}\n",
            R1[r1],
            R2[r2],
            pat,
            rhss[re % rhss.len()],
        );
        let module = parse_module(&src).unwrap();
        let sig = &module.program.sig;
        let trs = &module.program.trs;
        let rewriter = Rewriter::new(sig, trs).with_fuel(100_000);
        let mut pair_joinable: BTreeMap<(RuleId, RuleId), bool> = BTreeMap::new();
        for cp in &critical_pairs(trs).pairs {
            let key = (cp.inner.min(cp.outer), cp.inner.max(cp.outer));
            let l = rewriter.normalize(&cp.left);
            let r = rewriter.normalize(&cp.right);
            let joinable = l.in_normal_form && r.in_normal_form && l.term == r.term;
            *pair_joinable.entry(key).or_insert(true) &= joinable;
        }
        let diags = analyze(&module);
        let cq002 = diags.iter().filter(|d| d.code == Code::Overlap).count();
        let cq009 = diags.iter().filter(|d| d.code == Code::NonJoinable).count();
        prop_assert_eq!(
            cq002 + cq009,
            pair_joinable.len(),
            "one finding per overlapping clause pair:\n{}",
            src
        );
        let oracle_non_joinable = pair_joinable.values().filter(|j| !**j).count();
        prop_assert_eq!(
            cq009,
            oracle_non_joinable,
            "CQ009 must match the brute-force reduct verdict:\n{}",
            src
        );
    });
}
