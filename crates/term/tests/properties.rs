//! Property-based tests for the term layer: substitution laws, matching and
//! unification soundness, and position round-trips.

use std::collections::BTreeMap;

use cycleq_term::fixtures::NatList;
use cycleq_term::{match_term, unify, Position, Subst, Term, Type, VarStore};
use proptest::prelude::*;
use proptest::test_runner::Config;

/// Number of variables available to generated terms.
const NUM_VARS: usize = 4;

fn fixture_vars() -> (NatList, VarStore, Vec<cycleq_term::VarId>) {
    let f = NatList::new();
    let mut vars = VarStore::new();
    let vs = (0..NUM_VARS)
        .map(|i| vars.fresh(&format!("x{i}"), f.nat_ty()))
        .collect();
    (f, vars, vs)
}

/// Strategy for well-typed `Nat` terms over `Z`, `S`, `add` and variables.
fn nat_term(f: &NatList, vs: &[cycleq_term::VarId]) -> impl Strategy<Value = Term> {
    let zero = f.zero;
    let succ = f.succ;
    let add = f.add;
    let vs = vs.to_vec();
    let leaf = prop_oneof![
        Just(Term::sym(zero)),
        (0..vs.len()).prop_map(move |i| Term::var(vs[i])),
    ];
    leaf.prop_recursive(4, 24, 2, move |inner| {
        prop_oneof![
            inner.clone().prop_map(move |t| Term::apps(succ, vec![t])),
            (inner.clone(), inner).prop_map(move |(a, b)| Term::apps(add, vec![a, b])),
        ]
    })
}

/// Strategy for substitutions mapping the fixture variables to `Nat` terms.
fn nat_subst(f: &NatList, vs: &[cycleq_term::VarId]) -> impl Strategy<Value = Subst> {
    let term = nat_term(f, vs);
    let vs = vs.to_vec();
    proptest::collection::vec(proptest::option::of(term), vs.len()).prop_map(move |opts| {
        vs.iter()
            .zip(opts)
            .filter_map(|(v, t)| t.map(|t| (*v, t)))
            .collect()
    })
}

fn cfg() -> Config {
    Config {
        cases: 128,
        ..Config::default()
    }
}

#[test]
fn substitution_composition_agrees_with_sequential_application() {
    let (f, _vars, vs) = fixture_vars();
    proptest!(cfg(), |(t in nat_term(&f, &vs), s0 in nat_subst(&f, &vs), s1 in nat_subst(&f, &vs))| {
        let seq = s1.apply(&s0.apply(&t));
        let composed = s0.then(&s1).apply(&t);
        prop_assert_eq!(seq, composed);
    });
}

#[test]
fn matching_is_sound() {
    let (f, _vars, vs) = fixture_vars();
    proptest!(cfg(), |(pat in nat_term(&f, &vs), s in nat_subst(&f, &vs))| {
        // Build subject = pat·s, then matching must succeed and be sound.
        let subj = s.apply(&pat);
        let theta = match_term(&pat, &subj);
        prop_assert!(theta.is_some(), "pattern must match its own instance");
        let theta = theta.unwrap();
        prop_assert_eq!(theta.apply(&pat), subj);
    });
}

#[test]
fn matching_failure_means_no_instance_on_ground_subjects() {
    let (f, _vars, vs) = fixture_vars();
    proptest!(cfg(), |(pat in nat_term(&f, &vs), subj in nat_term(&f, &vs))| {
        prop_assume!(subj.is_ground());
        if let Some(theta) = match_term(&pat, &subj) {
            prop_assert_eq!(theta.apply(&pat), subj);
        }
    });
}

#[test]
fn unification_is_sound_and_idempotent() {
    let (f, _vars, vs) = fixture_vars();
    proptest!(cfg(), |(a in nat_term(&f, &vs), b in nat_term(&f, &vs))| {
        if let Ok(theta) = unify(&a, &b) {
            prop_assert_eq!(theta.apply(&a), theta.apply(&b));
            let once = theta.apply(&a);
            prop_assert_eq!(theta.apply(&once.clone()), once);
        }
    });
}

#[test]
fn unification_succeeds_on_instances() {
    let (f, _vars, vs) = fixture_vars();
    proptest!(cfg(), |(pat in nat_term(&f, &vs), s in nat_subst(&f, &vs))| {
        // pat and pat·s have the common instance pat·s; unification may only
        // fail when s introduces a cycle (x bound to a term containing x).
        let inst = s.apply(&pat);
        match unify(&pat, &inst) {
            Ok(theta) => prop_assert_eq!(theta.apply(&pat), theta.apply(&inst)),
            Err(e) => {
                // The occurs check also fires on *indirect* cycles
                // (x ↦ S y, y ↦ S x), so accept any cycle in the
                // dependency graph of s restricted to pat's variables.
                let pvs = pat.vars();
                let step = |v: &cycleq_term::VarId| -> Vec<cycleq_term::VarId> {
                    s.get(*v)
                        .filter(|t| t.as_var() != Some(*v))
                        .map(|t| t.vars().into_iter().filter(|w| pvs.contains(w)).collect())
                        .unwrap_or_default()
                };
                let cyclic = pvs.iter().any(|start| {
                    let mut frontier = step(start);
                    let mut seen = std::collections::BTreeSet::new();
                    while let Some(v) = frontier.pop() {
                        if v == *start {
                            return true;
                        }
                        if seen.insert(v) {
                            frontier.extend(step(&v));
                        }
                    }
                    false
                });
                prop_assert!(cyclic, "unification failed unexpectedly: {}", e);
            }
        }
    });
}

#[test]
fn positions_replace_round_trip() {
    let (f, _vars, vs) = fixture_vars();
    proptest!(cfg(), |(t in nat_term(&f, &vs))| {
        for (pos, sub) in t.positions() {
            // Replacing a subterm with itself is the identity.
            let same = t.replace_at(&pos, sub.clone()).unwrap();
            prop_assert_eq!(&same, &t);
            // Replacing with Z then reading back yields Z.
            let z = Term::sym(f.zero);
            let replaced = t.replace_at(&pos, z.clone()).unwrap();
            prop_assert_eq!(replaced.at(&pos), Some(&z));
        }
    });
}

#[test]
fn position_count_equals_term_size() {
    let (f, _vars, vs) = fixture_vars();
    proptest!(cfg(), |(t in nat_term(&f, &vs))| {
        prop_assert_eq!(t.positions().count(), t.size());
    });
}

#[test]
fn canonical_key_invariant_under_renaming() {
    let (f, vars, vs) = fixture_vars();
    let mut vars = vars;
    // Rename every variable v_i to a fresh w_i (injectively).
    let mut renaming = Subst::new();
    for (i, v) in vs.iter().enumerate() {
        let w = vars.fresh(&format!("w{i}"), f.nat_ty());
        renaming.insert(*v, Term::var(w));
    }
    proptest!(cfg(), |(t in nat_term(&f, &vs))| {
        let t2 = renaming.apply(&t);
        let e1 = cycleq_term::Equation::new(t.clone(), t.clone());
        let e2 = cycleq_term::Equation::new(t2.clone(), t2);
        prop_assert_eq!(e1.canonical_key(), e2.canonical_key());
    });
}

#[test]
fn interner_round_trips_and_dedupes() {
    let (f, _vars, vs) = fixture_vars();
    proptest!(cfg(), |(t in nat_term(&f, &vs))| {
        let mut store = cycleq_term::TermStore::new();
        let id = store.intern(&t);
        // intern → resolve is the identity.
        prop_assert_eq!(store.resolve(id), t.clone());
        // A structurally equal term interns to the same id.
        prop_assert_eq!(store.intern(&t.clone()), id);
        // Cached metadata agrees with the owned computations.
        prop_assert_eq!(store.size(id), t.size());
        prop_assert_eq!(store.depth(id), t.depth());
        prop_assert_eq!(store.is_ground(id), t.is_ground());
        let mut acc = std::collections::BTreeSet::new();
        store.collect_vars(id, &mut acc);
        prop_assert_eq!(acc, t.vars());
        // The store never holds more nodes than the term has (sharing can
        // only shrink it).
        prop_assert!(store.len() <= t.size());
    });
}

#[test]
fn interned_subst_and_matching_agree_with_owned() {
    let (f, _vars, vs) = fixture_vars();
    proptest!(cfg(), |(pat in nat_term(&f, &vs), s in nat_subst(&f, &vs))| {
        let mut store = cycleq_term::TermStore::new();
        let subj = s.apply(&pat);
        let pid = store.intern(&pat);
        let sid = store.intern(&subj);
        // The interned substitution maps the instance exactly onto the
        // interned subject.
        let id_s: cycleq_term::IdSubst =
            s.iter().map(|(v, t)| (v, store.intern(t))).collect();
        prop_assert_eq!(store.subst(pid, &id_s), sid);
        // Interned matching finds a substitution that reproduces the
        // subject, like owned matching does.
        let theta = store.match_terms(pid, sid);
        prop_assert!(theta.is_some(), "pattern must match its own instance");
        let theta = theta.unwrap();
        prop_assert_eq!(store.subst(pid, &theta), sid);
        prop_assert_eq!(theta.resolve(&store).apply(&pat), subj);
    });
}

#[test]
fn interned_canonical_key_agrees_with_equation() {
    let (f, _vars, vs) = fixture_vars();
    proptest!(cfg(), |(a in nat_term(&f, &vs), b in nat_term(&f, &vs))| {
        let mut store = cycleq_term::TermStore::new();
        let aid = store.intern(&a);
        let bid = store.intern(&b);
        let eq = cycleq_term::Equation::new(a, b);
        prop_assert_eq!(store.canonical_key(aid, bid), eq.canonical_key());
        prop_assert_eq!(store.canonical_key(bid, aid), eq.canonical_key());
    });
}

#[test]
fn interned_positions_agree_with_owned() {
    let (f, _vars, vs) = fixture_vars();
    proptest!(cfg(), |(t in nat_term(&f, &vs))| {
        let mut store = cycleq_term::TermStore::new();
        let id = store.intern(&t);
        let owned: Vec<_> = t.positions().map(|(p, s)| (p, s.clone())).collect();
        let interned = store.positions(id);
        prop_assert_eq!(owned.len(), interned.len());
        for ((p1, s1), (p2, s2)) in owned.iter().zip(&interned) {
            prop_assert_eq!(p1, p2);
            prop_assert_eq!(&store.resolve(*s2), s1);
            prop_assert_eq!(store.at(id, p1), Some(*s2));
        }
    });
}

#[test]
fn generated_terms_are_well_typed() {
    let (f, vars, vs) = fixture_vars();
    proptest!(cfg(), |(t in nat_term(&f, &vs))| {
        let mut uni = cycleq_term::TyUnifier::new(1000);
        let ty = t.infer_type(&f.sig, &vars, &mut uni).unwrap();
        prop_assert_eq!(ty, Type::data0(f.nat));
    });
}

#[test]
fn position_display_is_stable() {
    let p = Position::from_indices(vec![0, 2, 1]);
    assert_eq!(p.to_string(), "0.2.1");
    assert_eq!(Position::root().to_string(), "ε");
}

#[test]
fn encode_canonical_table_is_deterministic() {
    let f = NatList::new();
    let mut vars = VarStore::new();
    let x = vars.fresh("x", f.nat_ty());
    let t = Term::apps(f.add, vec![Term::var(x), f.num(1)]);
    let mut m1 = BTreeMap::new();
    let mut o1 = Vec::new();
    t.encode_canonical(&mut m1, &mut o1);
    let mut m2 = BTreeMap::new();
    let mut o2 = Vec::new();
    t.encode_canonical(&mut m2, &mut o2);
    assert_eq!(o1, o2);
}
