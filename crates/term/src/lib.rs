//! Terms, types, signatures, substitutions, matching and unification for the
//! CycleQ cyclic equational prover (PLDI 2022, §2).
//!
//! The formal setting is a higher-order rewriting system over simple types
//! built from a finite set of algebraic datatypes. Function symbols are
//! partitioned into *constructors* (at most first order) and *defined*
//! functions. Terms are applicative: variables, symbols, and application.
//!
//! This crate represents terms in *spine form*: a head (variable or symbol)
//! together with the vector of arguments it is applied to. Spine form makes
//! the operations the prover performs constantly — matching a rewrite rule
//! `f M0 … Mn`, locating the variable that blocks reduction, decomposing a
//! constructor equation — direct array operations instead of walks over
//! nested binary applications. The binary application view is still available
//! via [`Term::app`].
//!
//! # Example
//!
//! ```
//! use cycleq_term::{Signature, Type, Term, VarStore};
//!
//! let mut sig = Signature::new();
//! let nat = sig.add_datatype("Nat", 0).unwrap();
//! let zero = sig.add_constructor("Z", nat, vec![]).unwrap();
//! let succ = sig
//!     .add_constructor("S", nat, vec![Type::data0(nat)])
//!     .unwrap();
//!
//! let mut vars = VarStore::new();
//! let x = vars.fresh("x", Type::data0(nat));
//! let one = Term::apps(succ, vec![Term::sym(zero)]);
//! let sx = Term::apps(succ, vec![Term::var(x)]);
//! assert_eq!(sx.display(&sig, &vars).to_string(), "S x");
//! assert_eq!(one.size(), 2);
//! ```

mod equation;
mod matching;
mod position;
mod pretty;
mod signature;
mod store;
mod subst;
mod term;
mod types;
mod unify;
mod var;

pub mod fixtures;

pub use equation::{CanonKey, Equation};
pub use matching::match_term;
pub use position::{Position, Positions};
pub use pretty::{TermDisplay, TypeDisplay};
pub use signature::{DataDecl, DataId, Signature, SignatureError, SymDecl, SymId, SymKind};
pub use store::{IdSubst, TermId, TermStore};
pub use subst::Subst;
pub use term::{Head, Term};
pub use types::{TyUnifier, TyVarId, Type, TypeError, TypeScheme};
pub use unify::{unify, UnifyError};
pub use var::{VarId, VarStore};
