//! Applicative terms in spine form.
//!
//! A term `M, N ::= x | f ∈ Σ | M N` (§2) is represented as a head (variable
//! or symbol) applied to a vector of argument terms. Left-associated
//! application `((f a) b) c` is the spine `f [a, b, c]`.

use std::collections::BTreeSet;

use crate::pretty::TermDisplay;
use crate::signature::{Signature, SymId, SymKind};
use crate::types::{TyUnifier, Type, TypeError};
use crate::var::{VarId, VarStore};

/// The head of a spine-form term: a variable or a function symbol.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Head {
    /// A term variable.
    Var(VarId),
    /// A function symbol (constructor or defined).
    Sym(SymId),
}

/// A term in spine form: `head` applied to `args`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Term {
    head: Head,
    args: Vec<Term>,
}

impl Term {
    /// The bare variable `x`.
    pub fn var(v: VarId) -> Term {
        Term {
            head: Head::Var(v),
            args: Vec::new(),
        }
    }

    /// The bare symbol `f`.
    pub fn sym(s: SymId) -> Term {
        Term {
            head: Head::Sym(s),
            args: Vec::new(),
        }
    }

    /// The symbol `f` applied to `args`.
    pub fn apps(s: SymId, args: Vec<Term>) -> Term {
        Term {
            head: Head::Sym(s),
            args,
        }
    }

    /// The variable `v` applied to `args` (e.g. `f x` where `f` is a
    /// higher-order variable).
    pub fn var_apps(v: VarId, args: Vec<Term>) -> Term {
        Term {
            head: Head::Var(v),
            args,
        }
    }

    /// A term from an explicit head and arguments.
    pub fn from_parts(head: Head, args: Vec<Term>) -> Term {
        Term { head, args }
    }

    /// Binary application `M N`, flattening into the spine.
    pub fn app(mut fun: Term, arg: Term) -> Term {
        fun.args.push(arg);
        fun
    }

    /// Applies `self` to further arguments, extending the spine.
    pub fn apply_args(mut self, extra: impl IntoIterator<Item = Term>) -> Term {
        self.args.extend(extra);
        self
    }

    /// The head of the term.
    pub fn head(&self) -> Head {
        self.head
    }

    /// The arguments of the term.
    pub fn args(&self) -> &[Term] {
        &self.args
    }

    /// Mutable access to the arguments (used by in-place rewriting).
    pub fn args_mut(&mut self) -> &mut [Term] {
        &mut self.args
    }

    /// Deconstructs the term into head and arguments.
    pub fn into_parts(self) -> (Head, Vec<Term>) {
        (self.head, self.args)
    }

    /// The head symbol, if the head is a symbol.
    pub fn head_sym(&self) -> Option<SymId> {
        match self.head {
            Head::Sym(s) => Some(s),
            Head::Var(_) => None,
        }
    }

    /// The head variable, if the head is a variable.
    pub fn head_var(&self) -> Option<VarId> {
        match self.head {
            Head::Var(v) => Some(v),
            Head::Sym(_) => None,
        }
    }

    /// Whether the term is a bare variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self.head {
            Head::Var(v) if self.args.is_empty() => Some(v),
            _ => None,
        }
    }

    /// Whether the head is a constructor symbol.
    pub fn is_constructor_headed(&self, sig: &Signature) -> bool {
        matches!(self.head_sym(), Some(s) if sig.is_constructor(s))
    }

    /// Whether the head is a defined symbol.
    pub fn is_defined_headed(&self, sig: &Signature) -> bool {
        matches!(self.head_sym(), Some(s) if sig.is_defined(s))
    }

    /// The number of nodes in the term (head counts as one node per
    /// application spine).
    pub fn size(&self) -> usize {
        1 + self.args.iter().map(Term::size).sum::<usize>()
    }

    /// The maximum nesting depth.
    pub fn depth(&self) -> usize {
        1 + self.args.iter().map(Term::depth).max().unwrap_or(0)
    }

    /// Whether the term contains no variables.
    pub fn is_ground(&self) -> bool {
        self.head_var().is_none() && self.args.iter().all(Term::is_ground)
    }

    /// Collects the free variables into `acc`.
    pub fn collect_vars(&self, acc: &mut BTreeSet<VarId>) {
        if let Head::Var(v) = self.head {
            acc.insert(v);
        }
        for a in &self.args {
            a.collect_vars(acc);
        }
    }

    /// The set of free variables.
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut acc = BTreeSet::new();
        self.collect_vars(&mut acc);
        acc
    }

    /// Whether the variable occurs in the term.
    pub fn contains_var(&self, v: VarId) -> bool {
        match self.head {
            Head::Var(w) if w == v => true,
            _ => self.args.iter().any(|a| a.contains_var(v)),
        }
    }

    /// Whether the symbol occurs anywhere in the term.
    pub fn contains_sym(&self, s: SymId) -> bool {
        match self.head {
            Head::Sym(t) if t == s => true,
            _ => self.args.iter().any(|a| a.contains_sym(s)),
        }
    }

    /// Whether any defined symbol occurs in the term (patterns in rewrite
    /// rules must not contain defined symbols, §2).
    pub fn contains_defined(&self, sig: &Signature) -> bool {
        match self.head {
            Head::Sym(s) if sig.is_defined(s) => true,
            _ => self.args.iter().any(|a| a.contains_defined(sig)),
        }
    }

    /// Whether `self` is a subterm of `other` (`self ⊴ other`).
    pub fn is_subterm_of(&self, other: &Term) -> bool {
        self == other || other.args.iter().any(|a| self.is_subterm_of(a))
    }

    /// Whether `self` is a *proper* subterm of `other` (`self ◁ other`).
    pub fn is_proper_subterm_of(&self, other: &Term) -> bool {
        other.args.iter().any(|a| self.is_subterm_of(a))
    }

    /// Iterates over all subterms in preorder (the term itself first).
    pub fn subterms(&self) -> impl Iterator<Item = &Term> {
        let mut stack = vec![self];
        std::iter::from_fn(move || {
            let t = stack.pop()?;
            for a in t.args.iter().rev() {
                stack.push(a);
            }
            Some(t)
        })
    }

    /// Infers the type of the term, unifying against the expected type if
    /// provided. Polymorphic symbols are instantiated with fresh
    /// metavariables from `uni`.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the term is ill-typed with respect to the
    /// signature and the variable store.
    pub fn infer_type(
        &self,
        sig: &Signature,
        vars: &VarStore,
        uni: &mut TyUnifier,
    ) -> Result<Type, TypeError> {
        let head_ty = match self.head {
            Head::Var(v) => vars.ty(v).clone(),
            Head::Sym(s) => {
                let scheme = sig.sym(s).scheme();
                scheme.instantiate(&mut || uni.fresh())
            }
        };
        let mut cur = head_ty;
        for arg in &self.args {
            let arg_ty = arg.infer_type(sig, vars, uni)?;
            let res = Type::Var(uni.fresh());
            uni.unify(&cur, &Type::arrow(arg_ty, res.clone()))?;
            cur = res;
        }
        Ok(uni.resolve(&cur))
    }

    /// The fully-applied constructor view: `Some((k, args))` when the head is
    /// a constructor applied to exactly as many arguments as its arity.
    pub fn as_constructor<'a>(&'a self, sig: &Signature) -> Option<(SymId, &'a [Term])> {
        let s = self.head_sym()?;
        match sig.sym(s).kind() {
            SymKind::Constructor(_) if sig.constructor_arity(s) == self.args.len() => {
                Some((s, &self.args))
            }
            _ => None,
        }
    }

    /// Renders the term against a signature and variable store.
    pub fn display<'a>(&'a self, sig: &'a Signature, vars: &'a VarStore) -> TermDisplay<'a> {
        TermDisplay::new(self, sig, vars)
    }

    /// Encodes the term into a flat integer sequence under a variable
    /// renaming, used to build memoisation keys. Variables are numbered by
    /// first occurrence via `rename`.
    pub fn encode_canonical(
        &self,
        rename: &mut std::collections::BTreeMap<VarId, u32>,
        out: &mut Vec<u32>,
    ) {
        match self.head {
            Head::Var(v) => {
                let next = rename.len() as u32;
                let n = *rename.entry(v).or_insert(next);
                out.push(0);
                out.push(n);
            }
            Head::Sym(s) => {
                out.push(1);
                out.push(s.index() as u32);
            }
        }
        out.push(self.args.len() as u32);
        for a in &self.args {
            a.encode_canonical(rename, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::NatList;

    #[test]
    fn app_flattens_spine() {
        let f = NatList::new();
        let t = Term::app(
            Term::app(Term::sym(f.add), Term::sym(f.zero)),
            Term::sym(f.zero),
        );
        assert_eq!(t.head_sym(), Some(f.add));
        assert_eq!(t.args().len(), 2);
    }

    #[test]
    fn size_and_depth() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        // S (S x)
        let t = f.s(f.s(Term::var(x)));
        assert_eq!(t.size(), 3);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn vars_collects_in_order() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let t = Term::apps(f.add, vec![Term::var(y), Term::var(x)]);
        let vs: Vec<_> = t.vars().into_iter().collect();
        assert_eq!(vs, vec![x, y]);
        assert!(t.contains_var(x));
    }

    #[test]
    fn subterm_order() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let sx = f.s(Term::var(x));
        assert!(Term::var(x).is_subterm_of(&sx));
        assert!(Term::var(x).is_proper_subterm_of(&sx));
        assert!(!sx.is_proper_subterm_of(&sx));
        assert!(sx.is_subterm_of(&sx));
    }

    #[test]
    fn subterms_preorder() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let t = Term::apps(f.add, vec![Term::var(x), f.s(Term::var(y))]);
        let sizes: Vec<usize> = t.subterms().map(Term::size).collect();
        assert_eq!(sizes, vec![4, 1, 2, 1]);
    }

    #[test]
    fn infer_type_of_add() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let t = Term::apps(f.add, vec![Term::var(x), Term::sym(f.zero)]);
        let mut uni = TyUnifier::new(100);
        let ty = t.infer_type(&f.sig, &vars, &mut uni).unwrap();
        assert_eq!(ty, f.nat_ty());
    }

    #[test]
    fn infer_type_partial_application() {
        let f = NatList::new();
        let vars = VarStore::new();
        let t = Term::apps(f.add, vec![Term::sym(f.zero)]);
        let mut uni = TyUnifier::new(100);
        let ty = t.infer_type(&f.sig, &vars, &mut uni).unwrap();
        assert_eq!(ty, Type::arrow(f.nat_ty(), f.nat_ty()));
    }

    #[test]
    fn infer_type_rejects_ill_typed() {
        let f = NatList::new();
        let vars = VarStore::new();
        // add Nil is ill-typed: Nil : List a, add expects Nat.
        let t = Term::apps(f.add, vec![Term::sym(f.nil)]);
        let mut uni = TyUnifier::new(100);
        assert!(t.infer_type(&f.sig, &vars, &mut uni).is_err());
    }

    #[test]
    fn infer_type_polymorphic_cons() {
        let f = NatList::new();
        let vars = VarStore::new();
        // Cons Z Nil : List Nat
        let t = Term::apps(f.cons, vec![Term::sym(f.zero), Term::sym(f.nil)]);
        let mut uni = TyUnifier::new(100);
        let ty = t.infer_type(&f.sig, &vars, &mut uni).unwrap();
        assert_eq!(ty, f.list_ty(f.nat_ty()));
    }

    #[test]
    fn as_constructor_requires_full_application() {
        let f = NatList::new();
        let full = Term::apps(f.cons, vec![Term::sym(f.zero), Term::sym(f.nil)]);
        assert!(full.as_constructor(&f.sig).is_some());
        let partial = Term::apps(f.cons, vec![Term::sym(f.zero)]);
        assert!(partial.as_constructor(&f.sig).is_none());
        let defined = Term::apps(f.add, vec![Term::sym(f.zero), Term::sym(f.zero)]);
        assert!(defined.as_constructor(&f.sig).is_none());
    }

    #[test]
    fn encode_canonical_is_alpha_invariant() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let t1 = Term::apps(f.add, vec![Term::var(x), Term::var(x)]);
        let t2 = Term::apps(f.add, vec![Term::var(y), Term::var(y)]);
        let t3 = Term::apps(f.add, vec![Term::var(x), Term::var(y)]);
        let enc = |t: &Term| {
            let mut m = std::collections::BTreeMap::new();
            let mut out = Vec::new();
            t.encode_canonical(&mut m, &mut out);
            out
        };
        assert_eq!(enc(&t1), enc(&t2));
        assert_ne!(enc(&t1), enc(&t3));
    }
}
