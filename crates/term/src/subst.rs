//! Substitutions: partial maps from variables to terms (§2).
//!
//! Composition follows the paper's convention: `(θ1 ∘ θ0)(x) = (θ0(x))θ1`,
//! i.e. apply `θ0` first, then `θ1`.

use std::collections::BTreeMap;
use std::fmt;

use crate::term::{Head, Term};
use crate::var::VarId;

/// A substitution, a finite map from variables to terms.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Subst {
    map: BTreeMap<VarId, Term>,
}

impl Subst {
    /// The empty (identity) substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// The singleton substitution `[t/v]`.
    pub fn singleton(v: VarId, t: Term) -> Subst {
        let mut s = Subst::new();
        s.insert(v, t);
        s
    }

    /// Binds `v` to `t`, replacing any previous binding.
    pub fn insert(&mut self, v: VarId, t: Term) -> Option<Term> {
        self.map.insert(v, t)
    }

    /// The binding of `v`, if any.
    pub fn get(&self, v: VarId) -> Option<&Term> {
        self.map.get(&v)
    }

    /// Whether the substitution is the identity.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &Term)> {
        self.map.iter().map(|(v, t)| (*v, t))
    }

    /// The domain of the substitution.
    pub fn domain(&self) -> impl Iterator<Item = VarId> + '_ {
        self.map.keys().copied()
    }

    /// Applies the substitution to a term.
    ///
    /// For a variable head with arguments (`x M0 … Mn`), the binding of `x`
    /// is spliced in and the instantiated arguments are appended to its
    /// spine, preserving the applicative reading.
    pub fn apply(&self, t: &Term) -> Term {
        let new_args: Vec<Term> = t.args().iter().map(|a| self.apply(a)).collect();
        match t.head() {
            Head::Var(v) => match self.map.get(&v) {
                Some(bound) => bound.clone().apply_args(new_args),
                None => Term::from_parts(Head::Var(v), new_args),
            },
            Head::Sym(s) => Term::from_parts(Head::Sym(s), new_args),
        }
    }

    /// Composition `other ∘ self`: apply `self` first, then `other`.
    ///
    /// The result maps `x ↦ (self(x)) other` for `x` in `self`'s domain and
    /// `x ↦ other(x)` for `x` only in `other`'s domain.
    pub fn then(&self, other: &Subst) -> Subst {
        let mut map: BTreeMap<VarId, Term> =
            self.map.iter().map(|(v, t)| (*v, other.apply(t))).collect();
        for (v, t) in &other.map {
            map.entry(*v).or_insert_with(|| t.clone());
        }
        Subst { map }
    }

    /// Restricts the substitution to the given domain.
    pub fn restricted_to(&self, dom: impl IntoIterator<Item = VarId>) -> Subst {
        let keep: std::collections::BTreeSet<VarId> = dom.into_iter().collect();
        Subst {
            map: self
                .map
                .iter()
                .filter(|(v, _)| keep.contains(v))
                .map(|(v, t)| (*v, t.clone()))
                .collect(),
        }
    }

    /// Whether every binding is a bare variable (a renaming, not necessarily
    /// injective).
    pub fn is_variable_renaming(&self) -> bool {
        self.map.values().all(|t| t.as_var().is_some())
    }
}

impl FromIterator<(VarId, Term)> for Subst {
    fn from_iter<I: IntoIterator<Item = (VarId, Term)>>(iter: I) -> Subst {
        Subst {
            map: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "v{} ↦ {:?}", v.index(), t)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::NatList;
    use crate::var::VarStore;

    #[test]
    fn apply_substitutes_variables() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let t = Term::apps(f.add, vec![Term::var(x), Term::var(y)]);
        let s = Subst::singleton(x, Term::sym(f.zero));
        let r = s.apply(&t);
        assert_eq!(r, Term::apps(f.add, vec![Term::sym(f.zero), Term::var(y)]));
    }

    #[test]
    fn apply_splices_applied_variable_heads() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let g = vars.fresh("g", crate::Type::arrow(f.nat_ty(), f.nat_ty()));
        let x = vars.fresh("x", f.nat_ty());
        // g x with g ↦ add Z gives add Z x.
        let t = Term::var_apps(g, vec![Term::var(x)]);
        let s = Subst::singleton(g, Term::apps(f.add, vec![Term::sym(f.zero)]));
        let r = s.apply(&t);
        assert_eq!(r, Term::apps(f.add, vec![Term::sym(f.zero), Term::var(x)]));
    }

    #[test]
    fn composition_order_matches_paper() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        // θ0 = [y/x], θ1 = [Z/y]; (θ1 ∘ θ0)(x) = (θ0 x) θ1 = Z.
        let theta0 = Subst::singleton(x, Term::var(y));
        let theta1 = Subst::singleton(y, Term::sym(f.zero));
        let composed = theta0.then(&theta1);
        assert_eq!(composed.apply(&Term::var(x)), Term::sym(f.zero));
        assert_eq!(composed.apply(&Term::var(y)), Term::sym(f.zero));
    }

    #[test]
    fn restriction_drops_bindings() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let mut s = Subst::new();
        s.insert(x, Term::sym(f.zero));
        s.insert(y, Term::sym(f.zero));
        let r = s.restricted_to([x]);
        assert_eq!(r.len(), 1);
        assert!(r.get(y).is_none());
    }

    #[test]
    fn variable_renaming_detection() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        assert!(Subst::singleton(x, Term::var(y)).is_variable_renaming());
        assert!(!Subst::singleton(x, f.s(Term::var(y))).is_variable_renaming());
    }
}
