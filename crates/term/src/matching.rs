//! Syntactic matching: find `θ` with `pattern·θ = subject`.
//!
//! Matching is the workhorse of both reduction (matching rule left-hand
//! sides) and the `(Subst)` rule (matching lemma sides against goal
//! subterms, §5.1).
//!
//! Spine form admits a mild extension beyond first-order matching: an
//! *applied* pattern variable `x p1 … pk` matches a subject `h s1 … sm`
//! (with `m ≥ k`) by binding `x` to the subject's prefix `h s1 … s(m-k)`
//! and matching the `pi` against the trailing arguments. This is exactly
//! the fragment needed for lemmas such as `map f xs ≈ …` where `f` occurs
//! applied on the right-hand side.

use crate::subst::Subst;
use crate::term::{Head, Term};

/// Attempts to extend `subst` so that `pattern·subst = subject`.
///
/// Returns `true` on success, in which case `subst` has been extended;
/// on failure `subst` may contain partial bindings and should be discarded.
fn match_into(pattern: &Term, subject: &Term, subst: &mut Subst) -> bool {
    match pattern.head() {
        Head::Var(v) => {
            let k = pattern.args().len();
            let m = subject.args().len();
            if m < k {
                return false;
            }
            let split = m - k;
            let prefix = Term::from_parts(subject.head(), subject.args()[..split].to_vec());
            match subst.get(v) {
                Some(bound) => {
                    if bound != &prefix {
                        return false;
                    }
                }
                None => {
                    subst.insert(v, prefix);
                }
            }
            pattern
                .args()
                .iter()
                .zip(&subject.args()[split..])
                .all(|(p, s)| match_into(p, s, subst))
        }
        Head::Sym(f) => {
            if subject.head() != Head::Sym(f) || pattern.args().len() != subject.args().len() {
                return false;
            }
            pattern
                .args()
                .iter()
                .zip(subject.args())
                .all(|(p, s)| match_into(p, s, subst))
        }
    }
}

/// Matches `pattern` against `subject`, returning `θ` with
/// `pattern·θ = subject` if one exists.
///
/// # Example
///
/// ```
/// use cycleq_term::{fixtures::NatList, match_term, Term, VarStore};
///
/// let f = NatList::new();
/// let mut vars = VarStore::new();
/// let x = vars.fresh("x", f.nat_ty());
/// let pat = f.s(Term::var(x));
/// let subj = f.s(Term::sym(f.zero));
/// let theta = match_term(&pat, &subj).expect("matches");
/// assert_eq!(theta.apply(&pat), subj);
/// ```
pub fn match_term(pattern: &Term, subject: &Term) -> Option<Subst> {
    let mut subst = Subst::new();
    if match_into(pattern, subject, &mut subst) {
        Some(subst)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::NatList;
    use crate::types::Type;
    use crate::var::VarStore;

    #[test]
    fn matches_simple_pattern() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let pat = Term::apps(f.add, vec![Term::var(x), Term::var(y)]);
        let subj = Term::apps(f.add, vec![Term::sym(f.zero), f.s(Term::sym(f.zero))]);
        let theta = match_term(&pat, &subj).unwrap();
        assert_eq!(theta.apply(&pat), subj);
        assert_eq!(theta.get(x), Some(&Term::sym(f.zero)));
    }

    #[test]
    fn nonlinear_pattern_requires_equal_bindings() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let pat = Term::apps(f.add, vec![Term::var(x), Term::var(x)]);
        let same = Term::apps(f.add, vec![Term::sym(f.zero), Term::sym(f.zero)]);
        let diff = Term::apps(f.add, vec![Term::sym(f.zero), f.s(Term::sym(f.zero))]);
        assert!(match_term(&pat, &same).is_some());
        assert!(match_term(&pat, &diff).is_none());
    }

    #[test]
    fn symbol_clash_fails() {
        let f = NatList::new();
        let pat = Term::sym(f.zero);
        let subj = Term::sym(f.nil);
        assert!(match_term(&pat, &subj).is_none());
    }

    #[test]
    fn arity_mismatch_fails() {
        let f = NatList::new();
        let pat = Term::apps(f.add, vec![Term::sym(f.zero)]);
        let subj = Term::apps(f.add, vec![Term::sym(f.zero), Term::sym(f.zero)]);
        assert!(match_term(&pat, &subj).is_none());
    }

    #[test]
    fn applied_variable_matches_prefix() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let g = vars.fresh("g", Type::arrow(f.nat_ty(), f.nat_ty()));
        let x = vars.fresh("x", f.nat_ty());
        // Pattern: g x. Subject: add Z (S Z). Binds g ↦ add Z, x ↦ S Z.
        let pat = Term::var_apps(g, vec![Term::var(x)]);
        let subj = Term::apps(f.add, vec![Term::sym(f.zero), f.s(Term::sym(f.zero))]);
        let theta = match_term(&pat, &subj).unwrap();
        assert_eq!(theta.apply(&pat), subj);
        assert_eq!(
            theta.get(g),
            Some(&Term::apps(f.add, vec![Term::sym(f.zero)]))
        );
    }

    #[test]
    fn applied_variable_needs_enough_arguments() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let g = vars.fresh("g", Type::arrow(f.nat_ty(), f.nat_ty()));
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let pat = Term::var_apps(g, vec![Term::var(x), Term::var(y)]);
        let subj = f.s(Term::sym(f.zero)); // only one argument available
        assert!(match_term(&pat, &subj).is_none());
    }

    #[test]
    fn bare_variable_matches_anything() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let subj = Term::apps(f.add, vec![Term::sym(f.zero), Term::sym(f.zero)]);
        let theta = match_term(&Term::var(x), &subj).unwrap();
        assert_eq!(theta.get(x), Some(&subj));
    }
}
