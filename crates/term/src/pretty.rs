//! Pretty-printing of terms and types against a signature and variable
//! store.

use std::fmt;

use crate::signature::Signature;
use crate::term::{Head, Term};
use crate::types::Type;
use crate::var::VarStore;

/// Displays a term with symbol and variable names resolved.
///
/// Produced by [`Term::display`].
#[derive(Copy, Clone, Debug)]
pub struct TermDisplay<'a> {
    term: &'a Term,
    sig: &'a Signature,
    vars: &'a VarStore,
}

impl<'a> TermDisplay<'a> {
    pub(crate) fn new(term: &'a Term, sig: &'a Signature, vars: &'a VarStore) -> TermDisplay<'a> {
        TermDisplay { term, sig, vars }
    }
}

fn fmt_term(
    t: &Term,
    sig: &Signature,
    vars: &VarStore,
    parens: bool,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    let head_name: &str = match t.head() {
        Head::Var(v) => vars.name(v),
        Head::Sym(s) => sig.sym(s).name(),
    };
    if t.args().is_empty() {
        return write!(f, "{head_name}");
    }
    if parens {
        write!(f, "(")?;
    }
    write!(f, "{head_name}")?;
    for a in t.args() {
        write!(f, " ")?;
        fmt_term(a, sig, vars, true, f)?;
    }
    if parens {
        write!(f, ")")?;
    }
    Ok(())
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_term(self.term, self.sig, self.vars, false, f)
    }
}

/// Displays a type with datatype names resolved.
///
/// Produced by [`Type::display`].
#[derive(Copy, Clone, Debug)]
pub struct TypeDisplay<'a> {
    ty: &'a Type,
    sig: &'a Signature,
}

impl Type {
    /// Renders the type against a signature.
    pub fn display<'a>(&'a self, sig: &'a Signature) -> TypeDisplay<'a> {
        TypeDisplay { ty: self, sig }
    }
}

fn fmt_type(ty: &Type, sig: &Signature, parens: bool, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match ty {
        Type::Var(v) => write!(f, "{}", v.display_name()),
        Type::Data(d, args) => {
            if args.is_empty() {
                return write!(f, "{}", sig.data(*d).name());
            }
            if parens {
                write!(f, "(")?;
            }
            write!(f, "{}", sig.data(*d).name())?;
            for a in args {
                write!(f, " ")?;
                fmt_type(a, sig, true, f)?;
            }
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Type::Arrow(a, b) => {
            if parens {
                write!(f, "(")?;
            }
            fmt_type(
                a,
                sig,
                !matches!(a.as_ref(), Type::Var(_) | Type::Data(..)),
                f,
            )?;
            write!(f, " -> ")?;
            fmt_type(b, sig, false, f)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for TypeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_type(self.ty, self.sig, false, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::NatList;
    use crate::types::TyVarId;

    #[test]
    fn terms_print_with_minimal_parens() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let t = Term::apps(f.add, vec![f.s(Term::var(x)), Term::sym(f.zero)]);
        assert_eq!(t.display(&f.sig, &vars).to_string(), "add (S x) Z");
    }

    #[test]
    fn nullary_heads_have_no_parens() {
        let f = NatList::new();
        let vars = VarStore::new();
        assert_eq!(Term::sym(f.zero).display(&f.sig, &vars).to_string(), "Z");
    }

    #[test]
    fn types_print_arrows_right_associated() {
        let f = NatList::new();
        let ty = Type::arrows(vec![f.nat_ty(), f.nat_ty()], f.nat_ty());
        assert_eq!(ty.display(&f.sig).to_string(), "Nat -> Nat -> Nat");
    }

    #[test]
    fn function_argument_types_are_parenthesised() {
        let f = NatList::new();
        let fun = Type::arrow(f.nat_ty(), f.nat_ty());
        let ty = Type::arrow(fun, f.nat_ty());
        assert_eq!(ty.display(&f.sig).to_string(), "(Nat -> Nat) -> Nat");
    }

    #[test]
    fn applied_datatypes_print_with_arguments() {
        let f = NatList::new();
        let ty = f.list_ty(f.nat_ty());
        assert_eq!(ty.display(&f.sig).to_string(), "List Nat");
        let nested = f.list_ty(f.list_ty(Type::Var(TyVarId(0))));
        assert_eq!(nested.display(&f.sig).to_string(), "List (List a)");
    }
}
