//! Simple types over algebraic datatypes, with type variables for the
//! polymorphism supported by the CycleQ frontend (§6).
//!
//! Following §2 of the paper, types are `τ, σ ::= d ∈ D | τ → σ`; we extend
//! the grammar with type variables `a, b, …` and datatype parameters
//! (`List a`) so that polymorphic programs such as `map` can be expressed.
//! The *order* of a type is `ord(d) = 0` and
//! `ord(τ → σ) = max(ord(τ) + 1, ord(σ))`.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::signature::DataId;

/// A type variable, used both for polymorphic schemes and as a unification
/// metavariable during inference.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TyVarId(pub u32);

impl TyVarId {
    /// Renders the variable as `a`, `b`, …, `z`, `a1`, `b1`, … for display.
    pub fn display_name(self) -> String {
        let letter = (b'a' + (self.0 % 26) as u8) as char;
        let round = self.0 / 26;
        if round == 0 {
            letter.to_string()
        } else {
            format!("{letter}{round}")
        }
    }
}

/// A simple type: a type variable, a (possibly parameterised) datatype, or a
/// function type.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Type {
    /// A type variable.
    Var(TyVarId),
    /// A datatype applied to its type parameters, e.g. `List Nat`.
    Data(DataId, Vec<Type>),
    /// A function type `τ → σ`.
    Arrow(Box<Type>, Box<Type>),
}

impl Type {
    /// A nullary datatype such as `Nat`.
    pub fn data0(data: DataId) -> Type {
        Type::Data(data, Vec::new())
    }

    /// The function type `a → b`.
    pub fn arrow(a: Type, b: Type) -> Type {
        Type::Arrow(Box::new(a), Box::new(b))
    }

    /// Builds `τ0 → τ1 → … → ret` from argument types and a return type.
    pub fn arrows(args: Vec<Type>, ret: Type) -> Type {
        args.into_iter()
            .rev()
            .fold(ret, |acc, a| Type::arrow(a, acc))
    }

    /// The order of the type (§2): datatypes and type variables have order 0.
    ///
    /// Type variables are given order 0 because they can only be instantiated
    /// by datatypes in the programs we accept (constructor arguments must be
    /// at most first order).
    pub fn order(&self) -> usize {
        match self {
            Type::Var(_) | Type::Data(..) => 0,
            Type::Arrow(a, b) => (a.order() + 1).max(b.order()),
        }
    }

    /// Splits `τ0 → … → τn → ρ` into `([τ0, …, τn], ρ)` where `ρ` is not an
    /// arrow.
    pub fn uncurry(&self) -> (Vec<&Type>, &Type) {
        let mut args = Vec::new();
        let mut cur = self;
        while let Type::Arrow(a, b) = cur {
            args.push(a.as_ref());
            cur = b.as_ref();
        }
        (args, cur)
    }

    /// The number of arguments the type accepts before reaching a non-arrow
    /// result.
    pub fn arity(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Type::Arrow(_, b) = cur {
            n += 1;
            cur = b.as_ref();
        }
        n
    }

    /// The result of applying a function of this type to `n` arguments.
    ///
    /// Returns `None` if the type has fewer than `n` arrows.
    pub fn result_after(&self, n: usize) -> Option<&Type> {
        let mut cur = self;
        for _ in 0..n {
            match cur {
                Type::Arrow(_, b) => cur = b.as_ref(),
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Whether the type is a datatype (possibly applied), the only types that
    /// equations may relate and `Case` may analyse.
    pub fn as_data(&self) -> Option<(DataId, &[Type])> {
        match self {
            Type::Data(d, args) => Some((*d, args)),
            _ => None,
        }
    }

    /// Collects the type variables occurring in the type, in order of first
    /// occurrence.
    pub fn vars(&self) -> Vec<TyVarId> {
        fn go(ty: &Type, acc: &mut Vec<TyVarId>) {
            match ty {
                Type::Var(v) => {
                    if !acc.contains(v) {
                        acc.push(*v);
                    }
                }
                Type::Data(_, args) => args.iter().for_each(|a| go(a, acc)),
                Type::Arrow(a, b) => {
                    go(a, acc);
                    go(b, acc);
                }
            }
        }
        let mut acc = Vec::new();
        go(self, &mut acc);
        acc
    }

    /// Whether `v` occurs in the type.
    pub fn contains(&self, v: TyVarId) -> bool {
        match self {
            Type::Var(w) => *w == v,
            Type::Data(_, args) => args.iter().any(|a| a.contains(v)),
            Type::Arrow(a, b) => a.contains(v) || b.contains(v),
        }
    }

    /// Applies a type substitution.
    pub fn subst(&self, map: &BTreeMap<TyVarId, Type>) -> Type {
        match self {
            Type::Var(v) => map.get(v).cloned().unwrap_or(Type::Var(*v)),
            Type::Data(d, args) => Type::Data(*d, args.iter().map(|a| a.subst(map)).collect()),
            Type::Arrow(a, b) => Type::arrow(a.subst(map), b.subst(map)),
        }
    }

    /// Encodes the type into a flat integer sequence, used for memoisation
    /// keys. Distinct types have distinct encodings.
    pub fn encode(&self, out: &mut Vec<u32>) {
        match self {
            Type::Var(v) => {
                out.push(0);
                out.push(v.0);
            }
            Type::Data(d, args) => {
                out.push(1);
                out.push(d.index() as u32);
                out.push(args.len() as u32);
                args.iter().for_each(|a| a.encode(out));
            }
            Type::Arrow(a, b) => {
                out.push(2);
                a.encode(out);
                b.encode(out);
            }
        }
    }
}

/// A polymorphic type scheme `∀ a0 … a(n-1). τ` where the bound variables are
/// exactly `TyVarId(0) … TyVarId(n-1)` inside `body`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TypeScheme {
    num_vars: u32,
    body: Type,
}

impl TypeScheme {
    /// A monomorphic scheme.
    pub fn mono(body: Type) -> TypeScheme {
        TypeScheme { num_vars: 0, body }
    }

    /// A scheme quantifying over `TyVarId(0) .. TyVarId(num_vars)`.
    pub fn poly(num_vars: u32, body: Type) -> TypeScheme {
        TypeScheme { num_vars, body }
    }

    /// The number of quantified variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The scheme body. Bound variables are `TyVarId(0..self.num_vars())`.
    pub fn body(&self) -> &Type {
        &self.body
    }

    /// Instantiates the scheme with fresh metavariables drawn from `fresh`.
    pub fn instantiate(&self, fresh: &mut impl FnMut() -> TyVarId) -> Type {
        if self.num_vars == 0 {
            return self.body.clone();
        }
        let map: BTreeMap<TyVarId, Type> = (0..self.num_vars)
            .map(|i| (TyVarId(i), Type::Var(fresh())))
            .collect();
        self.body.subst(&map)
    }

    /// Instantiates the scheme with the given type arguments.
    ///
    /// # Errors
    ///
    /// Fails if the number of arguments differs from the number of
    /// quantified variables.
    pub fn instantiate_with(&self, args: &[Type]) -> Result<Type, TypeError> {
        if args.len() != self.num_vars as usize {
            return Err(TypeError::SchemeArity {
                expected: self.num_vars as usize,
                got: args.len(),
            });
        }
        let map: BTreeMap<TyVarId, Type> = args
            .iter()
            .enumerate()
            .map(|(i, a)| (TyVarId(i as u32), a.clone()))
            .collect();
        Ok(self.body.subst(&map))
    }
}

/// Errors arising from type-level operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeError {
    /// Two types could not be unified.
    Mismatch(String, String),
    /// The occurs check failed: a variable would appear inside its own
    /// solution.
    Occurs(TyVarId),
    /// A type scheme was instantiated with the wrong number of arguments.
    SchemeArity {
        /// Number of quantified variables.
        expected: usize,
        /// Number of provided type arguments.
        got: usize,
    },
    /// A term applied more arguments than its head accepts.
    TooManyArguments,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Mismatch(a, b) => write!(f, "cannot unify `{a}` with `{b}`"),
            TypeError::Occurs(v) => {
                write!(
                    f,
                    "occurs check failed for type variable {}",
                    v.display_name()
                )
            }
            TypeError::SchemeArity { expected, got } => write!(
                f,
                "type scheme expects {expected} type argument(s) but got {got}"
            ),
            TypeError::TooManyArguments => {
                write!(f, "term applies more arguments than its type accepts")
            }
        }
    }
}

impl Error for TypeError {}

/// A first-order unifier for types, used by type inference in the frontend
/// and by the proof checker when validating equations.
///
/// Variables with ids below the construction-time `floor` are *rigid*
/// (program type variables); ids at or above it are inference
/// metavariables. When a rigid variable meets a metavariable, the
/// metavariable is the one eliminated, so rigid variables survive
/// unification whenever possible.
#[derive(Clone, Debug, Default)]
pub struct TyUnifier {
    map: BTreeMap<TyVarId, Type>,
    floor: u32,
    next: u32,
}

impl TyUnifier {
    /// Creates a unifier whose fresh (meta)variables start at `floor`.
    pub fn new(floor: u32) -> TyUnifier {
        TyUnifier {
            map: BTreeMap::new(),
            floor,
            next: floor,
        }
    }

    /// Allocates a fresh metavariable.
    pub fn fresh(&mut self) -> TyVarId {
        let v = TyVarId(self.next);
        self.next += 1;
        v
    }

    /// Resolves a type to its current solved form.
    pub fn resolve(&self, ty: &Type) -> Type {
        match ty {
            Type::Var(v) => match self.map.get(v) {
                Some(t) => self.resolve(&t.clone()),
                None => Type::Var(*v),
            },
            Type::Data(d, args) => Type::Data(*d, args.iter().map(|a| self.resolve(a)).collect()),
            Type::Arrow(a, b) => Type::arrow(self.resolve(a), self.resolve(b)),
        }
    }

    /// Unifies two types, extending the current solution.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::Mismatch`] for a constructor clash and
    /// [`TypeError::Occurs`] when the occurs check fails.
    pub fn unify(&mut self, a: &Type, b: &Type) -> Result<(), TypeError> {
        let a = self.resolve(a);
        let b = self.resolve(b);
        match (&a, &b) {
            (Type::Var(v), Type::Var(w)) if v == w => Ok(()),
            (Type::Var(v), Type::Var(w)) => {
                // Prefer eliminating the metavariable.
                if v.0 >= self.floor || w.0 < self.floor {
                    self.map.insert(*v, b);
                } else {
                    self.map.insert(*w, a);
                }
                Ok(())
            }
            (Type::Var(v), _) => {
                if b.contains(*v) {
                    return Err(TypeError::Occurs(*v));
                }
                self.map.insert(*v, b);
                Ok(())
            }
            (_, Type::Var(w)) => {
                if a.contains(*w) {
                    return Err(TypeError::Occurs(*w));
                }
                self.map.insert(*w, a);
                Ok(())
            }
            (Type::Data(d1, args1), Type::Data(d2, args2)) => {
                if d1 != d2 || args1.len() != args2.len() {
                    return Err(TypeError::Mismatch(format!("{a:?}"), format!("{b:?}")));
                }
                for (x, y) in args1.iter().zip(args2) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (Type::Arrow(a1, b1), Type::Arrow(a2, b2)) => {
                self.unify(a1, a2)?;
                self.unify(b1, b2)
            }
            _ => Err(TypeError::Mismatch(format!("{a:?}"), format!("{b:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: usize) -> DataId {
        DataId::from_index(i)
    }

    #[test]
    fn order_of_base_types_is_zero() {
        assert_eq!(Type::data0(d(0)).order(), 0);
        assert_eq!(Type::Var(TyVarId(0)).order(), 0);
    }

    #[test]
    fn order_of_first_order_function() {
        let nat = Type::data0(d(0));
        let f = Type::arrow(nat.clone(), Type::arrow(nat.clone(), nat.clone()));
        assert_eq!(f.order(), 1);
    }

    #[test]
    fn order_of_second_order_function() {
        let nat = Type::data0(d(0));
        let f = Type::arrow(nat.clone(), nat.clone());
        let hof = Type::arrow(f, nat);
        assert_eq!(hof.order(), 2);
    }

    #[test]
    fn arrows_uncurry_round_trip() {
        let nat = Type::data0(d(0));
        let list = Type::Data(d(1), vec![Type::Var(TyVarId(0))]);
        let ty = Type::arrows(vec![nat.clone(), list.clone()], nat.clone());
        let (args, ret) = ty.uncurry();
        assert_eq!(args, vec![&nat, &list]);
        assert_eq!(ret, &nat);
        assert_eq!(ty.arity(), 2);
    }

    #[test]
    fn result_after_peels_arrows() {
        let nat = Type::data0(d(0));
        let ty = Type::arrows(vec![nat.clone(), nat.clone()], nat.clone());
        assert_eq!(ty.result_after(0), Some(&ty));
        assert_eq!(ty.result_after(2), Some(&nat));
        assert_eq!(ty.result_after(3), None);
    }

    #[test]
    fn scheme_instantiate_with_checks_arity() {
        let body = Type::arrow(Type::Var(TyVarId(0)), Type::Var(TyVarId(0)));
        let scheme = TypeScheme::poly(1, body);
        assert!(scheme.instantiate_with(&[]).is_err());
        let nat = Type::data0(d(0));
        let inst = scheme.instantiate_with(std::slice::from_ref(&nat)).unwrap();
        assert_eq!(inst, Type::arrow(nat.clone(), nat));
    }

    #[test]
    fn unify_binds_variables() {
        let mut u = TyUnifier::new(10);
        let a = Type::Var(TyVarId(0));
        let nat = Type::data0(d(0));
        u.unify(&a, &nat).unwrap();
        assert_eq!(u.resolve(&a), nat);
    }

    #[test]
    fn unify_occurs_check() {
        let mut u = TyUnifier::new(10);
        let a = Type::Var(TyVarId(0));
        let arrow = Type::arrow(a.clone(), Type::data0(d(0)));
        assert_eq!(u.unify(&a, &arrow), Err(TypeError::Occurs(TyVarId(0))));
    }

    #[test]
    fn unify_mismatched_datatypes_fails() {
        let mut u = TyUnifier::new(0);
        assert!(u.unify(&Type::data0(d(0)), &Type::data0(d(1))).is_err());
    }

    #[test]
    fn unify_through_chains() {
        let mut u = TyUnifier::new(10);
        let a = Type::Var(TyVarId(0));
        let b = Type::Var(TyVarId(1));
        u.unify(&a, &b).unwrap();
        u.unify(&b, &Type::data0(d(2))).unwrap();
        assert_eq!(u.resolve(&a), Type::data0(d(2)));
    }

    #[test]
    fn encode_is_injective_on_samples() {
        let nat = Type::data0(d(0));
        let list_nat = Type::Data(d(1), vec![nat.clone()]);
        let tys = [
            nat.clone(),
            list_nat.clone(),
            Type::arrow(nat.clone(), nat.clone()),
            Type::arrow(nat.clone(), list_nat.clone()),
            Type::Var(TyVarId(0)),
        ];
        let mut seen = std::collections::HashSet::new();
        for t in &tys {
            let mut enc = Vec::new();
            t.encode(&mut enc);
            assert!(seen.insert(enc), "duplicate encoding for {t:?}");
        }
    }

    #[test]
    fn tyvar_display_names() {
        assert_eq!(TyVarId(0).display_name(), "a");
        assert_eq!(TyVarId(25).display_name(), "z");
        assert_eq!(TyVarId(26).display_name(), "a1");
    }
}
