//! Equations: *unordered* pairs of terms of a common datatype (§2).
//!
//! Equations are written `M ≈ N` and are interchangeable with `N ≈ M`
//! (symmetry is built into the representation rather than being an inference
//! rule, Remark 3.1). [`Equation::canonical_key`] produces an
//! α-invariant, orientation-invariant fingerprint used for memoisation and
//! lemma deduplication during proof search.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::signature::Signature;
use crate::subst::Subst;
use crate::term::Term;
use crate::var::{VarId, VarStore};

/// An unordered equation between two terms.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Equation {
    lhs: Term,
    rhs: Term,
}

/// An α- and orientation-invariant fingerprint of an equation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CanonKey(Vec<u32>);

impl CanonKey {
    /// Builds a key from an already-canonical word sequence (used by the
    /// interned-term encoder in [`crate::TermStore`]).
    pub(crate) fn from_words(words: Vec<u32>) -> CanonKey {
        CanonKey(words)
    }
}

impl Equation {
    /// Creates the equation `lhs ≈ rhs`.
    pub fn new(lhs: Term, rhs: Term) -> Equation {
        Equation { lhs, rhs }
    }

    /// The left-hand side (of the stored orientation; equations are
    /// semantically unordered).
    pub fn lhs(&self) -> &Term {
        &self.lhs
    }

    /// The right-hand side.
    pub fn rhs(&self) -> &Term {
        &self.rhs
    }

    /// Both sides, in stored order.
    pub fn sides(&self) -> [&Term; 2] {
        [&self.lhs, &self.rhs]
    }

    /// The same equation with the stored orientation flipped.
    pub fn flipped(&self) -> Equation {
        Equation {
            lhs: self.rhs.clone(),
            rhs: self.lhs.clone(),
        }
    }

    /// Whether both sides are syntactically identical (dischargeable by
    /// `(Refl)`).
    pub fn is_trivial(&self) -> bool {
        self.lhs == self.rhs
    }

    /// The free variables of the equation — its type environment `Γ`, with
    /// types recovered from the proof's [`VarStore`].
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut acc = BTreeSet::new();
        self.lhs.collect_vars(&mut acc);
        self.rhs.collect_vars(&mut acc);
        acc
    }

    /// Applies a substitution to both sides.
    pub fn subst(&self, theta: &Subst) -> Equation {
        Equation {
            lhs: theta.apply(&self.lhs),
            rhs: theta.apply(&self.rhs),
        }
    }

    /// The total size of both sides.
    pub fn size(&self) -> usize {
        self.lhs.size() + self.rhs.size()
    }

    /// An α-invariant, orientation-invariant key: the lexicographically
    /// smaller of the canonical encodings of `(lhs, rhs)` and `(rhs, lhs)`.
    pub fn canonical_key(&self) -> CanonKey {
        fn encode(a: &Term, b: &Term) -> Vec<u32> {
            let mut rename = BTreeMap::new();
            let mut out = Vec::new();
            a.encode_canonical(&mut rename, &mut out);
            out.push(u32::MAX); // separator
            b.encode_canonical(&mut rename, &mut out);
            out
        }
        let fwd = encode(&self.lhs, &self.rhs);
        let bwd = encode(&self.rhs, &self.lhs);
        CanonKey(fwd.min(bwd))
    }

    /// Renders the equation against a signature and variable store.
    pub fn display<'a>(&'a self, sig: &'a Signature, vars: &'a VarStore) -> EquationDisplay<'a> {
        EquationDisplay {
            eq: self,
            sig,
            vars,
        }
    }
}

/// Displays an equation with names resolved; produced by
/// [`Equation::display`].
#[derive(Copy, Clone, Debug)]
pub struct EquationDisplay<'a> {
    eq: &'a Equation,
    sig: &'a Signature,
    vars: &'a VarStore,
}

impl fmt::Display for EquationDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ≈ {}",
            self.eq.lhs.display(self.sig, self.vars),
            self.eq.rhs.display(self.sig, self.vars)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::NatList;

    #[test]
    fn canonical_key_is_orientation_invariant() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let e1 = Equation::new(
            Term::apps(f.add, vec![Term::var(x), Term::var(y)]),
            Term::apps(f.add, vec![Term::var(y), Term::var(x)]),
        );
        assert_eq!(e1.canonical_key(), e1.flipped().canonical_key());
    }

    #[test]
    fn canonical_key_is_alpha_invariant() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let e1 = Equation::new(Term::var(x), f.s(Term::var(x)));
        let e2 = Equation::new(Term::var(y), f.s(Term::var(y)));
        let e3 = Equation::new(Term::var(x), f.s(Term::var(y)));
        assert_eq!(e1.canonical_key(), e2.canonical_key());
        assert_ne!(e1.canonical_key(), e3.canonical_key());
    }

    #[test]
    fn distinct_equations_have_distinct_keys() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let e1 = Equation::new(Term::var(x), Term::sym(f.zero));
        let e2 = Equation::new(Term::var(x), f.s(Term::sym(f.zero)));
        assert_ne!(e1.canonical_key(), e2.canonical_key());
    }

    #[test]
    fn trivial_detection() {
        let f = NatList::new();
        let t = Term::sym(f.zero);
        assert!(Equation::new(t.clone(), t.clone()).is_trivial());
        assert!(!Equation::new(t.clone(), f.s(t)).is_trivial());
    }

    #[test]
    fn vars_unions_both_sides() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let e = Equation::new(Term::var(x), Term::var(y));
        assert_eq!(e.vars().len(), 2);
    }

    #[test]
    fn display_uses_unordered_symbol() {
        let f = NatList::new();
        let vars = VarStore::new();
        let e = Equation::new(Term::sym(f.zero), Term::sym(f.zero));
        assert_eq!(e.display(&f.sig, &vars).to_string(), "Z ≈ Z");
    }
}
