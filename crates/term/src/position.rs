//! Positions: paths into spine-form terms, serving as the one-hole contexts
//! `C[·]` of §2.
//!
//! A position is a sequence of argument indices. The empty position is the
//! trivial context `·`; composition of contexts is concatenation of
//! positions (Lemma 2.2's partial order `⊑` is the prefix order).

use std::fmt;

use crate::term::Term;

/// A path into a term: the sequence of argument indices from the root.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Position(Vec<u32>);

impl Position {
    /// The root position (the trivial context `·`).
    pub fn root() -> Position {
        Position(Vec::new())
    }

    /// A position from explicit indices.
    pub fn from_indices(ix: Vec<u32>) -> Position {
        Position(ix)
    }

    /// The indices of the path.
    pub fn indices(&self) -> &[u32] {
        &self.0
    }

    /// Whether this is the root position.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// The depth of the position.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the position is empty (root).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Extends the position by one step.
    pub fn child(&self, i: u32) -> Position {
        let mut v = self.0.clone();
        v.push(i);
        Position(v)
    }

    /// Context composition `C ∘ D`: the position of `D`'s hole inside
    /// `C[D[·]]` is `C.join(D)`.
    pub fn join(&self, other: &Position) -> Position {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        Position(v)
    }

    /// Whether `self` is a prefix of `other` (`self ⊑ other` on contexts).
    pub fn is_prefix_of(&self, other: &Position) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Whether the two positions are disjoint (neither is a prefix of the
    /// other); disjoint positions address non-overlapping subterms.
    pub fn is_disjoint_from(&self, other: &Position) -> bool {
        !self.is_prefix_of(other) && !other.is_prefix_of(self)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "ε");
        }
        let parts: Vec<String> = self.0.iter().map(|i| i.to_string()).collect();
        write!(f, "{}", parts.join("."))
    }
}

impl Term {
    /// The subterm at `pos`, or `None` if the position is invalid.
    pub fn at(&self, pos: &Position) -> Option<&Term> {
        let mut cur = self;
        for &i in pos.indices() {
            cur = cur.args().get(i as usize)?;
        }
        Some(cur)
    }

    /// Replaces the subterm at `pos` with `new`, returning the new term
    /// (`C[new]` where `C` is the context at `pos`).
    ///
    /// Returns `None` if the position is invalid. Only the siblings along
    /// the path are cloned; the replaced subtree is never copied.
    pub fn replace_at(&self, pos: &Position, new: Term) -> Option<Term> {
        fn go(t: &Term, path: &[u32], new: Term) -> Option<Term> {
            match path.split_first() {
                None => Some(new),
                Some((&i, rest)) => {
                    let i = i as usize;
                    let child = go(t.args().get(i)?, rest, new)?;
                    let mut args = Vec::with_capacity(t.args().len());
                    args.extend(t.args()[..i].iter().cloned());
                    args.push(child);
                    args.extend(t.args()[i + 1..].iter().cloned());
                    Some(Term::from_parts(t.head(), args))
                }
            }
        }
        go(self, pos.indices(), new)
    }

    /// Iterates over all `(position, subterm)` pairs in preorder.
    pub fn positions(&self) -> Positions<'_> {
        Positions {
            stack: vec![(Position::root(), self)],
        }
    }
}

/// Iterator over the positions of a term, produced by [`Term::positions`].
#[derive(Debug)]
pub struct Positions<'a> {
    stack: Vec<(Position, &'a Term)>,
}

impl<'a> Iterator for Positions<'a> {
    type Item = (Position, &'a Term);

    fn next(&mut self) -> Option<Self::Item> {
        let (pos, t) = self.stack.pop()?;
        for (i, a) in t.args().iter().enumerate().rev() {
            self.stack.push((pos.child(i as u32), a));
        }
        Some((pos, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::NatList;
    use crate::var::VarStore;

    #[test]
    fn at_and_replace_round_trip() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let t = Term::apps(f.add, vec![f.s(Term::var(x)), Term::sym(f.zero)]);
        let p = Position::from_indices(vec![0, 0]);
        assert_eq!(t.at(&p), Some(&Term::var(x)));
        let t2 = t.replace_at(&p, Term::sym(f.zero)).unwrap();
        assert_eq!(t2.at(&p), Some(&Term::sym(f.zero)));
        // The original is unchanged (persistent update).
        assert_eq!(t.at(&p), Some(&Term::var(x)));
    }

    #[test]
    fn invalid_positions_return_none() {
        let f = NatList::new();
        let t = Term::sym(f.zero);
        assert!(t.at(&Position::from_indices(vec![0])).is_none());
        assert!(t
            .replace_at(&Position::from_indices(vec![1]), t.clone())
            .is_none());
    }

    #[test]
    fn positions_enumerates_preorder() {
        let f = NatList::new();
        let t = Term::apps(f.add, vec![Term::sym(f.zero), f.s(Term::sym(f.zero))]);
        let ps: Vec<String> = t.positions().map(|(p, _)| p.to_string()).collect();
        assert_eq!(ps, vec!["ε", "0", "1", "1.0"]);
        assert_eq!(t.positions().count(), t.size());
    }

    #[test]
    fn prefix_and_disjoint() {
        let p = Position::from_indices(vec![0]);
        let q = Position::from_indices(vec![0, 1]);
        let r = Position::from_indices(vec![1]);
        assert!(p.is_prefix_of(&q));
        assert!(!q.is_prefix_of(&p));
        assert!(p.is_prefix_of(&p));
        assert!(q.is_disjoint_from(&r));
        assert!(!p.is_disjoint_from(&q));
    }

    #[test]
    fn join_is_context_composition() {
        let f = NatList::new();
        let t = Term::apps(f.add, vec![f.s(f.s(Term::sym(f.zero))), Term::sym(f.zero)]);
        let c = Position::from_indices(vec![0]);
        let d = Position::from_indices(vec![0]);
        let cd = c.join(&d);
        assert_eq!(t.at(&cd), Some(&f.s(Term::sym(f.zero))));
    }

    #[test]
    fn root_replace_returns_new_term() {
        let f = NatList::new();
        let t = Term::sym(f.zero);
        let u = f.s(Term::sym(f.zero));
        assert_eq!(t.replace_at(&Position::root(), u.clone()), Some(u));
    }
}
