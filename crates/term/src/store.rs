//! Hash-consed terms: a [`TermStore`] interner mapping each `(head, args)`
//! node to a compact [`TermId`].
//!
//! The prover performs the same handful of term operations millions of times
//! per goal — equality, substitution, matching, normalisation. On the
//! deep-owning [`Term`] representation every one of them walks (and usually
//! clones) the full spine. Interning gives:
//!
//! - O(1) structural equality and hashing (`TermId` is a `u32`);
//! - maximal sharing: a subterm appearing in many goals is stored once;
//! - per-node cached metadata (size, depth, groundness) computed exactly
//!   once per distinct term;
//! - a stable identity to memoise derived facts against — most importantly
//!   reduction normal forms (see `cycleq_rewrite`'s memoised rewriter).
//!
//! The owned [`Term`] API remains the boundary representation: the frontend
//! lowers to owned terms, pretty-printing and the independent proof checker
//! consume owned terms, and [`TermStore::intern`]/[`TermStore::resolve`]
//! convert at the edges. Ids are only meaningful relative to the store that
//! produced them; stores grow monotonically, so ids are never invalidated.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::equation::CanonKey;
use crate::position::Position;
use crate::signature::{Signature, SymId};
use crate::term::{Head, Term};
use crate::var::VarId;

/// Identifies an interned term within a [`TermStore`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TermId(u32);

impl TermId {
    /// The raw index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One hash-consed node with its cached metadata.
#[derive(Clone, Debug)]
struct NodeData {
    head: Head,
    args: Box<[TermId]>,
    /// Number of nodes in the term.
    size: u32,
    /// Maximum nesting depth.
    depth: u32,
    /// Whether the term contains no variables.
    ground: bool,
    /// The free variables, sorted ascending (computed once per node).
    vars: Box<[VarId]>,
}

/// A hash-consing interner for spine-form terms.
///
/// Every distinct `(head, args)` pair is stored exactly once; interning the
/// same term twice returns the same [`TermId`], so id equality coincides
/// with structural equality.
#[derive(Clone, Debug, Default)]
pub struct TermStore {
    nodes: Vec<NodeData>,
    table: HashMap<(Head, Box<[TermId]>), TermId>,
}

impl TermStore {
    /// An empty store.
    pub fn new() -> TermStore {
        TermStore::default()
    }

    /// The number of distinct nodes interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interns the node `head args…`, reusing an existing id when the same
    /// node was interned before.
    ///
    /// The hit path (by far the common case in a warmed-up prover) does not
    /// allocate: the lookup key is the moved-in arguments themselves.
    pub fn node(&mut self, head: Head, args: Vec<TermId>) -> TermId {
        let key = (head, args.into_boxed_slice());
        if let Some(&id) = self.table.get(&key) {
            return id;
        }
        let args = key.1.clone();
        let mut size: u32 = 1;
        let mut depth: u32 = 0;
        let mut vars: Vec<VarId> = match head {
            Head::Var(v) => vec![v],
            Head::Sym(_) => Vec::new(),
        };
        for &a in args.iter() {
            let n = &self.nodes[a.index()];
            size += n.size;
            depth = depth.max(n.depth);
            vars.extend_from_slice(&n.vars);
        }
        vars.sort_unstable();
        vars.dedup();
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            head,
            args,
            size,
            depth: depth + 1,
            ground: vars.is_empty(),
            vars: vars.into_boxed_slice(),
        });
        self.table.insert(key, id);
        id
    }

    /// Interns the bare variable `v`.
    pub fn var(&mut self, v: VarId) -> TermId {
        self.node(Head::Var(v), Vec::new())
    }

    /// Interns the bare symbol `s`.
    pub fn sym(&mut self, s: SymId) -> TermId {
        self.node(Head::Sym(s), Vec::new())
    }

    /// Interns an owned term (and all of its subterms).
    ///
    /// Iterative (explicit stack), so arbitrarily deep terms — e.g. large
    /// numeral towers produced by reduction — cannot overflow the call
    /// stack at the conversion boundary.
    pub fn intern(&mut self, t: &Term) -> TermId {
        struct Frame<'t> {
            t: &'t Term,
            args: Vec<TermId>,
        }
        let mut stack = vec![Frame {
            t,
            args: Vec::with_capacity(t.args().len()),
        }];
        loop {
            let top = stack.last_mut().expect("stack starts non-empty");
            if top.args.len() == top.t.args().len() {
                let f = stack.pop().expect("just observed");
                let id = self.node(f.t.head(), f.args);
                match stack.last_mut() {
                    Some(parent) => parent.args.push(id),
                    None => return id,
                }
            } else {
                let next = &top.t.args()[top.args.len()];
                stack.push(Frame {
                    t: next,
                    args: Vec::with_capacity(next.args().len()),
                });
            }
        }
    }

    /// Reconstructs the owned term for an id (iterative, like
    /// [`TermStore::intern`]).
    pub fn resolve(&self, id: TermId) -> Term {
        struct Frame {
            id: TermId,
            args: Vec<Term>,
        }
        let mut stack = vec![Frame {
            id,
            args: Vec::with_capacity(self.args(id).len()),
        }];
        loop {
            let top = stack.last_mut().expect("stack starts non-empty");
            let node_args = &self.nodes[top.id.index()].args;
            if top.args.len() == node_args.len() {
                let f = stack.pop().expect("just observed");
                let t = Term::from_parts(self.head(f.id), f.args);
                match stack.last_mut() {
                    Some(parent) => parent.args.push(t),
                    None => return t,
                }
            } else {
                let next = node_args[top.args.len()];
                stack.push(Frame {
                    id: next,
                    args: Vec::with_capacity(self.args(next).len()),
                });
            }
        }
    }

    /// The head of the node.
    pub fn head(&self, id: TermId) -> Head {
        self.nodes[id.index()].head
    }

    /// The argument ids of the node.
    pub fn args(&self, id: TermId) -> &[TermId] {
        &self.nodes[id.index()].args
    }

    /// The head symbol, if the head is a symbol.
    pub fn head_sym(&self, id: TermId) -> Option<SymId> {
        match self.head(id) {
            Head::Sym(s) => Some(s),
            Head::Var(_) => None,
        }
    }

    /// Whether the node is a bare variable, and which.
    pub fn as_var(&self, id: TermId) -> Option<VarId> {
        let n = &self.nodes[id.index()];
        match n.head {
            Head::Var(v) if n.args.is_empty() => Some(v),
            _ => None,
        }
    }

    /// The cached node count of the term.
    pub fn size(&self, id: TermId) -> usize {
        self.nodes[id.index()].size as usize
    }

    /// The cached maximum nesting depth.
    pub fn depth(&self, id: TermId) -> usize {
        self.nodes[id.index()].depth as usize
    }

    /// The cached ground flag (no variables anywhere in the term).
    pub fn is_ground(&self, id: TermId) -> bool {
        self.nodes[id.index()].ground
    }

    /// Whether the head is a defined symbol of `sig`.
    pub fn is_defined_headed(&self, id: TermId, sig: &Signature) -> bool {
        matches!(self.head_sym(id), Some(s) if sig.is_defined(s))
    }

    /// The fully-applied constructor view: `Some((k, args))` when the head is
    /// a constructor applied to exactly as many arguments as its arity — the
    /// id-level counterpart of [`Term::as_constructor`].
    pub fn as_constructor(&self, id: TermId, sig: &Signature) -> Option<(SymId, &[TermId])> {
        let s = self.head_sym(id)?;
        if sig.is_constructor(s) && sig.constructor_arity(s) == self.args(id).len() {
            Some((s, self.args(id)))
        } else {
            None
        }
    }

    /// The free variables of the term, sorted ascending (cached — computed
    /// once when the node was interned).
    pub fn vars(&self, id: TermId) -> &[VarId] {
        &self.nodes[id.index()].vars
    }

    /// Collects the free variables of the term into `acc` (from the cached
    /// per-node set — no traversal).
    pub fn collect_vars(&self, id: TermId, acc: &mut BTreeSet<VarId>) {
        acc.extend(self.nodes[id.index()].vars.iter().copied());
    }

    /// Whether the variable occurs in the term (binary search over the
    /// cached sorted variable set).
    pub fn contains_var(&self, id: TermId, v: VarId) -> bool {
        self.nodes[id.index()].vars.binary_search(&v).is_ok()
    }

    /// Whether every free variable of `sub` also occurs in `sup` — a
    /// two-pointer merge over the cached sorted sets, no allocation.
    pub fn vars_subset_of(&self, sub: TermId, sup: TermId) -> bool {
        let a = &self.nodes[sub.index()].vars;
        let b = &self.nodes[sup.index()].vars;
        let mut j = 0;
        'outer: for v in a.iter() {
            while j < b.len() {
                match b[j].cmp(v) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Extends the spine of `id` with further argument ids.
    pub fn apply_args(&mut self, id: TermId, extra: &[TermId]) -> TermId {
        if extra.is_empty() {
            return id;
        }
        let n = &self.nodes[id.index()];
        let head = n.head;
        let mut args: Vec<TermId> = n.args.to_vec();
        args.extend_from_slice(extra);
        self.node(head, args)
    }

    /// All `(position, subterm)` pairs in preorder (the term itself first).
    ///
    /// Positions address the *tree* reading of the term: shared ids appear
    /// once per occurrence, exactly like [`Term::positions`].
    pub fn positions(&self, id: TermId) -> Vec<(Position, TermId)> {
        let mut out = Vec::with_capacity(self.size(id));
        let mut stack = vec![(Position::root(), id)];
        while let Some((pos, t)) = stack.pop() {
            let n = &self.nodes[t.index()];
            for (i, &a) in n.args.iter().enumerate().rev() {
                stack.push((pos.child(i as u32), a));
            }
            out.push((pos, t));
        }
        out
    }

    /// The subterm at a position, if the position is valid.
    pub fn at(&self, id: TermId, pos: &Position) -> Option<TermId> {
        let mut cur = id;
        for &i in pos.indices() {
            cur = *self.nodes[cur.index()].args.get(i as usize)?;
        }
        Some(cur)
    }

    /// Replaces the subterm at a position, rebuilding (and re-interning)
    /// only the spine above it.
    pub fn replace_at(
        &mut self,
        id: TermId,
        pos: &Position,
        replacement: TermId,
    ) -> Option<TermId> {
        self.replace_rec(id, pos.indices(), replacement)
    }

    fn replace_rec(&mut self, id: TermId, path: &[u32], replacement: TermId) -> Option<TermId> {
        match path.split_first() {
            None => Some(replacement),
            Some((&i, rest)) => {
                let n = &self.nodes[id.index()];
                let head = n.head;
                let mut args: Vec<TermId> = n.args.to_vec();
                let slot = args.get_mut(i as usize)?;
                *slot = self.replace_rec(*slot, rest, replacement)?;
                Some(self.node(head, args))
            }
        }
    }

    /// Applies a variable→id substitution, sharing work across repeated
    /// subterms via a per-call memo (the result of substituting a given
    /// node is computed once even when the node occurs many times).
    pub fn subst(&mut self, id: TermId, theta: &IdSubst) -> TermId {
        if theta.is_empty() {
            return id;
        }
        let mut memo = HashMap::new();
        self.subst_memo(id, theta, &mut memo)
    }

    fn subst_memo(
        &mut self,
        id: TermId,
        theta: &IdSubst,
        memo: &mut HashMap<TermId, TermId>,
    ) -> TermId {
        if self.is_ground(id) {
            return id;
        }
        if let Some(&done) = memo.get(&id) {
            return done;
        }
        let n = &self.nodes[id.index()];
        let head = n.head;
        let args: Vec<TermId> = n.args.to_vec();
        let new_args: Vec<TermId> = args
            .iter()
            .map(|&a| self.subst_memo(a, theta, memo))
            .collect();
        let out = match head {
            Head::Var(v) => match theta.get(v) {
                // Splice the binding's spine, appending the instantiated
                // arguments (the applicative reading, as in `Subst::apply`).
                Some(bound) => self.apply_args(bound, &new_args),
                None => self.node(head, new_args),
            },
            Head::Sym(_) => self.node(head, new_args),
        };
        memo.insert(id, out);
        out
    }

    /// Matches `pattern` against `subject` at the id level, returning `θ`
    /// with `pattern·θ = subject` if one exists. Mirrors
    /// [`crate::match_term`], including the applied-pattern-variable prefix
    /// extension.
    pub fn match_terms(&mut self, pattern: TermId, subject: TermId) -> Option<IdSubst> {
        let mut theta = IdSubst::new();
        if self.match_into(pattern, subject, &mut theta) {
            Some(theta)
        } else {
            None
        }
    }

    fn match_into(&mut self, pattern: TermId, subject: TermId, theta: &mut IdSubst) -> bool {
        // Ground patterns match exactly themselves: id equality decides.
        if self.is_ground(pattern) {
            return pattern == subject;
        }
        let (phead, pargs_len) = {
            let n = &self.nodes[pattern.index()];
            (n.head, n.args.len())
        };
        match phead {
            Head::Var(v) => {
                let m = self.args(subject).len();
                if m < pargs_len {
                    return false;
                }
                let split = m - pargs_len;
                let prefix = if split == self.args(subject).len() {
                    subject
                } else {
                    let shead = self.head(subject);
                    let pre: Vec<TermId> = self.args(subject)[..split].to_vec();
                    self.node(shead, pre)
                };
                match theta.get(v) {
                    Some(bound) if bound != prefix => return false,
                    Some(_) => {}
                    None => theta.insert(v, prefix),
                }
                for k in 0..pargs_len {
                    let p = self.args(pattern)[k];
                    let s = self.args(subject)[split + k];
                    if !self.match_into(p, s, theta) {
                        return false;
                    }
                }
                true
            }
            Head::Sym(_) => {
                if self.head(subject) != phead || self.args(subject).len() != pargs_len {
                    return false;
                }
                for k in 0..pargs_len {
                    let p = self.args(pattern)[k];
                    let s = self.args(subject)[k];
                    if !self.match_into(p, s, theta) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Encodes the term into the flat canonical integer sequence used for
    /// α-invariant keys; identical to [`Term::encode_canonical`].
    pub fn encode_canonical(
        &self,
        id: TermId,
        rename: &mut BTreeMap<VarId, u32>,
        out: &mut Vec<u32>,
    ) {
        let n = &self.nodes[id.index()];
        match n.head {
            Head::Var(v) => {
                let next = rename.len() as u32;
                let nn = *rename.entry(v).or_insert(next);
                out.push(0);
                out.push(nn);
            }
            Head::Sym(s) => {
                out.push(1);
                out.push(s.index() as u32);
            }
        }
        out.push(n.args.len() as u32);
        for &a in n.args.iter() {
            self.encode_canonical(a, rename, out);
        }
    }

    /// The canonical flat encoding of a single term, with the caller's
    /// variable rename map threaded through so that several terms can be
    /// encoded against a *shared* renaming (the shared normal-form cache
    /// encodes a subject and its normal form this way: the normal form's
    /// variables are a subset of the subject's, so both encodings use the
    /// subject's first-occurrence numbering).
    ///
    /// Two terms produce the same words for the same rename-map state iff
    /// they are α-equivalent (modulo variable types, which reduction never
    /// consults) — this is what makes the encoding usable as a
    /// store-independent cache key.
    pub fn canonical_words(&self, id: TermId, rename: &mut BTreeMap<VarId, u32>) -> Vec<u32> {
        let mut out = Vec::with_capacity(3 * self.size(id));
        self.encode_canonical(id, rename, &mut out);
        out
    }

    /// Decodes a flat encoding produced by [`TermStore::canonical_words`]
    /// back into *this* store, mapping variable codes through `inverse`
    /// (`inverse[code]` is the local [`VarId`] for canonical code `code`).
    ///
    /// Returns `None` when the words are malformed or reference a variable
    /// code outside `inverse` — callers treat that as a cache miss rather
    /// than an error, since a foreign entry can never be validated locally.
    pub fn decode_canonical(&mut self, words: &[u32], inverse: &[VarId]) -> Option<TermId> {
        let (id, rest) = self.decode_words(words, inverse)?;
        rest.is_empty().then_some(id)
    }

    fn decode_words<'w>(
        &mut self,
        words: &'w [u32],
        inverse: &[VarId],
    ) -> Option<(TermId, &'w [u32])> {
        let (&tag, rest) = words.split_first()?;
        let (&code, rest) = rest.split_first()?;
        let head = match tag {
            0 => Head::Var(*inverse.get(code as usize)?),
            1 => Head::Sym(SymId::from_index(code as usize)),
            _ => return None,
        };
        let (&argc, mut rest) = rest.split_first()?;
        // Every argument needs at least three words; reject (rather than
        // try to allocate for) argument counts the input cannot contain.
        if argc as usize > rest.len() / 3 {
            return None;
        }
        let mut args = Vec::with_capacity(argc as usize);
        for _ in 0..argc {
            let (a, r) = self.decode_words(rest, inverse)?;
            args.push(a);
            rest = r;
        }
        Some((self.node(head, args), rest))
    }

    /// The α- and orientation-invariant key of the equation `a ≈ b`,
    /// agreeing with [`crate::Equation::canonical_key`] on the resolved
    /// terms.
    pub fn canonical_key(&self, a: TermId, b: TermId) -> CanonKey {
        let encode = |x: TermId, y: TermId| {
            let mut rename = BTreeMap::new();
            let mut out = Vec::new();
            self.encode_canonical(x, &mut rename, &mut out);
            out.push(u32::MAX); // separator
            self.encode_canonical(y, &mut rename, &mut out);
            out
        };
        let fwd = encode(a, b);
        let bwd = encode(b, a);
        CanonKey::from_words(fwd.min(bwd))
    }
}

/// A substitution over interned terms: a finite map `VarId → TermId`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct IdSubst {
    map: BTreeMap<VarId, TermId>,
}

impl IdSubst {
    /// The empty (identity) substitution.
    pub fn new() -> IdSubst {
        IdSubst::default()
    }

    /// The singleton substitution `[t/v]`.
    pub fn singleton(v: VarId, t: TermId) -> IdSubst {
        let mut s = IdSubst::new();
        s.insert(v, t);
        s
    }

    /// Binds `v` to `t`, replacing any previous binding.
    pub fn insert(&mut self, v: VarId, t: TermId) {
        self.map.insert(v, t);
    }

    /// The binding of `v`, if any.
    pub fn get(&self, v: VarId) -> Option<TermId> {
        self.map.get(&v).copied()
    }

    /// Whether the substitution is the identity.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, TermId)> + '_ {
        self.map.iter().map(|(v, t)| (*v, *t))
    }

    /// Resolves every binding into an owned [`crate::Subst`].
    pub fn resolve(&self, store: &TermStore) -> crate::Subst {
        self.iter().map(|(v, t)| (v, store.resolve(t))).collect()
    }
}

impl FromIterator<(VarId, TermId)> for IdSubst {
    fn from_iter<I: IntoIterator<Item = (VarId, TermId)>>(iter: I) -> IdSubst {
        IdSubst {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::NatList;
    use crate::{match_term, Equation, Subst, VarStore};

    #[test]
    fn interning_is_idempotent_and_shares() {
        let f = NatList::new();
        let mut store = TermStore::new();
        let t = Term::apps(f.add, vec![f.num(2), f.num(2)]);
        let a = store.intern(&t);
        let b = store.intern(&t);
        assert_eq!(a, b);
        // S Z and Z are shared between the two identical arguments: the
        // store holds Z, S Z, S (S Z), add _ _ — four nodes, not seven.
        assert_eq!(store.len(), 4);
        assert_eq!(store.resolve(a), t);
    }

    #[test]
    fn metadata_matches_owned_term() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let mut store = TermStore::new();
        let t = Term::apps(f.add, vec![Term::var(x), f.num(3)]);
        let id = store.intern(&t);
        assert_eq!(store.size(id), t.size());
        assert_eq!(store.depth(id), t.depth());
        assert_eq!(store.is_ground(id), t.is_ground());
        assert!(store.contains_var(id, x));
        let ground = store.intern(&f.num(3));
        assert!(store.is_ground(ground));
        assert!(!store.contains_var(ground, x));
    }

    #[test]
    fn positions_and_replace_agree_with_owned() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let mut store = TermStore::new();
        let t = Term::apps(f.add, vec![f.s(Term::var(x)), f.num(1)]);
        let id = store.intern(&t);
        let owned: Vec<_> = t.positions().map(|(p, s)| (p, s.clone())).collect();
        let interned = store.positions(id);
        assert_eq!(owned.len(), interned.len());
        for ((p1, s1), (p2, s2)) in owned.iter().zip(&interned) {
            assert_eq!(p1, p2);
            assert_eq!(&store.resolve(*s2), s1);
        }
        let z = store.sym(f.zero);
        for (pos, _) in &interned {
            let replaced = store.replace_at(id, pos, z).unwrap();
            let expected = t.replace_at(pos, Term::sym(f.zero)).unwrap();
            assert_eq!(store.resolve(replaced), expected);
        }
    }

    #[test]
    fn subst_agrees_with_owned_subst() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let mut store = TermStore::new();
        let t = Term::apps(f.add, vec![Term::var(x), f.s(Term::var(y))]);
        let id = store.intern(&t);
        let bound = f.num(2);
        let theta_owned = Subst::singleton(x, bound.clone());
        let bid = store.intern(&bound);
        let theta = IdSubst::singleton(x, bid);
        let out = store.subst(id, &theta);
        assert_eq!(store.resolve(out), theta_owned.apply(&t));
    }

    #[test]
    fn subst_splices_applied_variable_heads() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let g = vars.fresh("g", crate::Type::arrow(f.nat_ty(), f.nat_ty()));
        let x = vars.fresh("x", f.nat_ty());
        let mut store = TermStore::new();
        let t = Term::var_apps(g, vec![Term::var(x)]);
        let id = store.intern(&t);
        let bound = Term::apps(f.add, vec![Term::sym(f.zero)]);
        let bid = store.intern(&bound);
        let out = store.subst(id, &IdSubst::singleton(g, bid));
        assert_eq!(
            store.resolve(out),
            Term::apps(f.add, vec![Term::sym(f.zero), Term::var(x)])
        );
    }

    #[test]
    fn match_terms_agrees_with_owned_matching() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let mut store = TermStore::new();
        let pat = Term::apps(f.add, vec![Term::var(x), Term::var(y)]);
        let subj = Term::apps(f.add, vec![f.num(1), f.num(2)]);
        let pid = store.intern(&pat);
        let sid = store.intern(&subj);
        let theta = store.match_terms(pid, sid).unwrap();
        let owned = match_term(&pat, &subj).unwrap();
        assert_eq!(theta.resolve(&store), owned);
        assert_eq!(store.subst(pid, &theta), sid);
        // Non-matching pair fails in both worlds.
        let clash = store.intern(&Term::sym(f.nil));
        assert!(store.match_terms(pid, clash).is_none());
    }

    #[test]
    fn match_terms_applied_variable_prefix() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let g = vars.fresh("g", crate::Type::arrow(f.nat_ty(), f.nat_ty()));
        let x = vars.fresh("x", f.nat_ty());
        let mut store = TermStore::new();
        let pat = Term::var_apps(g, vec![Term::var(x)]);
        let subj = Term::apps(f.add, vec![Term::sym(f.zero), f.num(1)]);
        let pid = store.intern(&pat);
        let sid = store.intern(&subj);
        let theta = store.match_terms(pid, sid).unwrap();
        assert_eq!(
            store.resolve(theta.get(g).unwrap()),
            Term::apps(f.add, vec![Term::sym(f.zero)])
        );
        assert_eq!(store.subst(pid, &theta), sid);
    }

    #[test]
    fn canonical_words_round_trip_across_stores() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let mut producer = TermStore::new();
        let t = Term::apps(f.add, vec![Term::var(x), f.s(Term::var(y))]);
        let id = producer.intern(&t);
        let mut rename = BTreeMap::new();
        let words = producer.canonical_words(id, &mut rename);

        // A different store with *different* variables for the same shape
        // produces identical words (α-invariance)...
        let mut other_vars = VarStore::new();
        let a = other_vars.fresh("a", f.nat_ty());
        let b = other_vars.fresh("b", f.nat_ty());
        let mut consumer = TermStore::new();
        let t2 = Term::apps(f.add, vec![Term::var(a), f.s(Term::var(b))]);
        let id2 = consumer.intern(&t2);
        let mut rename2 = BTreeMap::new();
        let words2 = consumer.canonical_words(id2, &mut rename2);
        assert_eq!(words, words2);

        // ...and decoding against the consumer's inverse map reconstructs
        // the consumer's own term.
        let mut inverse: Vec<(u32, VarId)> = rename2.iter().map(|(v, c)| (*c, *v)).collect();
        inverse.sort_unstable();
        let inverse: Vec<VarId> = inverse.into_iter().map(|(_, v)| v).collect();
        let decoded = consumer.decode_canonical(&words, &inverse).unwrap();
        assert_eq!(decoded, id2);
    }

    #[test]
    fn decode_canonical_rejects_garbage() {
        let f = NatList::new();
        let mut store = TermStore::new();
        // Unknown tag.
        assert_eq!(store.decode_canonical(&[7, 0, 0], &[]), None);
        // Variable code outside the inverse table.
        assert_eq!(store.decode_canonical(&[0, 3, 0], &[]), None);
        // Absurd argument count (must not attempt the allocation).
        assert_eq!(store.decode_canonical(&[1, 0, u32::MAX], &[]), None);
        // Trailing words after a complete term.
        let id = store.intern(&f.num(1));
        let mut rename = BTreeMap::new();
        let mut words = store.canonical_words(id, &mut rename);
        words.push(1);
        assert_eq!(store.decode_canonical(&words, &[]), None);
        // Truncated input.
        let ok = store.canonical_words(id, &mut BTreeMap::new());
        assert_eq!(store.decode_canonical(&ok[..ok.len() - 1], &[]), None);
        assert_eq!(store.decode_canonical(&ok, &[]), Some(id));
    }

    #[test]
    fn canonical_key_agrees_with_equation() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let mut store = TermStore::new();
        let l = Term::apps(f.add, vec![Term::var(x), Term::var(y)]);
        let r = Term::apps(f.add, vec![Term::var(y), Term::var(x)]);
        let lid = store.intern(&l);
        let rid = store.intern(&r);
        let eq = Equation::new(l, r);
        assert_eq!(store.canonical_key(lid, rid), eq.canonical_key());
        assert_eq!(store.canonical_key(rid, lid), eq.canonical_key());
    }
}
