//! Shared test and example fixtures: a small signature with natural numbers,
//! polymorphic lists and booleans.
//!
//! This module is part of the public API so that downstream crates (rewrite,
//! proof, search, …) can reuse the same fixture in their tests and examples;
//! it is not intended for production use.

use crate::signature::{DataId, Signature, SymId};
use crate::term::Term;
use crate::types::{TyVarId, Type, TypeScheme};

/// A signature with `Nat`, `List a`, `Bool` and the defined symbols `add`,
/// `app` (list append), `len`, and `map`.
#[derive(Clone, Debug)]
pub struct NatList {
    /// The signature holding all declarations below.
    pub sig: Signature,
    /// The datatype `Nat`.
    pub nat: DataId,
    /// The datatype `List` (arity 1).
    pub list: DataId,
    /// The datatype `Bool`.
    pub bool_: DataId,
    /// Constructor `Z : Nat`.
    pub zero: SymId,
    /// Constructor `S : Nat -> Nat`.
    pub succ: SymId,
    /// Constructor `Nil : List a`.
    pub nil: SymId,
    /// Constructor `Cons : a -> List a -> List a`.
    pub cons: SymId,
    /// Constructor `True : Bool`.
    pub true_: SymId,
    /// Constructor `False : Bool`.
    pub false_: SymId,
    /// Defined `add : Nat -> Nat -> Nat`.
    pub add: SymId,
    /// Defined `app : List a -> List a -> List a`.
    pub app: SymId,
    /// Defined `len : List a -> Nat`.
    pub len: SymId,
    /// Defined `map : (a -> b) -> List a -> List b`.
    pub map: SymId,
}

impl NatList {
    /// Builds the fixture signature.
    ///
    /// # Panics
    ///
    /// Never panics in practice; the declarations are statically valid.
    pub fn new() -> NatList {
        let mut sig = Signature::new();
        let nat = sig.add_datatype("Nat", 0).expect("fresh");
        let list = sig.add_datatype("List", 1).expect("fresh");
        let bool_ = sig.add_datatype("Bool", 0).expect("fresh");
        let nat_ty = Type::data0(nat);
        let a = Type::Var(TyVarId(0));
        let b = Type::Var(TyVarId(1));
        let list_a = Type::Data(list, vec![a.clone()]);
        let list_b = Type::Data(list, vec![b.clone()]);

        let zero = sig.add_constructor("Z", nat, vec![]).expect("fresh");
        let succ = sig
            .add_constructor("S", nat, vec![nat_ty.clone()])
            .expect("fresh");
        let nil = sig.add_constructor("Nil", list, vec![]).expect("fresh");
        let cons = sig
            .add_constructor("Cons", list, vec![a.clone(), list_a.clone()])
            .expect("fresh");
        let true_ = sig.add_constructor("True", bool_, vec![]).expect("fresh");
        let false_ = sig.add_constructor("False", bool_, vec![]).expect("fresh");

        let add = sig
            .add_defined(
                "add",
                TypeScheme::mono(Type::arrows(
                    vec![nat_ty.clone(), nat_ty.clone()],
                    nat_ty.clone(),
                )),
            )
            .expect("fresh");
        let app = sig
            .add_defined(
                "app",
                TypeScheme::poly(
                    1,
                    Type::arrows(vec![list_a.clone(), list_a.clone()], list_a.clone()),
                ),
            )
            .expect("fresh");
        let len = sig
            .add_defined(
                "len",
                TypeScheme::poly(1, Type::arrows(vec![list_a.clone()], nat_ty.clone())),
            )
            .expect("fresh");
        let map = sig
            .add_defined(
                "map",
                TypeScheme::poly(
                    2,
                    Type::arrows(
                        vec![Type::arrow(a.clone(), b.clone()), list_a.clone()],
                        list_b,
                    ),
                ),
            )
            .expect("fresh");

        NatList {
            sig,
            nat,
            list,
            bool_,
            zero,
            succ,
            nil,
            cons,
            true_,
            false_,
            add,
            app,
            len,
            map,
        }
    }

    /// The type `Nat`.
    pub fn nat_ty(&self) -> Type {
        Type::data0(self.nat)
    }

    /// The type `Bool`.
    pub fn bool_ty(&self) -> Type {
        Type::data0(self.bool_)
    }

    /// The type `List elem`.
    pub fn list_ty(&self, elem: Type) -> Type {
        Type::Data(self.list, vec![elem])
    }

    /// The term `S t`.
    pub fn s(&self, t: Term) -> Term {
        Term::apps(self.succ, vec![t])
    }

    /// The numeral `S^n Z`.
    pub fn num(&self, n: usize) -> Term {
        let mut t = Term::sym(self.zero);
        for _ in 0..n {
            t = self.s(t);
        }
        t
    }

    /// The term `Cons head tail`.
    pub fn cons_t(&self, head: Term, tail: Term) -> Term {
        Term::apps(self.cons, vec![head, tail])
    }

    /// A list literal built from `Cons`/`Nil`.
    pub fn list_t(&self, items: Vec<Term>) -> Term {
        items
            .into_iter()
            .rev()
            .fold(Term::sym(self.nil), |acc, x| self.cons_t(x, acc))
    }
}

impl Default for NatList {
    fn default() -> Self {
        NatList::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        let f = NatList::new();
        assert_eq!(f.sig.constructors_of(f.nat).len(), 2);
        assert_eq!(f.sig.constructors_of(f.list).len(), 2);
        assert_eq!(f.num(3).size(), 4);
        let l = f.list_t(vec![f.num(0), f.num(1)]);
        assert_eq!(l.size(), 1 + 1 + 1 + 2 + 1); // Cons Z (Cons (S Z) Nil)
    }
}
