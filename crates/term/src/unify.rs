//! First-order syntactic unification over spine-form terms.
//!
//! Unification is used by rewriting induction's `Expand` operator
//! (Definition 4.1), which overlaps goals with rule left-hand sides, and by
//! the confluence (orthogonality) check's critical-pair computation.
//!
//! As with matching, applied variable heads are handled by prefix splitting,
//! which suffices for the first-order rule heads required by §2.

use std::error::Error;
use std::fmt;

use crate::subst::Subst;
use crate::term::{Head, Term};
use crate::var::VarId;

/// Errors reported by [`unify`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UnifyError {
    /// Two distinct symbols (or different arities) clashed.
    Clash,
    /// The occurs check failed for the given variable.
    Occurs(VarId),
    /// An applied variable could not be given a consistent prefix.
    PrefixMismatch,
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifyError::Clash => write!(f, "symbol clash"),
            UnifyError::Occurs(v) => write!(f, "occurs check failed for v{}", v.index()),
            UnifyError::PrefixMismatch => write!(f, "applied variable prefix mismatch"),
        }
    }
}

impl Error for UnifyError {}

fn bind(v: VarId, t: &Term, subst: &mut Subst) -> Result<(), UnifyError> {
    if t.as_var() == Some(v) {
        return Ok(());
    }
    if t.contains_var(v) {
        return Err(UnifyError::Occurs(v));
    }
    // Keep the substitution idempotent: fold the new binding into the
    // existing ones.
    let single = Subst::singleton(v, t.clone());
    let updated: Subst = subst.iter().map(|(w, u)| (w, single.apply(u))).collect();
    *subst = updated;
    subst.insert(v, t.clone());
    Ok(())
}

fn unify_into(a: &Term, b: &Term, subst: &mut Subst) -> Result<(), UnifyError> {
    let a = subst.apply(a);
    let b = subst.apply(b);
    match (a.head(), b.head()) {
        (Head::Var(v), _) if a.args().is_empty() => bind(v, &b, subst),
        (_, Head::Var(w)) if b.args().is_empty() => bind(w, &a, subst),
        (Head::Var(_), _) | (_, Head::Var(_)) => {
            // At least one side is an applied variable; split the other side.
            let (shorter, longer) = if a.args().len() <= b.args().len() {
                (&a, &b)
            } else {
                (&b, &a)
            };
            let k = shorter.args().len();
            let m = longer.args().len();
            let split = m - k;
            // The shorter side must have a variable head to absorb the
            // prefix; if both heads are symbols they were handled below.
            match shorter.head() {
                Head::Var(v) => {
                    let prefix = Term::from_parts(longer.head(), longer.args()[..split].to_vec());
                    bind(v, &prefix, subst)?;
                    for (x, y) in shorter.args().iter().zip(&longer.args()[split..]) {
                        unify_into(x, y, subst)?;
                    }
                    Ok(())
                }
                Head::Sym(_) => {
                    // Symbol-headed shorter side vs. variable-headed longer
                    // side with more arguments: the variable head cannot
                    // consume a negative number of arguments.
                    Err(UnifyError::PrefixMismatch)
                }
            }
        }
        (Head::Sym(f), Head::Sym(g)) => {
            if f != g || a.args().len() != b.args().len() {
                return Err(UnifyError::Clash);
            }
            for (x, y) in a.args().iter().zip(b.args()) {
                unify_into(x, y, subst)?;
            }
            Ok(())
        }
    }
}

/// Computes a most general unifier of `a` and `b`.
///
/// # Errors
///
/// Returns [`UnifyError`] when no unifier exists.
///
/// # Example
///
/// ```
/// use cycleq_term::{fixtures::NatList, unify, Term, VarStore};
///
/// let f = NatList::new();
/// let mut vars = VarStore::new();
/// let x = vars.fresh("x", f.nat_ty());
/// let y = vars.fresh("y", f.nat_ty());
/// let a = Term::apps(f.add, vec![Term::var(x), Term::sym(f.zero)]);
/// let b = Term::apps(f.add, vec![f.s(Term::var(y)), Term::var(y)]);
/// let theta = unify(&a, &b).expect("unifiable");
/// assert_eq!(theta.apply(&a), theta.apply(&b));
/// ```
pub fn unify(a: &Term, b: &Term) -> Result<Subst, UnifyError> {
    let mut subst = Subst::new();
    unify_into(a, b, &mut subst)?;
    Ok(subst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::NatList;
    use crate::var::VarStore;

    #[test]
    fn unifies_variable_with_term() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let t = f.s(Term::sym(f.zero));
        let theta = unify(&Term::var(x), &t).unwrap();
        assert_eq!(theta.apply(&Term::var(x)), t);
    }

    #[test]
    fn occurs_check_rejects_cyclic_solutions() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let t = f.s(Term::var(x));
        assert_eq!(unify(&Term::var(x), &t), Err(UnifyError::Occurs(x)));
    }

    #[test]
    fn clash_between_constructors() {
        let f = NatList::new();
        assert_eq!(
            unify(&Term::sym(f.zero), &Term::sym(f.nil)),
            Err(UnifyError::Clash)
        );
    }

    #[test]
    fn unifier_is_most_general_on_example() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        // add x Z ≐ add (S y) y requires x = S Z, y = Z? No: unify arg-wise:
        // x ≐ S y and Z ≐ y, so y = Z and x = S Z.
        let a = Term::apps(f.add, vec![Term::var(x), Term::sym(f.zero)]);
        let b = Term::apps(f.add, vec![f.s(Term::var(y)), Term::var(y)]);
        let theta = unify(&a, &b).unwrap();
        assert_eq!(theta.apply(&a), theta.apply(&b));
        assert_eq!(theta.get(y), Some(&Term::sym(f.zero)));
        assert_eq!(theta.get(x), Some(&f.s(Term::sym(f.zero))));
    }

    #[test]
    fn unify_is_symmetric_in_success() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let a = Term::apps(f.add, vec![Term::var(x), Term::sym(f.zero)]);
        let b = Term::apps(f.add, vec![Term::sym(f.zero), Term::sym(f.zero)]);
        let t1 = unify(&a, &b).unwrap();
        let t2 = unify(&b, &a).unwrap();
        assert_eq!(t1.apply(&a), t2.apply(&b));
    }

    #[test]
    fn resulting_substitution_is_idempotent() {
        let f = NatList::new();
        let mut vars = VarStore::new();
        let x = vars.fresh("x", f.nat_ty());
        let y = vars.fresh("y", f.nat_ty());
        let z = vars.fresh("z", f.nat_ty());
        // x ≐ S y, then y ≐ S z through a chained problem.
        let a = Term::apps(f.add, vec![Term::var(x), Term::var(y)]);
        let b = Term::apps(f.add, vec![f.s(Term::var(y)), f.s(Term::var(z))]);
        let theta = unify(&a, &b).unwrap();
        for (_, t) in theta.iter() {
            assert_eq!(&theta.apply(t), t, "binding not idempotent: {t:?}");
        }
    }
}
