//! Term variables and the per-proof variable store.
//!
//! Every proof attempt owns a [`VarStore`] that allocates variable ids and
//! records their display names and types. The type environment `Γ` of an
//! equation (§2) is recovered as the free variables of its two sides, with
//! their types looked up in the store.

use crate::types::Type;

/// Identifies a term variable within a [`VarStore`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(u32);

impl VarId {
    /// Builds a `VarId` from a raw index. Only meaningful for ids obtained
    /// from the same store.
    pub fn from_index(i: usize) -> VarId {
        VarId(i as u32)
    }

    /// The raw index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct VarInfo {
    name: String,
    ty: Type,
}

/// Allocates term variables and records their names and types.
#[derive(Clone, Debug, Default)]
pub struct VarStore {
    vars: Vec<VarInfo>,
}

impl VarStore {
    /// Creates an empty store.
    pub fn new() -> VarStore {
        VarStore::default()
    }

    /// Allocates a fresh variable with the given display name and type.
    pub fn fresh(&mut self, name: &str, ty: Type) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.to_string(),
            ty,
        });
        id
    }

    /// Allocates a fresh variable named after `base` (e.g. `x` ↦ `x'`),
    /// used by the `Case` rule when introducing constructor arguments.
    pub fn fresh_from(&mut self, base: VarId, ty: Type) -> VarId {
        let name = format!("{}'", self.name(base));
        self.fresh(&name, ty)
    }

    /// The display name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this store.
    pub fn name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// The type of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this store.
    pub fn ty(&self, v: VarId) -> &Type {
        &self.vars[v.index()].ty
    }

    /// Replaces the type of a variable.
    ///
    /// Used by type inference, which allocates variables with metavariable
    /// placeholders and writes back the solved types.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this store.
    pub fn set_ty(&mut self, v: VarId, ty: Type) {
        self.vars[v.index()].ty = ty;
    }

    /// The number of allocated variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variables have been allocated.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over all variables with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str, &Type)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, info)| (VarId(i as u32), info.name.as_str(), &info.ty))
    }

    /// Truncates the store back to `len` variables, undoing allocations made
    /// since a checkpoint. Used by backtracking search.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current length.
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.vars.len(), "cannot truncate VarStore upwards");
        self.vars.truncate(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::DataId;

    #[test]
    fn fresh_allocates_sequential_ids() {
        let mut vars = VarStore::new();
        let nat = Type::data0(DataId::from_index(0));
        let x = vars.fresh("x", nat.clone());
        let y = vars.fresh("y", nat.clone());
        assert_ne!(x, y);
        assert_eq!(vars.name(x), "x");
        assert_eq!(vars.name(y), "y");
        assert_eq!(vars.ty(x), &nat);
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn fresh_from_primes_the_name() {
        let mut vars = VarStore::new();
        let nat = Type::data0(DataId::from_index(0));
        let x = vars.fresh("x", nat.clone());
        let x1 = vars.fresh_from(x, nat.clone());
        let x2 = vars.fresh_from(x1, nat.clone());
        assert_eq!(vars.name(x1), "x'");
        assert_eq!(vars.name(x2), "x''");
    }

    #[test]
    fn truncate_undoes_allocations() {
        let mut vars = VarStore::new();
        let nat = Type::data0(DataId::from_index(0));
        vars.fresh("x", nat.clone());
        let mark = vars.len();
        vars.fresh("y", nat.clone());
        vars.fresh("z", nat);
        vars.truncate(mark);
        assert_eq!(vars.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot truncate VarStore upwards")]
    fn truncate_upwards_panics() {
        let mut vars = VarStore::new();
        vars.truncate(1);
    }
}
