//! Signatures: the fixed sets of algebraic datatypes `D` and function symbols
//! `Σ = Σcon ⊎ Σdef` of §2.
//!
//! Constructors are required to be at most first order (their argument types
//! have order 0); this is enforced at registration time.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::types::{TyVarId, Type, TypeScheme};

/// Identifies a datatype in a [`Signature`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DataId(u32);

impl DataId {
    /// Builds a `DataId` from a raw index. Only meaningful for ids obtained
    /// from the same signature.
    pub fn from_index(i: usize) -> DataId {
        DataId(i as u32)
    }

    /// The raw index of the datatype.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a function symbol (constructor or defined) in a [`Signature`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SymId(u32);

impl SymId {
    /// Builds a `SymId` from a raw index. Only meaningful for ids obtained
    /// from the same signature.
    pub fn from_index(i: usize) -> SymId {
        SymId(i as u32)
    }

    /// The raw index of the symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether a symbol is a constructor or a defined function.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SymKind {
    /// A constructor of the given datatype.
    Constructor(DataId),
    /// A defined (program) function.
    Defined,
}

/// A datatype declaration.
#[derive(Clone, Debug)]
pub struct DataDecl {
    name: String,
    arity: u32,
    constructors: Vec<SymId>,
}

impl DataDecl {
    /// The datatype's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of type parameters.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// The constructors of the datatype, in declaration order (`Σcon(d)`).
    pub fn constructors(&self) -> &[SymId] {
        &self.constructors
    }
}

/// A function-symbol declaration.
#[derive(Clone, Debug)]
pub struct SymDecl {
    name: String,
    kind: SymKind,
    scheme: TypeScheme,
}

impl SymDecl {
    /// The symbol's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the symbol is a constructor or defined.
    pub fn kind(&self) -> SymKind {
        self.kind
    }

    /// The symbol's (possibly polymorphic) type.
    pub fn scheme(&self) -> &TypeScheme {
        &self.scheme
    }
}

/// Errors raised while building a signature.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SignatureError {
    /// A datatype or symbol name was declared twice.
    DuplicateName(String),
    /// A constructor argument type has order > 0 (constructors must be at
    /// most first order, §2).
    HigherOrderConstructor {
        /// The offending constructor name.
        constructor: String,
    },
    /// A referenced datatype id is not part of this signature.
    UnknownData(DataId),
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::DuplicateName(n) => write!(f, "duplicate declaration of `{n}`"),
            SignatureError::HigherOrderConstructor { constructor } => write!(
                f,
                "constructor `{constructor}` takes a function argument; constructors must be at most first order"
            ),
            SignatureError::UnknownData(d) => write!(f, "unknown datatype id {:?}", d),
        }
    }
}

impl Error for SignatureError {}

/// The fixed signature of a problem: datatypes, constructors, defined
/// symbols, and their types.
#[derive(Clone, Debug, Default)]
pub struct Signature {
    datas: Vec<DataDecl>,
    syms: Vec<SymDecl>,
    sym_by_name: HashMap<String, SymId>,
    data_by_name: HashMap<String, DataId>,
}

impl Signature {
    /// Creates an empty signature.
    pub fn new() -> Signature {
        Signature::default()
    }

    /// Declares a datatype with `arity` type parameters.
    ///
    /// # Errors
    ///
    /// Fails if the name is already taken by another datatype.
    pub fn add_datatype(&mut self, name: &str, arity: u32) -> Result<DataId, SignatureError> {
        if self.data_by_name.contains_key(name) {
            return Err(SignatureError::DuplicateName(name.to_string()));
        }
        let id = DataId(self.datas.len() as u32);
        self.datas.push(DataDecl {
            name: name.to_string(),
            arity,
            constructors: Vec::new(),
        });
        self.data_by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Declares a constructor for `data` with the given argument types.
    ///
    /// The constructor's scheme is `∀ a0 … a(k-1). arg0 → … → argn → data a0 … a(k-1)`
    /// where `k` is the datatype's arity; argument types may mention
    /// `TyVarId(0..k)`.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names, unknown datatypes, or argument types of
    /// order > 0 (constructors must be at most first order).
    pub fn add_constructor(
        &mut self,
        name: &str,
        data: DataId,
        args: Vec<Type>,
    ) -> Result<SymId, SignatureError> {
        if self.sym_by_name.contains_key(name) {
            return Err(SignatureError::DuplicateName(name.to_string()));
        }
        let decl = self
            .datas
            .get(data.index())
            .ok_or(SignatureError::UnknownData(data))?;
        if args.iter().any(|a| a.order() > 0) {
            return Err(SignatureError::HigherOrderConstructor {
                constructor: name.to_string(),
            });
        }
        let arity = decl.arity;
        let ret = Type::Data(data, (0..arity).map(|i| Type::Var(TyVarId(i))).collect());
        let scheme = TypeScheme::poly(arity, Type::arrows(args, ret));
        let id = SymId(self.syms.len() as u32);
        self.syms.push(SymDecl {
            name: name.to_string(),
            kind: SymKind::Constructor(data),
            scheme,
        });
        self.sym_by_name.insert(name.to_string(), id);
        self.datas[data.index()].constructors.push(id);
        Ok(id)
    }

    /// Declares a defined function with the given type scheme.
    ///
    /// # Errors
    ///
    /// Fails if the name is already taken.
    pub fn add_defined(&mut self, name: &str, scheme: TypeScheme) -> Result<SymId, SignatureError> {
        if self.sym_by_name.contains_key(name) {
            return Err(SignatureError::DuplicateName(name.to_string()));
        }
        let id = SymId(self.syms.len() as u32);
        self.syms.push(SymDecl {
            name: name.to_string(),
            kind: SymKind::Defined,
            scheme,
        });
        self.sym_by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// The declaration of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this signature.
    pub fn sym(&self, id: SymId) -> &SymDecl {
        &self.syms[id.index()]
    }

    /// The declaration of a datatype.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this signature.
    pub fn data(&self, id: DataId) -> &DataDecl {
        &self.datas[id.index()]
    }

    /// Looks up a symbol by name.
    pub fn sym_by_name(&self, name: &str) -> Option<SymId> {
        self.sym_by_name.get(name).copied()
    }

    /// Looks up a datatype by name.
    pub fn data_by_name(&self, name: &str) -> Option<DataId> {
        self.data_by_name.get(name).copied()
    }

    /// Whether the symbol is a constructor.
    pub fn is_constructor(&self, id: SymId) -> bool {
        matches!(self.sym(id).kind, SymKind::Constructor(_))
    }

    /// Whether the symbol is a defined function.
    pub fn is_defined(&self, id: SymId) -> bool {
        matches!(self.sym(id).kind, SymKind::Defined)
    }

    /// The constructors of a datatype (`Σcon(d)`).
    pub fn constructors_of(&self, data: DataId) -> &[SymId] {
        self.data(data).constructors()
    }

    /// Iterates over all symbols with their ids.
    pub fn syms(&self) -> impl Iterator<Item = (SymId, &SymDecl)> {
        self.syms
            .iter()
            .enumerate()
            .map(|(i, d)| (SymId(i as u32), d))
    }

    /// Iterates over all datatypes with their ids.
    pub fn datas(&self) -> impl Iterator<Item = (DataId, &DataDecl)> {
        self.datas
            .iter()
            .enumerate()
            .map(|(i, d)| (DataId(i as u32), d))
    }

    /// The number of declared symbols.
    pub fn num_syms(&self) -> usize {
        self.syms.len()
    }

    /// The number of declared datatypes.
    pub fn num_datas(&self) -> usize {
        self.datas.len()
    }

    /// The number of value arguments of a constructor (its type's arity).
    pub fn constructor_arity(&self, id: SymId) -> usize {
        self.sym(id).scheme().body().arity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_nat() {
        let mut sig = Signature::new();
        let nat = sig.add_datatype("Nat", 0).unwrap();
        let z = sig.add_constructor("Z", nat, vec![]).unwrap();
        let s = sig
            .add_constructor("S", nat, vec![Type::data0(nat)])
            .unwrap();
        assert_eq!(sig.constructors_of(nat), &[z, s]);
        assert_eq!(sig.sym(z).name(), "Z");
        assert!(sig.is_constructor(s));
        assert_eq!(sig.constructor_arity(s), 1);
        assert_eq!(sig.constructor_arity(z), 0);
    }

    #[test]
    fn declare_polymorphic_list() {
        let mut sig = Signature::new();
        let list = sig.add_datatype("List", 1).unwrap();
        let a = Type::Var(TyVarId(0));
        let nil = sig.add_constructor("Nil", list, vec![]).unwrap();
        let cons = sig
            .add_constructor(
                "Cons",
                list,
                vec![a.clone(), Type::Data(list, vec![a.clone()])],
            )
            .unwrap();
        assert_eq!(sig.sym(nil).scheme().num_vars(), 1);
        assert_eq!(sig.constructor_arity(cons), 2);
        let nat = sig.add_datatype("Nat", 0).unwrap();
        let inst = sig
            .sym(cons)
            .scheme()
            .instantiate_with(&[Type::data0(nat)])
            .unwrap();
        assert_eq!(inst.arity(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut sig = Signature::new();
        sig.add_datatype("Nat", 0).unwrap();
        assert!(matches!(
            sig.add_datatype("Nat", 0),
            Err(SignatureError::DuplicateName(_))
        ));
        let nat = sig.data_by_name("Nat").unwrap();
        sig.add_constructor("Z", nat, vec![]).unwrap();
        assert!(sig.add_constructor("Z", nat, vec![]).is_err());
    }

    #[test]
    fn higher_order_constructor_rejected() {
        let mut sig = Signature::new();
        let nat = sig.add_datatype("Nat", 0).unwrap();
        let fun = Type::arrow(Type::data0(nat), Type::data0(nat));
        assert!(matches!(
            sig.add_constructor("Bad", nat, vec![fun]),
            Err(SignatureError::HigherOrderConstructor { .. })
        ));
    }

    #[test]
    fn lookup_by_name() {
        let mut sig = Signature::new();
        let nat = sig.add_datatype("Nat", 0).unwrap();
        let z = sig.add_constructor("Z", nat, vec![]).unwrap();
        assert_eq!(sig.sym_by_name("Z"), Some(z));
        assert_eq!(sig.data_by_name("Nat"), Some(nat));
        assert_eq!(sig.sym_by_name("missing"), None);
    }

    #[test]
    fn defined_symbols() {
        let mut sig = Signature::new();
        let nat = sig.add_datatype("Nat", 0).unwrap();
        let ty = Type::arrows(vec![Type::data0(nat), Type::data0(nat)], Type::data0(nat));
        let add = sig.add_defined("add", TypeScheme::mono(ty)).unwrap();
        assert!(sig.is_defined(add));
        assert!(!sig.is_constructor(add));
    }
}
