//! The shared benchmark program: the standard IsaPlanner signature over
//! naturals, booleans, lists, pairs and binary trees.
//!
//! Definitions follow the usual TIP/IsaPlanner presentations, with two
//! standing substitutions documented in DESIGN.md:
//!
//! - partial functions (`last`) are totalised with a default (`Z`), as is
//!   conventional when encoding the suite for first-order provers;
//! - the literal lambdas of properties 35/36 (`λx. False`, `λx. True`)
//!   become the named combinators `constFalse`/`constTrue`, since the §2
//!   term language has no binders; the induced rewrite relation is
//!   identical.
//!
//! Conditionals are expressed through the defined function `ite`, which is
//! also how the suite naturally exhibits CycleQ's documented limitation on
//! problems needing hypothetical reasoning (§6.2).

/// The prelude source shared by every IsaPlanner problem.
pub const PRELUDE: &str = r#"
data Nat = Z | S Nat
data Bool = True | False
data List a = Nil | Cons a (List a)
data Pair a b = MkPair a b
data Tree a = Leaf | Node (Tree a) a (Tree a)

ite :: Bool -> a -> a -> a
ite True x y = x
ite False x y = y

not :: Bool -> Bool
not True = False
not False = True

id :: a -> a
id x = x

constTrue :: a -> Bool
constTrue x = True

constFalse :: a -> Bool
constFalse x = False

natEq :: Nat -> Nat -> Bool
natEq Z Z = True
natEq Z (S y) = False
natEq (S x) Z = False
natEq (S x) (S y) = natEq x y

le :: Nat -> Nat -> Bool
le Z y = True
le (S x) Z = False
le (S x) (S y) = le x y

lt :: Nat -> Nat -> Bool
lt x Z = False
lt Z (S y) = True
lt (S x) (S y) = lt x y

add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)

sub :: Nat -> Nat -> Nat
sub x Z = x
sub Z (S y) = Z
sub (S x) (S y) = sub x y

min :: Nat -> Nat -> Nat
min Z y = Z
min (S x) Z = Z
min (S x) (S y) = S (min x y)

max :: Nat -> Nat -> Nat
max Z y = y
max (S x) Z = S x
max (S x) (S y) = S (max x y)

len :: List a -> Nat
len Nil = Z
len (Cons x xs) = S (len xs)

app :: List a -> List a -> List a
app Nil ys = ys
app (Cons x xs) ys = Cons x (app xs ys)

rev :: List a -> List a
rev Nil = Nil
rev (Cons x xs) = app (rev xs) (Cons x Nil)

map :: (a -> b) -> List a -> List b
map f Nil = Nil
map f (Cons x xs) = Cons (f x) (map f xs)

filter :: (a -> Bool) -> List a -> List a
filter p Nil = Nil
filter p (Cons x xs) = ite (p x) (Cons x (filter p xs)) (filter p xs)

takeWhile :: (a -> Bool) -> List a -> List a
takeWhile p Nil = Nil
takeWhile p (Cons x xs) = ite (p x) (Cons x (takeWhile p xs)) Nil

dropWhile :: (a -> Bool) -> List a -> List a
dropWhile p Nil = Nil
dropWhile p (Cons x xs) = ite (p x) (dropWhile p xs) (Cons x xs)

take :: Nat -> List a -> List a
take Z xs = Nil
take (S n) Nil = Nil
take (S n) (Cons x xs) = Cons x (take n xs)

drop :: Nat -> List a -> List a
drop Z xs = xs
drop (S n) Nil = Nil
drop (S n) (Cons x xs) = drop n xs

count :: Nat -> List Nat -> Nat
count n Nil = Z
count n (Cons x xs) = ite (natEq n x) (S (count n xs)) (count n xs)

elem :: Nat -> List Nat -> Bool
elem n Nil = False
elem n (Cons x xs) = ite (natEq n x) True (elem n xs)

delete :: Nat -> List Nat -> List Nat
delete n Nil = Nil
delete n (Cons x xs) = ite (natEq n x) (delete n xs) (Cons x (delete n xs))

ins :: Nat -> List Nat -> List Nat
ins n Nil = Cons n Nil
ins n (Cons x xs) = ite (lt n x) (Cons n (Cons x xs)) (Cons x (ins n xs))

ins1 :: Nat -> List Nat -> List Nat
ins1 n Nil = Cons n Nil
ins1 n (Cons x xs) = ite (natEq n x) (Cons x xs) (Cons x (ins1 n xs))

insort :: Nat -> List Nat -> List Nat
insort n Nil = Cons n Nil
insort n (Cons x xs) = ite (le n x) (Cons n (Cons x xs)) (Cons x (insort n xs))

sort :: List Nat -> List Nat
sort Nil = Nil
sort (Cons x xs) = insort x (sort xs)

sorted :: List Nat -> Bool
sorted Nil = True
sorted (Cons x Nil) = True
sorted (Cons x (Cons y ys)) = ite (le x y) (sorted (Cons y ys)) False

last :: List Nat -> Nat
last Nil = Z
last (Cons x Nil) = x
last (Cons x (Cons y ys)) = last (Cons y ys)

butlast :: List a -> List a
butlast Nil = Nil
butlast (Cons x Nil) = Nil
butlast (Cons x (Cons y ys)) = Cons x (butlast (Cons y ys))

lastOfTwo :: List Nat -> List Nat -> Nat
lastOfTwo xs Nil = last xs
lastOfTwo xs (Cons y ys) = last (Cons y ys)

butlastConcat :: List a -> List a -> List a
butlastConcat xs Nil = butlast xs
butlastConcat xs (Cons y ys) = app xs (butlast (Cons y ys))

zip :: List a -> List b -> List (Pair a b)
zip Nil ys = Nil
zip (Cons x xs) Nil = Nil
zip (Cons x xs) (Cons y ys) = Cons (MkPair x y) (zip xs ys)

zipConcat :: a -> List a -> List b -> List (Pair a b)
zipConcat x xs Nil = Nil
zipConcat x xs (Cons y ys) = Cons (MkPair x y) (zip xs ys)

null :: List a -> Bool
null Nil = True
null (Cons x xs) = False

height :: Tree a -> Nat
height Leaf = Z
height (Node l x r) = S (max (height l) (height r))

mirror :: Tree a -> Tree a
mirror Leaf = Leaf
mirror (Node l x r) = Node (mirror r) x (mirror l)
"#;

/// The mutual-induction benchmark program: the annotated syntax trees of
/// the paper's introduction (§1), with mutually recursive `mapT`/`mapE`,
/// sizes, heights and an `App`-swapping involution.
pub const MUTUAL_PRELUDE: &str = r#"
data Nat = Z | S Nat
data Term a = Var a | Cst Nat | App (Expr a) (Expr a)
data Expr a = MkE (Term a) Nat

id :: a -> a
id x = x

add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)

max :: Nat -> Nat -> Nat
max Z y = y
max (S x) Z = S x
max (S x) (S y) = S (max x y)

mapT :: (a -> b) -> Term a -> Term b
mapT f (Var v) = Var (f v)
mapT f (Cst c) = Cst c
mapT f (App e1 e2) = App (mapE f e1) (mapE f e2)

mapE :: (a -> b) -> Expr a -> Expr b
mapE f (MkE t n) = MkE (mapT f t) n

sizeT :: Term a -> Nat
sizeT (Var v) = S Z
sizeT (Cst c) = S Z
sizeT (App e1 e2) = S (add (sizeE e1) (sizeE e2))

sizeE :: Expr a -> Nat
sizeE (MkE t n) = S (sizeT t)

heightT :: Term a -> Nat
heightT (Var v) = Z
heightT (Cst c) = Z
heightT (App e1 e2) = S (max (heightE e1) (heightE e2))

heightE :: Expr a -> Nat
heightE (MkE t n) = S (heightT t)

swapT :: Term a -> Term a
swapT (Var v) = Var v
swapT (Cst c) = Cst c
swapT (App e1 e2) = App (swapE e2) (swapE e1)

swapE :: Expr a -> Expr a
swapE (MkE t n) = MkE (swapT t) n
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_lang::parse_module;

    #[test]
    fn prelude_parses_and_validates() {
        let m = parse_module(PRELUDE).unwrap();
        assert!(m.validate().is_empty(), "{:?}", m.validate());
        assert!(m.program.trs.len() > 50);
    }

    #[test]
    fn mutual_prelude_parses_and_validates() {
        let m = parse_module(MUTUAL_PRELUDE).unwrap();
        assert!(m.validate().is_empty(), "{:?}", m.validate());
        let term = m.program.sig.data_by_name("Term").unwrap();
        assert_eq!(m.program.sig.constructors_of(term).len(), 3);
    }

    #[test]
    fn prelude_functions_compute() {
        use cycleq_rewrite::Rewriter;
        use cycleq_term::Term;
        let m = parse_module(PRELUDE).unwrap();
        let sig = &m.program.sig;
        let rw = Rewriter::new(sig, &m.program.trs);
        let z = Term::sym(sig.sym_by_name("Z").unwrap());
        let s = |t: Term| Term::apps(sig.sym_by_name("S").unwrap(), vec![t]);
        let two = s(s(z.clone()));
        let three = s(s(s(z.clone())));
        // max 2 3 = 3
        let max = Term::apps(
            sig.sym_by_name("max").unwrap(),
            vec![two.clone(), three.clone()],
        );
        assert_eq!(rw.normalize(&max).term, three);
        // sub 2 3 = 0 (monus)
        let sub = Term::apps(
            sig.sym_by_name("sub").unwrap(),
            vec![two.clone(), three.clone()],
        );
        assert_eq!(rw.normalize(&sub).term, z);
        // sort [2, 3] is sorted
        let nil = Term::sym(sig.sym_by_name("Nil").unwrap());
        let cons = |h: Term, t: Term| Term::apps(sig.sym_by_name("Cons").unwrap(), vec![h, t]);
        let list = cons(three.clone(), cons(two.clone(), nil));
        let sorted_sort = Term::apps(
            sig.sym_by_name("sorted").unwrap(),
            vec![Term::apps(sig.sym_by_name("sort").unwrap(), vec![list])],
        );
        let tru = Term::sym(sig.sym_by_name("True").unwrap());
        assert_eq!(rw.normalize(&sorted_sort).term, tru);
    }
}
