//! Suite runner and reporting: regenerates the evaluation artifacts of §6.1
//! (Figure 7 and the in-text statistics).

use std::fmt::Write as _;
use std::time::Duration;

use cycleq::{Engine, Outcome, SearchConfig, SearchStats};
use cycleq_batch::BatchScheduler;

use crate::problems::{Category, Expectation, Problem};

/// How to run the suite.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Per-problem search configuration (timeout lives here).
    pub search: SearchConfig,
    /// Supply the registered hint lemmas for `NeedsLemma` problems.
    pub with_hints: bool,
    /// Re-check proofs with the independent checker.
    pub recheck: bool,
    /// Worker threads for [`run_suite`] (1 = sequential, no threads;
    /// 0 = one per hardware thread). Each problem loads its own program,
    /// so workers share nothing; for problems that finish comfortably
    /// within [`SearchConfig::timeout`] the statuses are identical to a
    /// sequential run. Per-problem `time` fields include any contention
    /// between workers, so near the timeout boundary a heavily loaded
    /// machine can flip a borderline problem to `Timeout` — benchmark
    /// timings (Figure 7 regeneration) should use `jobs: 1`.
    pub jobs: usize,
    /// Export a `<problem.id>.cqc` certificate into this directory for
    /// every proved problem (the corpus `cycleq check` re-validates). The
    /// directory must already exist; export failures surface as
    /// [`RunStatus::Error`] so CI cannot silently produce a partial corpus.
    pub emit_certs: Option<std::path::PathBuf>,
    /// Capture a per-problem phase-time breakdown ([`RunOutcome::profile`],
    /// rendered by [`profile_table`]) by enabling the `cycleq_trace` span
    /// machinery. The underlying metrics registry is process-global, so
    /// with `jobs > 1` concurrent problems attribute phase time to each
    /// other — profile with `jobs: 1` for exact per-problem numbers.
    pub profile: bool,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            search: SearchConfig {
                timeout: Some(Duration::from_secs(2)),
                ..SearchConfig::default()
            },
            with_hints: false,
            recheck: true,
            jobs: 1,
            emit_certs: None,
            profile: false,
        }
    }
}

/// The status of one run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunStatus {
    /// Proved (and, if configured, re-checked).
    Proved,
    /// Refuted with a ground counterexample — indicates a mis-encoded
    /// property.
    Refuted,
    /// Search space exhausted within bounds.
    Exhausted,
    /// Timed out.
    Timeout,
    /// Node budget exceeded.
    NodeBudget,
    /// Cancelled through a [`cycleq::CancelToken`].
    Cancelled,
    /// Conditional property: out of scope (§6.2).
    OutOfScope,
    /// A hint lemma failed to prove first.
    HintFailed,
    /// Frontend or checker error.
    Error(String),
}

impl RunStatus {
    /// Whether the run produced a proof.
    pub fn is_proved(&self) -> bool {
        matches!(self, RunStatus::Proved)
    }
}

/// The outcome of running one problem.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The problem.
    pub problem: &'static Problem,
    /// What happened.
    pub status: RunStatus,
    /// Wall-clock search time (excluding parsing).
    pub time: Duration,
    /// Search statistics, when a search ran.
    pub stats: Option<SearchStats>,
    /// Phase-time breakdown of the search, when [`RunConfig::profile`]
    /// was set and a search ran.
    pub profile: Option<cycleq::Profile>,
}

/// Runs a single problem.
pub fn run_problem(problem: &'static Problem, config: &RunConfig) -> RunOutcome {
    if config.profile {
        cycleq::trace::set_enabled(true);
    }
    let Some(src) = problem.source() else {
        return RunOutcome {
            problem,
            status: RunStatus::OutOfScope,
            time: Duration::ZERO,
            stats: None,
            profile: None,
        };
    };
    let engine = Engine::builder()
        .config(config.search.clone())
        .recheck(config.recheck)
        .build();
    let session = match engine.load(&src) {
        Ok(s) => s,
        Err(e) => {
            return RunOutcome {
                problem,
                status: RunStatus::Error(e.to_string()),
                time: Duration::ZERO,
                stats: None,
                profile: None,
            }
        }
    };
    let goal_name = problem.goal_name();
    let hints: Vec<&str> = if config.with_hints {
        problem.hint_names()
    } else {
        Vec::new()
    };
    let verdict = match session.prove_with_hints(&goal_name, &hints) {
        Ok(v) => v,
        Err(e) => {
            return RunOutcome {
                problem,
                status: RunStatus::Error(e.to_string()),
                time: Duration::ZERO,
                stats: None,
                profile: None,
            }
        }
    };
    let mut status = match verdict.result.outcome {
        Outcome::Proved { .. } => RunStatus::Proved,
        Outcome::Refuted => RunStatus::Refuted,
        Outcome::Exhausted => RunStatus::Exhausted,
        Outcome::Timeout => RunStatus::Timeout,
        Outcome::NodeBudget => RunStatus::NodeBudget,
        Outcome::Cancelled => RunStatus::Cancelled,
        Outcome::HintFailed { .. } => RunStatus::HintFailed,
        Outcome::Panicked { ref message } => RunStatus::Error(format!("panicked: {message}")),
    };
    if status.is_proved() {
        if let Some(dir) = &config.emit_certs {
            if let Err(e) = emit_certificate(dir, problem.id, &session, &verdict) {
                status = RunStatus::Error(e);
            }
        }
    }
    RunOutcome {
        problem,
        status,
        time: verdict.result.stats.elapsed,
        stats: Some(verdict.result.stats),
        profile: config.profile.then(|| session.profile()).flatten(),
    }
}

/// Writes the proved problem's certificate as `<dir>/<id>.cqc`, with the
/// id sanitized the same way the CLI sanitizes goal names (anything but
/// alphanumerics becomes `_`) so awkward ids cannot escape the directory.
fn emit_certificate(
    dir: &std::path::Path,
    id: &str,
    session: &cycleq::Session,
    verdict: &cycleq::Verdict,
) -> Result<(), String> {
    let text = session
        .export_certificate(verdict)
        .map_err(|e| format!("certificate export failed: {e}"))?;
    let safe: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("{safe}.cqc"));
    std::fs::write(&path, text)
        .map_err(|e| format!("cannot write certificate {}: {e}", path.display()))
}

/// Runs a set of problems, fanning them out across [`RunConfig::jobs`]
/// workers (sequentially, with no threads, when `jobs` is 1).
///
/// The returned outcomes are **always in the order of `problems`**
/// (declaration order), never completion order: each outcome is tagged
/// with its input index and the batch is explicitly sorted by that index
/// before returning, so reporters ([`text_table`], [`csv`],
/// [`cactus_series`]) see the same deterministic sequence whatever the
/// parallelism.
pub fn run_suite(problems: &[&'static Problem], config: &RunConfig) -> Vec<RunOutcome> {
    let tasks: Vec<_> = problems
        .iter()
        .enumerate()
        .map(|(index, &p)| move |_worker: usize| (index, run_problem(p, config)))
        .collect();
    let mut indexed = BatchScheduler::new(config.jobs).run(tasks);
    // The scheduler already returns results in task order; the sort makes
    // declaration ordering an invariant of this function rather than of
    // the scheduler implementation.
    indexed.sort_by_key(|(index, _)| *index);
    indexed.into_iter().map(|(_, out)| out).collect()
}

/// Aggregate statistics matching the numbers reported in §6.1.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Problems attempted (in-scope).
    pub attempted: usize,
    /// Problems proved.
    pub proved: usize,
    /// Out-of-scope (conditional) problems.
    pub out_of_scope: usize,
    /// Proved in under 100 ms.
    pub proved_under_100ms: usize,
    /// Mean time over proved problems, in milliseconds.
    pub mean_proved_ms: f64,
    /// Maximum time over proved problems, in milliseconds.
    pub max_proved_ms: f64,
}

/// Summarises a batch of outcomes.
pub fn summarize(outcomes: &[RunOutcome]) -> Summary {
    let out_of_scope = outcomes
        .iter()
        .filter(|o| o.status == RunStatus::OutOfScope)
        .count();
    let attempted = outcomes.len() - out_of_scope;
    let proved: Vec<&RunOutcome> = outcomes.iter().filter(|o| o.status.is_proved()).collect();
    let times_ms: Vec<f64> = proved
        .iter()
        .map(|o| o.time.as_secs_f64() * 1000.0)
        .collect();
    Summary {
        attempted,
        proved: proved.len(),
        out_of_scope,
        proved_under_100ms: times_ms.iter().filter(|t| **t < 100.0).count(),
        mean_proved_ms: if times_ms.is_empty() {
            0.0
        } else {
            times_ms.iter().sum::<f64>() / times_ms.len() as f64
        },
        max_proved_ms: times_ms.iter().copied().fold(0.0, f64::max),
    }
}

/// The cumulative-solved series of Figure 7: for each proved problem, its
/// solve time in milliseconds paired with the cumulative count, sorted by
/// time.
pub fn cactus_series(outcomes: &[RunOutcome]) -> Vec<(f64, usize)> {
    let mut times: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.status.is_proved())
        .map(|o| o.time.as_secs_f64() * 1000.0)
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    times
        .into_iter()
        .enumerate()
        .map(|(i, t)| (t, i + 1))
        .collect()
}

/// Renders outcomes as an aligned text table.
pub fn text_table(outcomes: &[RunOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<11} {:<12} {:>10}  note",
        "id", "suite", "status", "time"
    );
    for o in outcomes {
        let status = match &o.status {
            RunStatus::Proved => "proved".to_string(),
            RunStatus::Refuted => "REFUTED".to_string(),
            RunStatus::Exhausted => "exhausted".to_string(),
            RunStatus::Timeout => "timeout".to_string(),
            RunStatus::NodeBudget => "budget".to_string(),
            RunStatus::Cancelled => "cancelled".to_string(),
            RunStatus::OutOfScope => "out-of-scope".to_string(),
            RunStatus::HintFailed => "hint-failed".to_string(),
            RunStatus::Error(e) => format!("ERROR: {e}"),
        };
        let suite = match o.problem.category {
            Category::IsaPlanner => "isaplanner",
            Category::Mutual => "mutual",
            Category::Figure => "figure",
        };
        let _ = writeln!(
            out,
            "{:<6} {:<11} {:<12} {:>8.2}ms  {}",
            o.problem.id,
            suite,
            status,
            o.time.as_secs_f64() * 1000.0,
            o.problem.note.unwrap_or("")
        );
    }
    out
}

/// Renders the per-problem phase-time breakdown captured with
/// [`RunConfig::profile`] as an aligned text table: one row per profiled
/// problem, one column per span phase (total milliseconds across that
/// problem's spans). Totals are inclusive of child spans — `prove_goal`
/// covers the whole search, `round` the deepening rounds inside it, and so
/// on down the taxonomy — so columns overlap rather than sum to the time.
pub fn profile_table(outcomes: &[RunOutcome]) -> String {
    const PHASES: [&str; 6] = [
        "prove_goal",
        "round",
        "expand",
        "normalize",
        "closure_update",
        "check",
    ];
    let mut out = String::new();
    let _ = write!(out, "{:<6} {:>10}", "id", "time");
    for phase in PHASES {
        let _ = write!(out, " {:>14}", phase);
    }
    let _ = writeln!(out);
    for o in outcomes {
        let Some(profile) = &o.profile else { continue };
        let _ = write!(
            out,
            "{:<6} {:>8.2}ms",
            o.problem.id,
            o.time.as_secs_f64() * 1000.0
        );
        for name in PHASES {
            let ms = profile
                .phase(name)
                .map(|p| p.total_seconds * 1000.0)
                .unwrap_or(0.0);
            let _ = write!(out, " {:>12.2}ms", ms);
        }
        let _ = writeln!(out);
    }
    out
}

/// Quotes a CSV field when it contains a comma, quote or newline (RFC
/// 4180: wrap in double quotes, double any embedded quotes). Problem ids
/// and error messages are the fields that can need this; plain fields pass
/// through untouched.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders outcomes as CSV (`id,suite,status,time_ms,nodes`), with fields
/// escaped per RFC 4180 so ids or error messages containing commas/quotes
/// cannot produce malformed rows.
pub fn csv(outcomes: &[RunOutcome]) -> String {
    let mut out = String::from("id,suite,status,time_ms,nodes\n");
    for o in outcomes {
        let status = match &o.status {
            RunStatus::Proved => "proved".to_string(),
            RunStatus::Refuted => "refuted".to_string(),
            RunStatus::Exhausted => "exhausted".to_string(),
            RunStatus::Timeout => "timeout".to_string(),
            RunStatus::NodeBudget => "budget".to_string(),
            RunStatus::Cancelled => "cancelled".to_string(),
            RunStatus::OutOfScope => "out-of-scope".to_string(),
            RunStatus::HintFailed => "hint-failed".to_string(),
            RunStatus::Error(e) => format!("error: {e}"),
        };
        let suite = match o.problem.category {
            Category::IsaPlanner => "isaplanner",
            Category::Mutual => "mutual",
            Category::Figure => "figure",
        };
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{}",
            csv_field(o.problem.id),
            suite,
            csv_field(&status),
            o.time.as_secs_f64() * 1000.0,
            o.stats.as_ref().map(|s| s.nodes_created).unwrap_or(0)
        );
    }
    out
}

/// Problems whose expectation matches the filter.
pub fn by_expectation(
    problems: &[&'static Problem],
    expectation: Expectation,
) -> Vec<&'static Problem> {
    problems
        .iter()
        .copied()
        .filter(|p| p.expectation == expectation)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{FIGURES, ISAPLANNER, MUTUAL};

    #[test]
    fn runs_fig4_problem() {
        let p = &FIGURES[0];
        let out = run_problem(p, &RunConfig::default());
        assert!(out.status.is_proved(), "{:?}", out.status);
        assert!(out.time < Duration::from_secs(2));
    }

    #[test]
    fn conditional_problems_are_out_of_scope() {
        let p = ISAPLANNER.iter().find(|p| p.id == "IP05").unwrap();
        let out = run_problem(p, &RunConfig::default());
        assert_eq!(out.status, RunStatus::OutOfScope);
    }

    #[test]
    fn mutual_problem_runs_quickly() {
        let p = &MUTUAL[0];
        let out = run_problem(p, &RunConfig::default());
        assert!(out.status.is_proved(), "{:?}", out.status);
    }

    #[test]
    fn summary_and_cactus_are_consistent() {
        let ps: Vec<&'static Problem> = vec![&FIGURES[0], &FIGURES[1], &MUTUAL[0]];
        let outcomes = run_suite(&ps, &RunConfig::default());
        let summary = summarize(&outcomes);
        assert_eq!(summary.attempted, 3);
        assert_eq!(summary.proved, 3);
        let series = cactus_series(&outcomes);
        assert_eq!(series.len(), 3);
        assert_eq!(series.last().unwrap().1, 3);
        // Times are sorted.
        assert!(series.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn tables_render() {
        let ps: Vec<&'static Problem> = vec![&FIGURES[0]];
        let outcomes = run_suite(&ps, &RunConfig::default());
        let table = text_table(&outcomes);
        assert!(table.contains("F04"));
        let csv_out = csv(&outcomes);
        assert!(csv_out.starts_with("id,suite,status"));
        assert!(csv_out.contains("proved"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes_in_fields() {
        static AWKWARD: Problem = Problem {
            id: "IP,\"evil\",01",
            category: Category::IsaPlanner,
            expectation: Expectation::InScope,
            goal: None,
            hints: &[],
            note: None,
        };
        let outcomes = vec![
            RunOutcome {
                problem: &AWKWARD,
                status: RunStatus::Proved,
                time: Duration::from_millis(1),
                stats: None,
                profile: None,
            },
            RunOutcome {
                problem: &AWKWARD,
                status: RunStatus::Error("load failed: expected `,`, got `=`".to_string()),
                time: Duration::ZERO,
                stats: None,
                profile: None,
            },
        ];
        let rendered = csv(&outcomes);
        let mut lines = rendered.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), 5);
        // The awkward id must come out as one RFC 4180-quoted field…
        let row = lines.next().unwrap();
        assert!(
            row.starts_with("\"IP,\"\"evil\"\",01\",isaplanner,proved,"),
            "bad row: {row}"
        );
        // …so that un-escaping yields exactly the header's column count.
        for row in rendered.lines().skip(1) {
            let mut cols = 0;
            let mut in_quotes = false;
            for c in row.chars() {
                match c {
                    '"' => in_quotes = !in_quotes,
                    ',' if !in_quotes => cols += 1,
                    _ => {}
                }
            }
            assert_eq!(cols, 4, "row has wrong column count: {row}");
        }
        // The error message (which contains commas and backticks) is
        // carried in the status field, quoted.
        assert!(rendered.contains("\"error: load failed: expected `,`, got `=`\""));
    }

    #[test]
    fn parallel_suite_matches_sequential_statuses_and_order() {
        let ps: Vec<&'static Problem> = FIGURES.iter().chain(MUTUAL.iter()).collect();
        let sequential = run_suite(&ps, &RunConfig::default());
        let parallel = run_suite(
            &ps,
            &RunConfig {
                jobs: 4,
                ..RunConfig::default()
            },
        );
        assert_eq!(sequential.len(), parallel.len());
        for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            assert_eq!(
                s.problem.id, ps[i].id,
                "sequential order is declaration order"
            );
            assert_eq!(
                p.problem.id, ps[i].id,
                "parallel order is declaration order"
            );
            assert_eq!(s.status, p.status, "{}: verdicts must agree", ps[i].id);
        }
        // The reporters therefore agree row-for-row on everything but
        // timing, e.g. the id column of the text table.
        let ids = |t: &str| -> Vec<String> {
            t.lines()
                .skip(1)
                .map(|l| l.split_whitespace().next().unwrap().to_string())
                .collect()
        };
        assert_eq!(ids(&text_table(&sequential)), ids(&text_table(&parallel)));
    }

    #[test]
    fn emit_certs_writes_a_validating_corpus() {
        let dir = std::env::temp_dir().join(format!("cycleq_certs_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = &FIGURES[0];
        let out = run_problem(
            p,
            &RunConfig {
                emit_certs: Some(dir.clone()),
                ..RunConfig::default()
            },
        );
        assert!(out.status.is_proved(), "{:?}", out.status);
        let text = std::fs::read_to_string(dir.join(format!("{}.cqc", p.id))).unwrap();
        let checked = cycleq::check_certificate(&text).expect("exported certificate validates");
        assert_eq!(checked.goal, p.goal_name());
        assert!(checked.report.nodes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hints_flip_ip54() {
        let p = ISAPLANNER.iter().find(|p| p.id == "IP54").unwrap();
        let without = run_problem(p, &RunConfig::default());
        assert!(!without.status.is_proved(), "{:?}", without.status);
        let with = run_problem(
            p,
            &RunConfig {
                with_hints: true,
                ..RunConfig::default()
            },
        );
        assert!(with.status.is_proved(), "{:?}", with.status);
    }
}
