//! The benchmark problem registry: the 85 IsaPlanner properties (§6.1), the
//! mutual-induction suite built around the paper's introduction example, and
//! the goals shown as figures.
//!
//! The IsaPlanner suite is public (it originates from "Case-Analysis for
//! Rippling and Inductive Proof" and ships with TIP); the statements below
//! were re-encoded from the published set. Boolean properties are expressed
//! as equations with `True`; the 14 properties that are conditional
//! equations are marked [`Expectation::Conditional`] and reported as
//! out-of-scope, exactly as the paper treats them (§6.2 says 13; the
//! precise historical split of one borderline property is unclear, which we
//! record rather than hide).

use crate::prelude::{MUTUAL_PRELUDE, PRELUDE};

/// Which suite a problem belongs to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Category {
    /// The standard 85-problem IsaPlanner suite.
    IsaPlanner,
    /// Mutual-induction problems over annotated syntax trees (§1).
    Mutual,
    /// Goals that appear as figures in the paper.
    Figure,
}

/// What the paper leads us to expect for the problem.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// An unconditional equation, fair game for the prover.
    InScope,
    /// A conditional equation: out of scope for CycleQ (§6.2).
    Conditional,
    /// Unconditional but known to require an external lemma
    /// (§6.2: properties 47, 54, 65, 69).
    NeedsLemma,
}

/// A single benchmark problem.
#[derive(Clone, Debug)]
pub struct Problem {
    /// Stable identifier, e.g. `"IP50"` or `"M01"`.
    pub id: &'static str,
    /// The suite.
    pub category: Category,
    /// Expected behaviour per the paper.
    pub expectation: Expectation,
    /// The `goal` declaration, if expressible (conditional properties have
    /// none).
    pub goal: Option<&'static str>,
    /// Hint goals (name, declaration) that make the problem provable
    /// (§6.2); empty for most problems.
    pub hints: &'static [(&'static str, &'static str)],
    /// Encoding notes (totalisation, lambda elimination, reconstruction
    /// uncertainty).
    pub note: Option<&'static str>,
}

impl Problem {
    /// The goal name used inside the generated module.
    pub fn goal_name(&self) -> String {
        format!("p{}", self.id.to_lowercase())
    }

    /// The complete module source for this problem (prelude, hint goal
    /// declarations, goal declaration), or `None` for out-of-scope
    /// conditional properties.
    pub fn source(&self) -> Option<String> {
        let goal = self.goal?;
        let prelude = match self.category {
            Category::Mutual => MUTUAL_PRELUDE,
            _ => PRELUDE,
        };
        let mut out = String::with_capacity(prelude.len() + 256);
        out.push_str(prelude);
        out.push('\n');
        for (_, decl) in self.hints {
            out.push_str(decl);
            out.push('\n');
        }
        out.push_str(&format!("goal {}: {}\n", self.goal_name(), goal));
        Some(out)
    }

    /// The hint goal names, for [`cycleq::Session::prove_with_hints`].
    pub fn hint_names(&self) -> Vec<&'static str> {
        self.hints.iter().map(|(n, _)| *n).collect()
    }
}

const ADD_COMM_HINT: (&str, &str) = ("hintAddComm", "goal hintAddComm: add x y === add y x");
const MAX_COMM_HINT: (&str, &str) = ("hintMaxComm", "goal hintMaxComm: max x y === max y x");

macro_rules! ip {
    ($id:expr, cond, $note:expr) => {
        Problem {
            id: $id,
            category: Category::IsaPlanner,
            expectation: Expectation::Conditional,
            goal: None,
            hints: &[],
            note: Some($note),
        }
    };
    ($id:expr, $exp:ident, $goal:expr) => {
        Problem {
            id: $id,
            category: Category::IsaPlanner,
            expectation: Expectation::$exp,
            goal: Some($goal),
            hints: &[],
            note: None,
        }
    };
    ($id:expr, $exp:ident, $goal:expr, hints = $hints:expr) => {
        Problem {
            id: $id,
            category: Category::IsaPlanner,
            expectation: Expectation::$exp,
            goal: Some($goal),
            hints: $hints,
            note: None,
        }
    };
    ($id:expr, $exp:ident, $goal:expr, note = $note:expr) => {
        Problem {
            id: $id,
            category: Category::IsaPlanner,
            expectation: Expectation::$exp,
            goal: Some($goal),
            hints: &[],
            note: Some($note),
        }
    };
}

/// The 85 IsaPlanner benchmark properties.
pub static ISAPLANNER: &[Problem] = &[
    ip!("IP01", InScope, "app (take n xs) (drop n xs) === xs"),
    ip!(
        "IP02",
        InScope,
        "add (count n xs) (count n ys) === count n (app xs ys)"
    ),
    ip!(
        "IP03",
        InScope,
        "le (count n xs) (count n (app xs ys)) === True"
    ),
    ip!("IP04", InScope, "S (count n xs) === count n (Cons n xs)"),
    ip!(
        "IP05",
        cond,
        "n = x ==> S (count n xs) = count n (Cons x xs)"
    ),
    ip!("IP06", InScope, "sub n (add n m) === Z"),
    ip!("IP07", InScope, "sub (add n m) n === m"),
    ip!("IP08", InScope, "sub (add k m) (add k n) === sub m n"),
    ip!("IP09", InScope, "sub (sub i j) k === sub i (add j k)"),
    ip!("IP10", InScope, "sub m m === Z"),
    ip!("IP11", InScope, "drop Z xs === xs"),
    ip!("IP12", InScope, "drop n (map f xs) === map f (drop n xs)"),
    ip!("IP13", InScope, "drop (S n) (Cons x xs) === drop n xs"),
    ip!(
        "IP14",
        InScope,
        "filter p (app xs ys) === app (filter p xs) (filter p ys)"
    ),
    ip!("IP15", InScope, "len (ins x xs) === S (len xs)"),
    ip!("IP16", cond, "xs = [] ==> last (Cons x xs) = x"),
    ip!("IP17", InScope, "le n Z === natEq n Z"),
    ip!("IP18", InScope, "lt i (S (add i m)) === True"),
    ip!("IP19", InScope, "len (drop n xs) === sub (len xs) n"),
    ip!("IP20", InScope, "len (sort xs) === len xs"),
    ip!("IP21", InScope, "le n (add n m) === True"),
    ip!("IP22", InScope, "max (max a b) c === max a (max b c)"),
    ip!("IP23", InScope, "max a b === max b a"),
    ip!("IP24", InScope, "natEq (max a b) a === le b a"),
    ip!("IP25", InScope, "natEq (max a b) b === le a b"),
    ip!("IP26", cond, "x ∈ xs ==> x ∈ app xs ys"),
    ip!("IP27", cond, "x ∈ ys ==> x ∈ app xs ys"),
    ip!("IP28", InScope, "elem x (app xs (Cons x Nil)) === True"),
    ip!("IP29", InScope, "elem x (ins1 x xs) === True"),
    ip!("IP30", InScope, "elem x (ins x xs) === True"),
    ip!("IP31", InScope, "min (min a b) c === min a (min b c)"),
    ip!("IP32", InScope, "min a b === min b a"),
    ip!("IP33", InScope, "natEq (min a b) a === le a b"),
    ip!("IP34", InScope, "natEq (min a b) b === le b a"),
    ip!(
        "IP35",
        InScope,
        "dropWhile constFalse xs === xs",
        note = "λx. False encoded as the combinator constFalse"
    ),
    ip!(
        "IP36",
        InScope,
        "takeWhile constTrue xs === xs",
        note = "λx. True encoded as the combinator constTrue"
    ),
    ip!("IP37", InScope, "not (elem x (delete x xs)) === True"),
    ip!(
        "IP38",
        InScope,
        "count n (app xs (Cons n Nil)) === S (count n xs)"
    ),
    ip!(
        "IP39",
        InScope,
        "add (count n (Cons m Nil)) (count n xs) === count n (Cons m xs)"
    ),
    ip!("IP40", InScope, "take Z xs === Nil"),
    ip!("IP41", InScope, "take n (map f xs) === map f (take n xs)"),
    ip!(
        "IP42",
        InScope,
        "take (S n) (Cons x xs) === Cons x (take n xs)"
    ),
    ip!(
        "IP43",
        InScope,
        "app (takeWhile p xs) (dropWhile p xs) === xs"
    ),
    ip!("IP44", InScope, "zip (Cons x xs) ys === zipConcat x xs ys"),
    ip!(
        "IP45",
        InScope,
        "zip (Cons x xs) (Cons y ys) === Cons (MkPair x y) (zip xs ys)"
    ),
    ip!("IP46", InScope, "zip Nil ys === Nil"),
    ip!(
        "IP47",
        NeedsLemma,
        "height (mirror t) === height t",
        hints = &[MAX_COMM_HINT]
    ),
    ip!(
        "IP48",
        cond,
        "not (null xs) ==> app (butlast xs) (Cons (last xs) Nil) = xs"
    ),
    ip!(
        "IP49",
        InScope,
        "butlast (app xs ys) === butlastConcat xs ys"
    ),
    ip!(
        "IP50",
        InScope,
        "butlast xs === take (sub (len xs) (S Z)) xs"
    ),
    ip!("IP51", InScope, "butlast (app xs (Cons x Nil)) === xs"),
    ip!("IP52", InScope, "count n xs === count n (rev xs)"),
    ip!("IP53", InScope, "count n xs === count n (sort xs)"),
    ip!(
        "IP54",
        NeedsLemma,
        "sub (add m n) n === m",
        hints = &[ADD_COMM_HINT]
    ),
    ip!(
        "IP55",
        InScope,
        "drop n (app xs ys) === app (drop n xs) (drop (sub n (len xs)) ys)"
    ),
    ip!("IP56", InScope, "drop n (drop m xs) === drop (add n m) xs"),
    ip!(
        "IP57",
        InScope,
        "drop n (take m xs) === take (sub m n) (drop n xs)"
    ),
    ip!(
        "IP58",
        InScope,
        "drop n (zip xs ys) === zip (drop n xs) (drop n ys)"
    ),
    ip!("IP59", cond, "ys = [] ==> last (app xs ys) = last xs"),
    ip!("IP60", cond, "not (null ys) ==> last (app xs ys) = last ys"),
    ip!("IP61", InScope, "last (app xs ys) === lastOfTwo xs ys"),
    ip!("IP62", cond, "not (null xs) ==> last (Cons x xs) = last xs"),
    ip!("IP63", cond, "n < len xs ==> last (drop n xs) = last xs"),
    ip!("IP64", InScope, "last (app xs (Cons x Nil)) === x"),
    ip!(
        "IP65",
        NeedsLemma,
        "lt i (S (add m i)) === True",
        hints = &[ADD_COMM_HINT]
    ),
    ip!("IP66", InScope, "le (len (filter p xs)) (len xs) === True"),
    ip!("IP67", InScope, "len (butlast xs) === sub (len xs) (S Z)"),
    ip!("IP68", InScope, "le (len (delete n xs)) (len xs) === True"),
    ip!(
        "IP69",
        NeedsLemma,
        "le n (add m n) === True",
        hints = &[ADD_COMM_HINT]
    ),
    ip!("IP70", cond, "m <= n ==> m <= S n"),
    ip!("IP71", cond, "x =/= y ==> elem x (ins y xs) = elem x xs"),
    ip!(
        "IP72",
        InScope,
        "rev (drop i xs) === take (sub (len xs) i) (rev xs)"
    ),
    ip!("IP73", InScope, "rev (filter p xs) === filter p (rev xs)"),
    ip!(
        "IP74",
        InScope,
        "rev (take i xs) === drop (sub (len xs) i) (rev xs)"
    ),
    ip!(
        "IP75",
        InScope,
        "add (count n xs) (count n (Cons m Nil)) === count n (Cons m xs)"
    ),
    ip!(
        "IP76",
        cond,
        "n =/= m ==> count n (app xs (Cons m Nil)) = count n xs"
    ),
    ip!("IP77", cond, "sorted xs ==> sorted (insort x xs)"),
    ip!("IP78", InScope, "sorted (sort xs) === True"),
    ip!(
        "IP79",
        InScope,
        "sub (sub (S m) n) (S k) === sub (sub m n) k"
    ),
    ip!(
        "IP80",
        InScope,
        "take n (app xs ys) === app (take n xs) (take (sub n (len xs)) ys)"
    ),
    ip!(
        "IP81",
        InScope,
        "take n (drop m xs) === drop m (take (add n m) xs)"
    ),
    ip!(
        "IP82",
        InScope,
        "take n (zip xs ys) === zip (take n xs) (take n ys)"
    ),
    ip!(
        "IP83",
        InScope,
        "zip (app xs ys) zs === app (zip xs (take (len xs) zs)) (zip ys (drop (len xs) zs))"
    ),
    ip!(
        "IP84",
        InScope,
        "zip xs (app ys zs) === app (zip (take (len ys) xs) ys) (zip (drop (len ys) xs) zs)"
    ),
    ip!(
        "IP85",
        cond,
        "len xs = len ys ==> zip (rev xs) (rev ys) = rev (zip xs ys)"
    ),
];

macro_rules! mp {
    ($id:expr, $goal:expr) => {
        Problem {
            id: $id,
            category: Category::Mutual,
            expectation: Expectation::InScope,
            goal: Some($goal),
            hints: &[],
            note: None,
        }
    };
}

/// The mutual-induction suite over annotated syntax trees (§1).
pub static MUTUAL: &[Problem] = &[
    mp!("M01", "mapE id e === e"),
    mp!("M02", "mapT id t === t"),
    mp!("M03", "sizeE (mapE f e) === sizeE e"),
    mp!("M04", "sizeT (mapT f t) === sizeT t"),
    mp!("M05", "heightE (mapE f e) === heightE e"),
    mp!("M06", "heightT (mapT f t) === heightT t"),
    mp!("M07", "swapE (swapE e) === e"),
    mp!("M08", "swapT (swapT t) === t"),
];

/// Goals that appear as figures in the paper (regressions for the figures'
/// proofs; IP50 doubles as Fig. 2).
pub static FIGURES: &[Problem] = &[
    Problem {
        id: "F04",
        category: Category::Figure,
        expectation: Expectation::InScope,
        goal: Some("add x y === add y x"),
        hints: &[],
        note: Some("Fig. 4: commutativity of addition, no hints"),
    },
    Problem {
        id: "F09",
        category: Category::Figure,
        expectation: Expectation::InScope,
        goal: Some("map id xs === xs"),
        hints: &[],
        note: Some("Fig. 9 / Example C.1"),
    },
];

/// All problems across the suites.
pub fn all_problems() -> Vec<&'static Problem> {
    ISAPLANNER.iter().chain(MUTUAL).chain(FIGURES).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_lang::parse_module;

    #[test]
    fn there_are_85_isaplanner_problems() {
        assert_eq!(ISAPLANNER.len(), 85);
    }

    #[test]
    fn conditional_problems_have_no_goal() {
        for p in ISAPLANNER {
            match p.expectation {
                Expectation::Conditional => assert!(p.goal.is_none(), "{}", p.id),
                _ => assert!(p.goal.is_some(), "{}", p.id),
            }
        }
    }

    #[test]
    fn fourteen_conditionals_matching_the_papers_thirteen() {
        let n = ISAPLANNER
            .iter()
            .filter(|p| p.expectation == Expectation::Conditional)
            .count();
        // The paper reports 13 conditional properties; our reconstruction
        // has 14 (one borderline case), recorded in EXPERIMENTS.md.
        assert_eq!(n, 14);
    }

    #[test]
    fn lemma_problems_are_exactly_47_54_65_69() {
        let ids: Vec<&str> = ISAPLANNER
            .iter()
            .filter(|p| p.expectation == Expectation::NeedsLemma)
            .map(|p| p.id)
            .collect();
        assert_eq!(ids, vec!["IP47", "IP54", "IP65", "IP69"]);
    }

    #[test]
    fn every_in_scope_problem_parses_and_type_checks() {
        for p in all_problems() {
            let Some(src) = p.source() else { continue };
            let m = parse_module(&src).unwrap_or_else(|e| panic!("{}: {e}", p.id));
            assert!(m.goal(&p.goal_name()).is_some(), "{}", p.id);
            assert!(m.validate().is_empty(), "{}: {:?}", p.id, m.validate());
        }
    }

    #[test]
    fn hint_goals_parse_too() {
        for p in all_problems() {
            if p.hints.is_empty() {
                continue;
            }
            let src = p.source().unwrap();
            let m = parse_module(&src).unwrap();
            for (name, _) in p.hints {
                assert!(m.goal(name).is_some(), "{}: hint {name}", p.id);
            }
        }
    }

    #[test]
    fn suite_counts() {
        assert_eq!(MUTUAL.len(), 8);
        assert_eq!(all_problems().len(), 85 + 8 + 2);
    }
}
