//! Benchmark suites for the CycleQ reproduction (§6.1).
//!
//! Contains:
//!
//! - [`PRELUDE`]: the standard IsaPlanner program (naturals, booleans,
//!   lists, pairs, trees and ~35 defined functions);
//! - [`MUTUAL_PRELUDE`]: the annotated-syntax-tree program from the paper's
//!   introduction, for mutual-induction problems;
//! - [`ISAPLANNER`]: the 85 IsaPlanner properties with per-problem
//!   expectations (in scope / conditional / needs-lemma);
//! - [`MUTUAL`] and [`FIGURES`]: the mutual-induction suite and the goals
//!   shown as figures;
//! - a [`runner`](run_suite) with text/CSV reporters, the Figure 7
//!   cumulative series ([`cactus_series`]) and §6.1 summary statistics
//!   ([`summarize`]).

mod prelude;
mod problems;
mod runner;

pub use prelude::{MUTUAL_PRELUDE, PRELUDE};
pub use problems::{all_problems, Category, Expectation, Problem, FIGURES, ISAPLANNER, MUTUAL};
pub use runner::{
    by_expectation, cactus_series, csv, profile_table, run_problem, run_suite, summarize,
    text_table, RunConfig, RunOutcome, RunStatus, Summary,
};
