//! Reddy-style rewriting induction (§4) and its translation to cyclic
//! proofs (Theorem 4.3).
//!
//! Rewriting induction manipulates pairs `(E, H)` of goal equations `E` and
//! hypothesis rewrite rules `H` (Fig. 5):
//!
//! - **Delete** removes a trivial equation `M = M`;
//! - **Simplify** rewrites a goal with `R ∪ H`;
//! - **Expand** orients a goal `M = N` by a reduction order (`N < M`),
//!   moves `M → N` into `H`, and replaces the goal by its overlaps with the
//!   program rules (Definition 4.1).
//!
//! The crate both *runs* this procedure (with [`cycleq_rewrite::Lpo`] as
//! the reduction order) and *constructs the corresponding cyclic preproof
//! as it goes*, realising the Theorem 4.3 translation: `Expand` becomes a
//! `(Case)`/`(Reduce)` tree, `Simplify` with a hypothesis becomes `(Subst)`
//! with the hypothesis's own vertex as the lemma, `Simplify` with `R`
//! becomes `(Reduce)`, and `Delete` becomes `(Refl)`.
//!
//! The headline limitation of §4 is demonstrated by
//! [`RiOutcome::FailedToOrient`]: inherently unorientable goals such as the
//! commutativity of addition are rejected, whereas CycleQ's cyclic search
//! proves them outright.
//!
//! # Example
//!
//! ```
//! use cycleq_lang::parse_module;
//! use cycleq_ri::{RiOutcome, RiProver};
//!
//! let m = parse_module(
//!     "data Nat = Z | S Nat
//!      add :: Nat -> Nat -> Nat
//!      add Z y = y
//!      add (S x) y = S (add x y)
//!      goal zeroRight: add x Z === x
//!      goal comm: add x y === add y x",
//! )
//! .unwrap();
//! let prover = RiProver::new(&m.program).unwrap();
//! let zr = m.goal("zeroRight").unwrap().clone();
//! assert!(matches!(prover.prove(zr.eq, zr.vars).outcome, RiOutcome::Proved { .. }));
//! let comm = m.goal("comm").unwrap().clone();
//! assert!(matches!(
//!     prover.prove(comm.eq, comm.vars).outcome,
//!     RiOutcome::FailedToOrient { .. }
//! ));
//! ```

use std::collections::VecDeque;

use cycleq_proof::{CaseBranch, NodeId, Preproof, RuleApp, Side, SubstApp};
use cycleq_rewrite::{
    check_rules_decreasing, root_case_candidates, Lpo, MemoRewriter, Program, Rewriter, RuleId,
    TermOrder,
};
use cycleq_term::{match_term, Equation, Position, Subst, Term, VarId, VarStore};

/// Limits for the rewriting-induction loop.
#[derive(Clone, Debug)]
pub struct RiConfig {
    /// Maximum number of `Expand` applications.
    pub max_expansions: usize,
    /// Maximum number of goal-processing iterations.
    pub max_iterations: usize,
    /// Reduction fuel per normalisation.
    pub reduction_fuel: usize,
}

impl Default for RiConfig {
    fn default() -> RiConfig {
        RiConfig {
            max_expansions: 64,
            max_iterations: 10_000,
            reduction_fuel: 10_000,
        }
    }
}

/// Counters for a finished run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RiStats {
    /// `Expand` applications.
    pub expansions: usize,
    /// Hypothesis rewrite steps performed during `Simplify`.
    pub hyp_steps: usize,
    /// `Delete` applications.
    pub deletions: usize,
    /// Proof nodes created.
    pub nodes: usize,
}

/// The verdict of a rewriting-induction run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RiOutcome {
    /// All goals discharged; `root` carries the original goal.
    Proved {
        /// The vertex of the original goal in the constructed preproof.
        root: NodeId,
    },
    /// A goal could not be oriented by the reduction order — the inherent
    /// §4 limitation (e.g. commutativity).
    FailedToOrient {
        /// The unorientable goal.
        goal: Equation,
    },
    /// A goal could neither be simplified, deleted, nor expanded.
    Stuck {
        /// The stuck goal.
        goal: Equation,
    },
    /// The expansion or iteration budget ran out.
    Budget,
}

impl RiOutcome {
    /// Whether the run produced a proof.
    pub fn is_proved(&self) -> bool {
        matches!(self, RiOutcome::Proved { .. })
    }
}

/// The result of a run: verdict, the translated cyclic preproof, and stats.
#[derive(Clone, Debug)]
pub struct RiResult {
    /// The verdict.
    pub outcome: RiOutcome,
    /// The preproof built by the Theorem 4.3 translation (partial on
    /// failure).
    pub proof: Preproof,
    /// Counters.
    pub stats: RiStats,
}

/// A rewriting-induction prover over a program whose rules are orientable
/// by the default LPO.
#[derive(Clone, Debug)]
pub struct RiProver<'a> {
    prog: &'a Program,
    order: Lpo,
    config: RiConfig,
}

/// A hypothesis: an oriented equation `lhs → rhs` together with its proof
/// vertex (the expanded node, used as the `(Subst)` lemma).
#[derive(Clone, Debug)]
struct Hyp {
    lhs: Term,
    rhs: Term,
    node: NodeId,
    flipped: bool,
}

impl<'a> RiProver<'a> {
    /// Creates a prover with the default configuration, verifying that the
    /// program's rules are strictly decreasing under the default LPO (the
    /// precondition for it to be a reduction order for `R`, §4).
    ///
    /// # Errors
    ///
    /// Returns the first rule that is not LPO-decreasing.
    pub fn new(prog: &'a Program) -> Result<RiProver<'a>, RuleId> {
        Self::with_config(prog, RiConfig::default())
    }

    /// As [`RiProver::new`] with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns the first rule that is not LPO-decreasing.
    pub fn with_config(prog: &'a Program, config: RiConfig) -> Result<RiProver<'a>, RuleId> {
        let order = Lpo::from_signature(&prog.sig);
        check_rules_decreasing(&prog.trs, &order)?;
        Ok(RiProver {
            prog,
            order,
            config,
        })
    }

    /// Runs rewriting induction on `goal`, building the translated cyclic
    /// preproof along the way.
    pub fn prove(&self, goal: Equation, vars: VarStore) -> RiResult {
        let mut st = RiState {
            prog: self.prog,
            order: &self.order,
            config: &self.config,
            proof: Preproof::with_vars(vars),
            rw: MemoRewriter::new(&self.prog.sig, &self.prog.trs)
                .with_fuel(self.config.reduction_fuel),
            hyps: Vec::new(),
            goals: VecDeque::new(),
            stats: RiStats::default(),
        };
        let root = st.push_node(goal);
        st.goals.push_back(root);
        let outcome = st.run(root);
        RiResult {
            outcome,
            proof: st.proof,
            stats: st.stats,
        }
    }
}

struct RiState<'a> {
    prog: &'a Program,
    order: &'a Lpo,
    config: &'a RiConfig,
    proof: Preproof,
    /// Memoised `R`-normalisation shared across the whole run: `Simplify`
    /// renormalises goals after every hypothesis step, so the cache pays
    /// off immediately.
    rw: MemoRewriter<'a>,
    hyps: Vec<Hyp>,
    goals: VecDeque<NodeId>,
    stats: RiStats,
}

impl<'a> RiState<'a> {
    fn push_node(&mut self, eq: Equation) -> NodeId {
        self.stats.nodes += 1;
        self.proof.push_open(eq)
    }

    fn rewriter(&self) -> Rewriter<'a> {
        Rewriter::new(&self.prog.sig, &self.prog.trs).with_fuel(self.config.reduction_fuel)
    }

    fn run(&mut self, root: NodeId) -> RiOutcome {
        let mut iterations = 0;
        while let Some(goal) = self.goals.pop_front() {
            iterations += 1;
            if iterations > self.config.max_iterations
                || self.stats.expansions > self.config.max_expansions
            {
                return RiOutcome::Budget;
            }
            // (Simplify)*: rewrite with R ∪ H to a normal form, chaining
            // Reduce / Subst nodes.
            let node = self.simplify(goal);
            let eq = self.proof.node(node).eq.clone();
            // (Delete).
            if eq.is_trivial() {
                self.stats.deletions += 1;
                self.proof.justify(node, RuleApp::Refl, vec![]);
                continue;
            }
            // (Expand): orient, then case/reduce at a basic position.
            let side = if self.order.gt(eq.lhs(), eq.rhs()) {
                Side::Lhs
            } else if self.order.gt(eq.rhs(), eq.lhs()) {
                Side::Rhs
            } else {
                return RiOutcome::FailedToOrient { goal: eq };
            };
            let (big, small) = match side {
                Side::Lhs => (eq.lhs().clone(), eq.rhs().clone()),
                Side::Rhs => (eq.rhs().clone(), eq.lhs().clone()),
            };
            let Some(pos) = self.expansion_position(&big) else {
                return RiOutcome::Stuck { goal: eq };
            };
            self.stats.expansions += 1;
            self.hyps.push(Hyp {
                lhs: big,
                rhs: small,
                node,
                flipped: side == Side::Rhs,
            });
            let mut leaves = Vec::new();
            if !self.expand(node, side, &pos, &mut leaves) {
                let eq = self.proof.node(node).eq.clone();
                return RiOutcome::Stuck { goal: eq };
            }
            for leaf in leaves {
                self.goals.push_back(leaf);
            }
        }
        RiOutcome::Proved { root }
    }

    /// The basic position to expand: the first (leftmost-outermost)
    /// defined-head position whose subterm either reduces at the root or is
    /// blocked by a case-analysable variable. Positions blocked only by an
    /// inner redex are skipped — the inner redex appears later in preorder.
    fn expansion_position(&self, big: &Term) -> Option<Position> {
        let rw = self.rewriter();
        rw.defined_positions(big).into_iter().find(|p| {
            let sub = big.at(p).expect("valid position");
            rw.step_root(sub).is_some()
                || !root_case_candidates(&self.prog.sig, &self.prog.trs, sub).is_empty()
        })
    }

    /// Normalises a side with the memoised rewriter; on fuel exhaustion it
    /// falls back to the plain rewriter's *partial* reduct (the memoised
    /// engine returns the input unchanged in that case), so `simplify`
    /// keeps chunking through reductions longer than one fuel budget, as
    /// it always has.
    fn normalize_chunk(&mut self, t: &Term) -> Term {
        let n = self.rw.normalize(t);
        if n.in_normal_form {
            n.term
        } else {
            self.rewriter().normalize(t).term
        }
    }

    /// Simplifies the goal node with `R ∪ H`, returning the final node of
    /// the Reduce/Subst chain.
    fn simplify(&mut self, mut node: NodeId) -> NodeId {
        loop {
            let eq = self.proof.node(node).eq.clone();
            // Maximal R-normalisation first (memoised across the run).
            let ln = self.normalize_chunk(eq.lhs());
            let rn = self.normalize_chunk(eq.rhs());
            if &ln != eq.lhs() || &rn != eq.rhs() {
                let child = self.push_node(Equation::new(ln, rn));
                self.proof.justify(node, RuleApp::Reduce, vec![child]);
                node = child;
                continue;
            }
            // One H step, if any.
            if let Some(next) = self.hyp_step(node, &eq) {
                node = next;
                continue;
            }
            return node;
        }
    }

    /// Performs one hypothesis rewrite on either side, adding a `(Subst)`
    /// node whose lemma is the hypothesis's vertex.
    fn hyp_step(&mut self, node: NodeId, eq: &Equation) -> Option<NodeId> {
        for h in 0..self.hyps.len() {
            let (hl, hr, hnode, hflipped) = {
                let hyp = &self.hyps[h];
                (hyp.lhs.clone(), hyp.rhs.clone(), hyp.node, hyp.flipped)
            };
            for side in [Side::Lhs, Side::Rhs] {
                let side_term = side.of(eq).clone();
                for (pos, sub) in side_term.positions() {
                    if sub.as_var().is_some() {
                        continue;
                    }
                    let Some(theta) = match_term(&hl, sub) else {
                        continue;
                    };
                    let replacement = theta.apply(&hr);
                    if &replacement == sub {
                        continue;
                    }
                    self.stats.hyp_steps += 1;
                    let rewritten = side_term
                        .replace_at(&pos, replacement)
                        .expect("valid position");
                    let cont_eq = match side {
                        Side::Lhs => Equation::new(rewritten, eq.rhs().clone()),
                        Side::Rhs => Equation::new(eq.lhs().clone(), rewritten),
                    };
                    let cont = self.push_node(cont_eq);
                    // The hypothesis rewrites instances of the hyp node's
                    // bigger side; whether that is the node's stored lhs
                    // depends on the orientation chosen at Expand time.
                    self.proof.justify(
                        node,
                        RuleApp::Subst(SubstApp {
                            side,
                            pos,
                            theta,
                            lemma_flipped: hflipped,
                        }),
                        vec![hnode, cont],
                    );
                    return Some(cont);
                }
            }
        }
        None
    }

    /// Builds the `(Case)`/`(Reduce)` tree realising `Expand` at `pos` of
    /// `side`, collecting the expanded leaves. Returns `false` when a stuck
    /// subterm has no case-analysable blocking variable.
    fn expand(
        &mut self,
        node: NodeId,
        side: Side,
        pos: &Position,
        leaves: &mut Vec<NodeId>,
    ) -> bool {
        let eq = self.proof.node(node).eq.clone();
        let side_term = side.of(&eq).clone();
        let sub = side_term.at(pos).expect("valid position").clone();
        let rw = self.rewriter();
        if let Some(reduct) = rw.step_root(&sub) {
            // Reducible: one (Reduce) step at the expansion position.
            let stepped = side_term.replace_at(pos, reduct).expect("valid position");
            let child_eq = match side {
                Side::Lhs => Equation::new(stepped, eq.rhs().clone()),
                Side::Rhs => Equation::new(eq.lhs().clone(), stepped),
            };
            let child = self.push_node(child_eq);
            self.proof.justify(node, RuleApp::Reduce, vec![child]);
            leaves.push(child);
            return true;
        }
        // Stuck: case split on the first variable blocking the root.
        let cands = root_case_candidates(&self.prog.sig, &self.prog.trs, &sub);
        let Some(&v) = cands.first() else {
            return false;
        };
        let vty = self.proof.vars().ty(v).clone();
        let Some((data, ty_args)) = vty.as_data() else {
            return false;
        };
        let ty_args = ty_args.to_vec();
        let cons: Vec<_> = self.prog.sig.constructors_of(data).to_vec();
        let mut branches = Vec::with_capacity(cons.len());
        let mut premises = Vec::with_capacity(cons.len());
        for &k in &cons {
            let inst = self
                .prog
                .sig
                .sym(k)
                .scheme()
                .instantiate_with(&ty_args)
                .expect("constructor arity matches datatype");
            let (arg_tys, _) = inst.uncurry();
            let base = self.proof.vars().name(v).to_string();
            let fresh: Vec<VarId> = arg_tys
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let name = if arg_tys.len() == 1 {
                        format!("{base}'")
                    } else {
                        format!("{base}'{}", i + 1)
                    };
                    self.proof.vars_mut().fresh(&name, (*t).clone())
                })
                .collect();
            let pattern = Term::apps(k, fresh.iter().map(|w| Term::var(*w)).collect());
            let branch_eq = eq.subst(&Subst::singleton(v, pattern));
            premises.push(self.push_node(branch_eq));
            branches.push(CaseBranch { con: k, fresh });
        }
        self.proof
            .justify(node, RuleApp::Case { var: v, branches }, premises.clone());
        premises
            .into_iter()
            .all(|p| self.expand(p, side, pos, leaves))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycleq_lang::parse_module;
    use cycleq_proof::{check, GlobalCheck};

    const NAT: &str = "data Nat = Z | S Nat
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)
";

    fn run(src: &str, goal: &str) -> (RiResult, cycleq_lang::Module) {
        let m = parse_module(src).unwrap();
        let g = m.goal(goal).unwrap().clone();
        let prover = RiProver::new(&m.program).unwrap();
        let res = prover.prove(g.eq, g.vars);
        (res, m)
    }

    #[test]
    fn proves_add_zero_right() {
        let src = format!("{NAT}goal zr: add x Z === x\n");
        let (res, m) = run(&src, "zr");
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        assert!(res.stats.expansions >= 1);
        assert!(res.stats.hyp_steps >= 1, "the IH must be used");
        // Locally well-formed by construction.
        check(&res.proof, &m.program, GlobalCheck::TrustConstruction).unwrap();
        // For this structural proof, variable traces also verify.
        check(&res.proof, &m.program, GlobalCheck::VariableTraces).unwrap();
    }

    #[test]
    fn proves_add_succ_right() {
        let src = format!("{NAT}goal sr: add x (S y) === S (add x y)\n");
        let (res, m) = run(&src, "sr");
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        check(&res.proof, &m.program, GlobalCheck::TrustConstruction).unwrap();
    }

    #[test]
    fn proves_associativity() {
        let src = format!("{NAT}goal assoc: add (add x y) z === add x (add y z)\n");
        let (res, m) = run(&src, "assoc");
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        check(&res.proof, &m.program, GlobalCheck::TrustConstruction).unwrap();
    }

    #[test]
    fn commutativity_fails_to_orient() {
        // The §4 limitation: x + y ≈ y + x is inherently unorientable.
        let src = format!("{NAT}goal comm: add x y === add y x\n");
        let (res, _) = run(&src, "comm");
        assert!(
            matches!(res.outcome, RiOutcome::FailedToOrient { .. }),
            "{:?}",
            res.outcome
        );
    }

    #[test]
    fn proves_list_append_nil() {
        let src = "data List a = Nil | Cons a (List a)
app :: List a -> List a -> List a
app Nil ys = ys
app (Cons x xs) ys = Cons x (app xs ys)
goal nilRight: app xs Nil === xs
";
        let (res, m) = run(src, "nilRight");
        assert!(res.outcome.is_proved(), "{:?}", res.outcome);
        check(&res.proof, &m.program, GlobalCheck::TrustConstruction).unwrap();
        check(&res.proof, &m.program, GlobalCheck::VariableTraces).unwrap();
    }

    #[test]
    fn trivial_goals_delete_immediately() {
        let src = format!("{NAT}goal triv: add x y === add x y\n");
        let (res, _) = run(&src, "triv");
        assert!(res.outcome.is_proved());
        assert_eq!(res.stats.expansions, 0);
        assert_eq!(res.stats.deletions, 1);
    }

    #[test]
    fn ground_goals_reduce_and_delete() {
        let src = format!("{NAT}goal two: add (S Z) (S Z) === S (S Z)\n");
        let (res, m) = run(&src, "two");
        assert!(res.outcome.is_proved());
        assert_eq!(res.stats.expansions, 0);
        check(&res.proof, &m.program, GlobalCheck::VariableTraces).unwrap();
    }

    #[test]
    fn budget_is_respected() {
        let src = format!("{NAT}goal zr: add x Z === x\n");
        let m = parse_module(&src).unwrap();
        let g = m.goal("zr").unwrap().clone();
        let prover = RiProver::with_config(
            &m.program,
            RiConfig {
                max_expansions: 0,
                ..RiConfig::default()
            },
        )
        .unwrap();
        let res = prover.prove(g.eq, g.vars);
        assert_eq!(res.outcome, RiOutcome::Budget);
    }
}
