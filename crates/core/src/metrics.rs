//! Bridges per-goal [`SearchStats`] / [`CheckReport`] values into the
//! process-wide `cycleq_trace` metrics registry.
//!
//! Every finished goal is absorbed exactly once, from the single
//! `Session::prove_goal` funnel: counters sum across goals, gauge keys
//! (end-of-search sizes) keep the latest goal's value. The family names are
//! generated from [`SearchStats::entries`] — the same single source that
//! feeds the CLI `--stats` line and the NDJSON `stats` object — so the
//! three surfaces can never drift (pinned by `crates/cli/tests/stats_schema.rs`).

use std::collections::BTreeMap;
use std::sync::OnceLock;

use cycleq_proof::CheckReport;
use cycleq_search::SearchStats;
use cycleq_trace::{metrics, Counter, Gauge, Histogram};

use crate::engine::GoalStatus;

pub(crate) struct GoalMetrics {
    by_status: BTreeMap<&'static str, Counter>,
    goal_seconds: Histogram,
    search_counters: BTreeMap<&'static str, Counter>,
    search_gauges: BTreeMap<&'static str, Gauge>,
    check_seconds: Histogram,
    check_reducts: Counter,
    check_memo_hits: Counter,
    goal_panics: Counter,
    goal_retries: Counter,
}

impl std::fmt::Debug for GoalMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoalMetrics").finish_non_exhaustive()
    }
}

/// Leaks a `String` into a `&'static str`: family names must be `'static`,
/// and there is a fixed, small set of them (one per stats key), registered
/// once per process.
fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

pub(crate) fn goal_metrics() -> &'static GoalMetrics {
    static METRICS: OnceLock<GoalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = metrics();
        let by_status = [
            "proved",
            "refuted",
            "gave-up",
            "cancelled",
            "panicked",
            "error",
        ]
            .into_iter()
            .map(|status| {
                (
                    status,
                    registry.counter_labeled(
                        "cycleq_goals_total",
                        "Goals finished, by compact verdict.",
                        leak(format!("status=\"{status}\"")),
                    ),
                )
            })
            .collect();
        let mut search_counters = BTreeMap::new();
        let mut search_gauges = BTreeMap::new();
        for (key, _) in SearchStats::default().entries() {
            if SearchStats::GAUGE_KEYS.contains(&key) {
                search_gauges.insert(
                    key,
                    registry.gauge(
                        leak(format!("cycleq_search_{key}")),
                        "End-of-search size from the most recently finished goal (see SearchStats).",
                    ),
                );
            } else {
                search_counters.insert(
                    key,
                    registry.counter(
                        leak(format!("cycleq_search_{key}_total")),
                        "Per-goal search counter, summed across finished goals (see SearchStats).",
                    ),
                );
            }
        }
        GoalMetrics {
            by_status,
            goal_seconds: registry.histogram(
                "cycleq_goal_seconds",
                "End-to-end search time per finished goal.",
            ),
            search_counters,
            search_gauges,
            check_seconds: registry.histogram(
                "cycleq_check_seconds",
                "Time per proof re-check / certificate check.",
            ),
            check_reducts: registry.counter(
                "cycleq_check_reducts_total",
                "Reducts derived by the proof checker.",
            ),
            check_memo_hits: registry.counter(
                "cycleq_check_memo_hits_total",
                "Checker reduct derivations served from its memo table.",
            ),
            goal_panics: registry.counter(
                "cycleq_goal_panics_total",
                "Goal search attempts that panicked and were isolated by the fault boundary.",
            ),
            goal_retries: registry.counter(
                "cycleq_goal_retries_total",
                "Goal attempts re-run by the retry policy with escalated budgets.",
            ),
        }
    })
}

/// Records one finished goal: its compact verdict, its search counters, and
/// (when the proof was re-checked) the checker's report.
pub(crate) fn record_goal(status: GoalStatus, stats: &SearchStats, recheck: Option<&CheckReport>) {
    let m = goal_metrics();
    if let Some(c) = m.by_status.get(status_key(status)) {
        c.inc();
    }
    m.goal_seconds.observe(stats.elapsed);
    for (key, value) in stats.entries() {
        if let Some(c) = m.search_counters.get(key) {
            c.add(value);
        } else if let Some(g) = m.search_gauges.get(key) {
            g.set(value);
        }
    }
    if let Some(report) = recheck {
        record_check(report);
    }
}

/// Records a goal that ended in a per-goal error (e.g. a proof that failed
/// re-checking) without a usable stats block.
pub(crate) fn record_goal_error() {
    if let Some(c) = goal_metrics().by_status.get(status_key(GoalStatus::Error)) {
        c.inc();
    }
}

/// Records one goal search attempt that panicked and was isolated by the
/// fault boundary (`catch_unwind` in `Session::prove_goal` or the batch
/// scheduler's catching runner).
pub(crate) fn record_goal_panic() {
    goal_metrics().goal_panics.inc();
}

/// Records one attempt re-run by the retry policy.
pub(crate) fn record_goal_retry() {
    goal_metrics().goal_retries.inc();
}

/// Records one checker run (re-check or certificate validation).
pub(crate) fn record_check(report: &CheckReport) {
    let m = goal_metrics();
    m.check_seconds.observe(report.elapsed);
    m.check_reducts.add(report.reducts_checked);
    m.check_memo_hits.add(report.memo_hits);
}

fn status_key(status: GoalStatus) -> &'static str {
    match status {
        GoalStatus::Proved => "proved",
        GoalStatus::Refuted => "refuted",
        GoalStatus::GaveUp => "gave-up",
        GoalStatus::Cancelled => "cancelled",
        GoalStatus::Panicked => "panicked",
        GoalStatus::Error => "error",
    }
}
