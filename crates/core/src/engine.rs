//! The builder-first engine facade: [`EngineBuilder`] → [`Engine`] → cheap
//! per-program [`Session`](crate::Session) handles.
//!
//! An [`Engine`] owns everything that is *program-independent*: the search
//! configuration, the worker count, the re-checking and cache policies, and
//! an optional [`EventSink`] that streams [`ProveEvent`]s out of running
//! batches. Loading a program through [`Engine::load`] yields a
//! [`Session`](crate::Session) — a cheap handle pairing the engine's
//! settings with one parsed program and its program-scoped normal-form
//! cache. One engine can serve many programs; clones of an engine (and of
//! its sessions) share settings by reference.
//!
//! Three cross-cutting mechanisms ride on the engine:
//!
//! - **Budgets and cancellation** ([`Budget`], [`CancelToken`]): every
//!   prove call accepts an external resource ceiling and a shareable
//!   cancellation token, polled at every DFS node and inside committed
//!   reduction chains. A batch deadline is *apportioned* into per-goal
//!   slices, so one explosive goal cannot starve its siblings.
//! - **Streaming events**: batches report `GoalStarted` /
//!   `RoundDeepened` / `GoalFinished` / `BatchFinished` to the engine's
//!   sink from the worker threads, in completion order, while the final
//!   [`BatchReport`](crate::BatchReport) stays declaration-ordered.
//! - **Cost-ordered scheduling**: batch goals are seeded heaviest-first
//!   (predicted by goal size, or by recorded times from a previous report
//!   via [`Session::with_cost_hints`](crate::Session::with_cost_hints)).
//!
//! ```
//! use cycleq::{Engine, ProveEvent};
//! use std::sync::Arc;
//!
//! let engine = Engine::builder()
//!     .jobs(2)
//!     .on_event(|ev: &ProveEvent| {
//!         if let ProveEvent::GoalFinished { goal, status, .. } = ev {
//!             // streams in completion order while the batch runs
//!             let _ = (goal, status);
//!         }
//!     })
//!     .build();
//! let session = engine
//!     .load(
//!         "data Nat = Z | S Nat
//!          add :: Nat -> Nat -> Nat
//!          add Z y = y
//!          add (S x) y = S (add x y)
//!          goal zeroRight: add x Z === x
//!          goal comm: add x y === add y x",
//!     )
//!     .unwrap();
//! let report = session.prove_all();
//! assert!(report.all_proved());
//! ```

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use cycleq_batch::available_parallelism;
use cycleq_rewrite::SharedNormalFormCache;
use cycleq_search::{Budget, CancelToken, RetryPolicy, SearchConfig};

use crate::{Error, Session, Verdict};

/// The compact verdict carried by [`ProveEvent::GoalFinished`]: enough for
/// a progress line, without dragging the proof across the thread boundary.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum GoalStatus {
    /// The goal was proved (and, if enabled, re-checked).
    Proved,
    /// The goal was refuted — a ground counterexample exists.
    Refuted,
    /// The search gave up: exhausted, timeout, node budget, or failed hint.
    GaveUp,
    /// The search was cancelled through its [`CancelToken`].
    Cancelled,
    /// The search panicked; the engine's fault boundary isolated it into a
    /// per-goal failure (see [`Outcome::Panicked`](cycleq_search::Outcome)).
    Panicked,
    /// A per-goal error (e.g. a proof that failed re-checking).
    Error,
}

impl GoalStatus {
    pub(crate) fn of(outcome: &Result<Verdict, Error>) -> GoalStatus {
        match outcome {
            Ok(v) if v.is_proved() => GoalStatus::Proved,
            Ok(v) if v.is_refuted() => GoalStatus::Refuted,
            Ok(v) if matches!(v.result.outcome, cycleq_search::Outcome::Cancelled) => {
                GoalStatus::Cancelled
            }
            Ok(v) if matches!(v.result.outcome, cycleq_search::Outcome::Panicked { .. }) => {
                GoalStatus::Panicked
            }
            Ok(_) => GoalStatus::GaveUp,
            Err(_) => GoalStatus::Error,
        }
    }
}

impl fmt::Display for GoalStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GoalStatus::Proved => "proved",
            GoalStatus::Refuted => "refuted",
            GoalStatus::GaveUp => "gave-up",
            GoalStatus::Cancelled => "cancelled",
            GoalStatus::Panicked => "panicked",
            GoalStatus::Error => "error",
        })
    }
}

/// A progress event streamed out of a running batch.
///
/// Events are delivered **from the worker threads, in completion order**
/// (goals finish whenever they finish); the [`BatchReport`](crate::BatchReport)
/// returned at the end is still declaration-ordered. `index` is the goal's
/// position in the *request* (declaration order for
/// [`Session::prove_all`](crate::Session::prove_all)), so a sink can
/// correlate streamed events with the final report.
#[derive(Clone, Debug)]
pub enum ProveEvent {
    /// A worker picked the goal up and started searching.
    GoalStarted {
        /// Position in the request.
        index: usize,
        /// The goal's name.
        goal: String,
    },
    /// The goal's iterative-deepening search started another round.
    RoundDeepened {
        /// Position in the request.
        index: usize,
        /// The goal's name.
        goal: String,
        /// The new depth bound.
        depth: usize,
        /// Monotonic time since the goal's search began, covering every
        /// finished round — sinks need no wall-clock bookkeeping.
        elapsed: Duration,
    },
    /// The goal ran to a verdict (or a per-goal error).
    GoalFinished {
        /// Position in the request.
        index: usize,
        /// The goal's name.
        goal: String,
        /// The compact verdict.
        status: GoalStatus,
        /// Wall-clock time the goal occupied its worker.
        time: Duration,
    },
    /// Every goal of the batch finished.
    BatchFinished {
        /// Number of proved goals.
        proved: usize,
        /// Number of goals in the batch.
        total: usize,
        /// Wall clock of the whole batch.
        elapsed: Duration,
    },
}

/// A consumer of [`ProveEvent`]s.
///
/// Sinks are called from the batch's worker threads, so they must be
/// `Send + Sync` and should return quickly (a slow sink backpressures the
/// workers). Any `Fn(&ProveEvent) + Send + Sync` closure is a sink:
///
/// ```
/// use cycleq::{EventSink, ProveEvent};
/// use std::sync::{Arc, Mutex};
///
/// let log = Arc::new(Mutex::new(Vec::new()));
/// let sink = {
///     let log = log.clone();
///     move |ev: &ProveEvent| log.lock().unwrap().push(format!("{ev:?}"))
/// };
/// // `sink` implements EventSink and can be handed to EngineBuilder::event_sink.
/// fn assert_sink<S: EventSink>(_: &S) {}
/// assert_sink(&sink);
/// ```
pub trait EventSink: Send + Sync {
    /// Delivers one event. Called from worker threads.
    fn event(&self, event: &ProveEvent);
}

impl<F> EventSink for F
where
    F: Fn(&ProveEvent) + Send + Sync,
{
    fn event(&self, event: &ProveEvent) {
        self(event)
    }
}

/// The program-independent settings shared by an [`Engine`] and every
/// [`Session`](crate::Session) it loads.
#[derive(Clone)]
pub(crate) struct Settings {
    pub(crate) config: SearchConfig,
    pub(crate) jobs: usize,
    pub(crate) recheck: bool,
    pub(crate) shared_cache: bool,
    pub(crate) cache_capacity: Option<usize>,
    pub(crate) sink: Option<Arc<dyn EventSink>>,
    pub(crate) retry: RetryPolicy,
}

impl fmt::Debug for Settings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Settings")
            .field("config", &self.config)
            .field("jobs", &self.jobs)
            .field("recheck", &self.recheck)
            .field("shared_cache", &self.shared_cache)
            .field("cache_capacity", &self.cache_capacity)
            .field("sink", &self.sink.is_some())
            .field("retry", &self.retry)
            .finish()
    }
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            config: SearchConfig::default(),
            jobs: 1,
            recheck: true,
            shared_cache: true,
            cache_capacity: None,
            sink: None,
            retry: RetryPolicy::none(),
        }
    }
}

/// Configures and builds an [`Engine`].
///
/// ```
/// use cycleq::{EngineBuilder, SearchConfig};
///
/// let engine = EngineBuilder::new()
///     .config(SearchConfig::default())
///     .jobs(4)
///     .recheck(true)
///     .cache_capacity(100_000)
///     .build();
/// let session = engine
///     .load(
///         "data Nat = Z | S Nat
///          add :: Nat -> Nat -> Nat
///          add Z y = y
///          add (S x) y = S (add x y)
///          goal zeroLeft: add Z y === y",
///     )
///     .unwrap();
/// assert!(session.prove("zeroLeft").unwrap().is_proved());
/// ```
#[derive(Debug, Default)]
pub struct EngineBuilder {
    settings: Settings,
}

impl EngineBuilder {
    /// A builder with the default settings: default [`SearchConfig`], one
    /// worker, re-checking on, unbounded shared cache, no event sink.
    pub fn new() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Replaces the search configuration used by every session.
    pub fn config(mut self, config: SearchConfig) -> EngineBuilder {
        self.settings.config = config;
        self
    }

    /// Sets the worker count for batch proving (`0` = one worker per
    /// hardware thread).
    pub fn jobs(mut self, jobs: usize) -> EngineBuilder {
        self.settings.jobs = if jobs == 0 {
            available_parallelism()
        } else {
            jobs
        };
        self
    }

    /// Whether produced proofs are re-checked with the independent checker
    /// before being returned (on by default; disable for benchmarking raw
    /// search time).
    pub fn recheck(mut self, recheck: bool) -> EngineBuilder {
        self.settings.recheck = recheck;
        self
    }

    /// Whether sessions get a program-scoped shared normal-form cache (on
    /// by default; disable for benchmarking the cache itself).
    pub fn shared_cache(mut self, shared_cache: bool) -> EngineBuilder {
        self.settings.shared_cache = shared_cache;
        self
    }

    /// Bounds each session's shared normal-form cache to roughly `capacity`
    /// entries, evicting second-chance once full (unbounded by default).
    pub fn cache_capacity(mut self, capacity: usize) -> EngineBuilder {
        self.settings.cache_capacity = Some(capacity);
        self
    }

    /// Sets the retry policy applied to every goal this engine's sessions
    /// prove: resource failures (timeout, node budget, isolated panic) are
    /// re-run with budgets escalated by the policy's factor, up to its
    /// attempt cap. Off by default ([`RetryPolicy::none`]).
    ///
    /// ```
    /// use cycleq::{Engine, RetryPolicy};
    ///
    /// let engine = Engine::builder()
    ///     .retry(RetryPolicy::new(3).with_escalation(4.0))
    ///     .build();
    /// # let _ = engine;
    /// ```
    pub fn retry(mut self, retry: RetryPolicy) -> EngineBuilder {
        self.settings.retry = retry;
        self
    }

    /// Attaches an [`EventSink`] that receives streaming [`ProveEvent`]s
    /// from every batch run by this engine's sessions.
    pub fn event_sink(mut self, sink: impl EventSink + 'static) -> EngineBuilder {
        self.settings.sink = Some(Arc::new(sink));
        self
    }

    /// Like [`EngineBuilder::event_sink`], spelled for closures.
    pub fn on_event(self, f: impl Fn(&ProveEvent) + Send + Sync + 'static) -> EngineBuilder {
        self.event_sink(f)
    }

    /// Builds the engine.
    pub fn build(self) -> Engine {
        Engine {
            settings: Arc::new(self.settings),
        }
    }
}

/// A long-lived proving engine: program-independent settings, shared by
/// every [`Session`](crate::Session) it loads. Cheap to clone.
///
/// See the [module docs](self) for the full picture, and the README's
/// *Engine API* section for the `Session` → `Engine` migration table.
#[derive(Clone, Debug)]
pub struct Engine {
    settings: Arc<Settings>,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::builder().build()
    }
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// An engine with all-default settings.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Parses, type checks and loads a program, returning a cheap
    /// per-program [`Session`](crate::Session) handle that shares this
    /// engine's settings. One engine can hold sessions for many programs;
    /// each session owns its own program-scoped normal-form cache.
    ///
    /// # Errors
    ///
    /// Returns the first frontend error.
    pub fn load(&self, src: &str) -> Result<Session, Error> {
        let module = cycleq_lang::parse_module(src)?;
        let cache = self
            .settings
            .shared_cache
            .then(|| match self.settings.cache_capacity {
                Some(cap) => SharedNormalFormCache::with_capacity(cap),
                None => SharedNormalFormCache::new(),
            });
        Ok(Session::assemble(
            self.settings.clone(),
            module,
            Arc::from(src),
            cache,
        ))
    }

    /// The search configuration sessions will use.
    pub fn config(&self) -> &SearchConfig {
        &self.settings.config
    }

    /// The batch worker count sessions will use.
    pub fn jobs(&self) -> usize {
        self.settings.jobs
    }

    /// A point-in-time snapshot of the process-wide metrics registry:
    /// every `cycleq_*` counter, gauge, and latency histogram the stack
    /// has recorded so far (search counters, shared-cache activity,
    /// size-change closure work, batch scheduling, re-check timing).
    ///
    /// The registry is process-global — the snapshot covers *all* engines
    /// and sessions, which is exactly the payload a metrics endpoint wants;
    /// use [`MetricsSnapshot::delta`](cycleq_trace::MetricsSnapshot::delta)
    /// to scope it to a window, or render it with
    /// [`MetricsSnapshot::to_prometheus`](cycleq_trace::MetricsSnapshot::to_prometheus).
    ///
    /// ```
    /// let engine = cycleq::Engine::new();
    /// let before = engine.metrics();
    /// // ... prove things ...
    /// let after = engine.metrics();
    /// let window = after.delta(&before);
    /// let _ = window.to_prometheus();
    /// ```
    pub fn metrics(&self) -> cycleq_trace::MetricsSnapshot {
        cycleq_trace::metrics().snapshot()
    }
}

/// Convenience: an unlimited [`Budget`] plus a fresh [`CancelToken`], for
/// call sites that only care about one of the two.
pub(crate) fn unbounded() -> (Budget, CancelToken) {
    (Budget::unlimited(), CancelToken::new())
}
